"""Primary/witness replication: logical WAL shipping over the serve wire.

The package extends one recovery domain to a *pair* of them: a primary
:class:`~repro.serve.server.ServeDaemon` ships its forced WAL suffix
(operation, fence, and epoch records — the logical log, never the
primary's private bookkeeping) to a :class:`WitnessDaemon` that adopts
the records into its own WAL at the primary's lSIs and continuously
redoes them through the real recovery path.  Acks to clients are gated
on the witness's durable receipt (semi-synchronous shipping), so every
acknowledged write survives the loss of either machine; an epoch
sidecar (:class:`EpochStore`) plus in-band fencing keeps a deposed
primary from acknowledging writes after its witness was promoted.

Layout:

* :mod:`repro.replica.wire` — frame builders/parsers for the three
  replication frames (``repl_subscribe``/``repl_batch``/``repl_ack``)
  and the shippable-record filter;
* :mod:`repro.replica.epoch` — the durable, monotone epoch sidecar;
* :mod:`repro.replica.sender` — the primary-side
  :class:`ReplicationSender` (subscriber registry, watermark tracking,
  truncation protection, the ack-gated ``replicate`` call);
* :mod:`repro.replica.witness` — :class:`WitnessDaemon`, a ServeDaemon
  subclass that subscribes, adopts, redoes, answers probes, and
  promotes to primary on operator request;
* :mod:`repro.replica.livefire` — torture v5: seeded primary kills and
  zombie-primary lanes over a real TCP pair, audited with the
  exactly-once acked-write oracle.
"""

from repro.replica.epoch import INITIAL_EPOCH, EpochStore
from repro.replica.livefire import (
    ReplicaLiveFireConfig,
    ReplicaLiveFireHarness,
    ReplicaLiveFireOutcome,
    ReplicaLiveFireReport,
)
from repro.replica.sender import ReplicationConfig, ReplicationSender
from repro.replica.witness import WitnessConfig, WitnessDaemon

__all__ = [
    "INITIAL_EPOCH",
    "EpochStore",
    "ReplicationConfig",
    "ReplicationSender",
    "WitnessConfig",
    "WitnessDaemon",
    "ReplicaLiveFireConfig",
    "ReplicaLiveFireHarness",
    "ReplicaLiveFireOutcome",
    "ReplicaLiveFireReport",
]
