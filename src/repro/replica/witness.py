"""The witness daemon: continuous redo from a shipped WAL, promotion.

A :class:`WitnessDaemon` is a :class:`~repro.serve.server.ServeDaemon`
in a different role: instead of executing client operations, it dials
the primary (``python -m repro serve --witness-of HOST:PORT``),
subscribes from its own durable watermark, adopts every shipped batch
into its log (:meth:`~repro.wal.log_manager.LogManager.adopt_records`
forces before the receipt ack — the ack is a durability promise), and
**continuously redoes the adopted log through the real recovery
path**: on a cadence it crashes its own volatile state, runs the
:class:`~repro.kernel.supervisor.RecoverySupervisor` ladder, and
installs the redone versions into its stable store.  This is the
paper's REDO test doing replication: the shipped records keep the
primary's lSIs, the witness's installed versions carry those lSIs as
vSIs, and the test ``lsi >= max(rsi, vsi + 1)`` prunes exactly the
records whose effects a previous cycle already installed — ``rSI``
pruning across a process boundary.

Until promoted, the witness refuses data requests (``UNAVAILABLE``
with its role in the message) and answers ping/health/stats with its
role, epoch and watermarks.  An operator (or harness) promotes it with
a ``promote`` request: the subscriber stops, a fencing ack carrying
``epoch + 1`` is pushed at the old primary (so a still-live zombie
refuses all further writes with ``FENCED``), a final supervised
recovery converges the adopted log, an
:class:`~repro.wal.records.EpochRecord` is forced, and the daemon
starts serving as a primary at the new epoch.  Promotion is *never*
automatic — a witness cannot distinguish a dead primary from a
partition, so the split-brain decision belongs to the operator.
"""

from __future__ import annotations

import select
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.common.identifiers import NULL_SI, StateId
from repro.core.operation import TOMBSTONE
from repro.kernel.supervisor import RecoverySupervisor
from repro.kernel.system import RecoverableSystem, SystemHealth
from repro.replica import wire
from repro.replica.epoch import INITIAL_EPOCH, EpochStore
from repro.serve import protocol
from repro.serve.server import DaemonConfig, ServeDaemon, _Connection
from repro.storage.backup import FuzzyBackup


@dataclass
class WitnessConfig:
    """Where the primary is and how eagerly the witness redoes."""

    primary_host: str = "127.0.0.1"
    primary_port: int = 0
    #: Run a redo/materialize cycle after this many adopted records
    #: (checkpoint hints from the primary also trigger one).
    redo_every_records: int = 64
    #: Backoff between subscribe attempts while the primary is away.
    reconnect_delay_s: float = 0.2
    connect_timeout_s: float = 2.0
    #: Directory for the durable epoch sidecar (None = in-memory).
    epoch_root: Optional[str] = None


class WitnessDaemon(ServeDaemon):
    """A daemon that redoes a primary's shipped WAL until promoted."""

    def __init__(
        self,
        system: RecoverableSystem,
        config: Optional[DaemonConfig] = None,
        witness: Optional[WitnessConfig] = None,
        backup: Optional[FuzzyBackup] = None,
    ) -> None:
        super().__init__(system, config, backup=backup)
        self.witness_config = witness if witness is not None else WitnessConfig()
        self.epochs = EpochStore(self.witness_config.epoch_root)
        self.epoch = self.epochs.load()
        self.role = "witness"
        self._promoted = threading.Event()
        #: Serializes kernel access between the subscriber thread
        #: (adopt / redo cycles) and the apply thread (promotion).
        self._witness_lock = threading.RLock()
        self._subscriber_thread: Optional[threading.Thread] = None
        self._stop_subscriber = threading.Event()
        self._subscriber_sock: Optional[socket.socket] = None
        self._sock_lock = threading.Lock()
        #: Serializes frames written to the subscriber socket (the
        #: promotion fence ack races the stream's receipt acks).
        self._send_lock = threading.Lock()
        self._attached = threading.Event()
        #: Highest ``through`` the primary has announced.
        self._primary_through: StateId = NULL_SI
        #: Highest ``through`` covered by our own stable log (what we
        #: ack): everything at or below it is durable here.
        self._adopted_through: StateId = NULL_SI
        #: Watermark the last redo/materialize cycle installed through.
        self._materialized_through: StateId = NULL_SI
        self._records_since_cycle = 0
        #: Completed redo/materialize cycles (telemetry + tests).
        self.redo_cycles = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "WitnessDaemon":
        super().start()
        # Whatever the adopted log already holds is our durable resume
        # position; the primary re-ships anything past it.
        self._adopted_through = self.system.log.stable_end_lsi()
        self._subscriber_thread = threading.Thread(
            target=self._subscriber_loop,
            name="repro-witness-subscribe",
            daemon=True,
        )
        self._subscriber_thread.start()
        return self

    def stop(self, graceful: bool = True) -> int:
        self._halt_subscriber()
        return super().stop(graceful)

    def kill(self) -> None:
        self._halt_subscriber()
        super().kill()

    def _halt_subscriber(self) -> None:
        self._stop_subscriber.set()
        self._close_subscriber_sock()
        thread = self._subscriber_thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=10.0)

    def _close_subscriber_sock(self) -> None:
        with self._sock_lock:
            sock, self._subscriber_sock = self._subscriber_sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def promoted(self) -> bool:
        return self._promoted.is_set()

    @property
    def attached(self) -> bool:
        """True while subscribed to a live primary."""
        return self._attached.is_set()

    @property
    def lag_records(self) -> int:
        """How far the durable log trails the primary's announcements."""
        return max(0, self._primary_through - self._adopted_through)

    @property
    def redo_lag_records(self) -> int:
        """How far materialized state trails the durable log."""
        return max(0, self._adopted_through - self._materialized_through)

    def replication_status(self) -> Dict[str, Any]:
        return {
            "role": self.role,
            "epoch": self.epoch,
            "promoted": self.promoted,
            "attached": self.attached,
            "primary_through": self._primary_through,
            "adopted_through": self._adopted_through,
            "materialized_through": self._materialized_through,
            "lag_records": self.lag_records,
            "redo_lag_records": self.redo_lag_records,
            "redo_cycles": self.redo_cycles,
        }

    def current_epoch(self) -> Optional[int]:
        return self.epoch

    # ------------------------------------------------------------------
    # admission overrides (pre-promotion gating)
    # ------------------------------------------------------------------
    def _admit(self, conn: _Connection, request: Dict[str, Any]) -> None:
        kind = request.get("kind")
        request_id = request.get("id")
        if not self._promoted.is_set():
            if kind in protocol.REPLICATION_KINDS:
                conn.send(
                    protocol.error_response(
                        request_id,
                        "BAD_REQUEST",
                        "this server is a witness; it does not accept "
                        "replication subscriptions",
                        self.system.health.value,
                    )
                )
                return
            if kind in ("get", "put", "delete", "apply"):
                target = (
                    f"{self.witness_config.primary_host}:"
                    f"{self.witness_config.primary_port}"
                )
                conn.send(
                    protocol.error_response(
                        request_id,
                        "UNAVAILABLE",
                        f"this server is a witness of {target} (epoch "
                        f"{self.epoch}); not serving until promoted",
                        self.system.health.value,
                        self.config.retry_after_ms,
                    )
                )
                return
        super()._admit(conn, request)

    def _inline_answer(
        self, kind: str, request_id: Any, health: SystemHealth
    ) -> Dict[str, Any]:
        answer = super()._inline_answer(kind, request_id, health)
        if kind in ("ping", "health"):
            answer.update(self.replication_status())
        return answer

    def _dispatch(
        self, request: Dict[str, Any], request_id: Any
    ) -> Dict[str, Any]:
        if request.get("kind") == "promote":
            return self._promote(request_id)
        return super()._dispatch(request, request_id)

    # ------------------------------------------------------------------
    # the subscriber: dial, adopt, ack, redo
    # ------------------------------------------------------------------
    def _subscriber_loop(self) -> None:
        cfg = self.witness_config
        while not self._stop_subscriber.is_set():
            try:
                sock = socket.create_connection(
                    (cfg.primary_host, cfg.primary_port),
                    timeout=cfg.connect_timeout_s,
                )
            except OSError:
                self._attached.clear()
                if self._stop_subscriber.wait(cfg.reconnect_delay_s):
                    return
                continue
            sock.settimeout(None)
            with self._sock_lock:
                if self._stop_subscriber.is_set():
                    sock.close()
                    return
                self._subscriber_sock = sock
            try:
                self._subscribe_and_stream(sock)
            except (OSError, ValueError, protocol.ProtocolError):
                pass  # peer gone, or our own socket closed under us
            finally:
                self._attached.clear()
                self._close_subscriber_sock()
            if self._stop_subscriber.wait(cfg.reconnect_delay_s):
                return

    def _send_to_primary(
        self, sock: socket.socket, frame: Dict[str, Any]
    ) -> None:
        with self._send_lock:
            protocol.send_frame(sock, frame)

    def _subscribe_and_stream(self, sock: socket.socket) -> None:
        watermark = self.system.log.stable_end_lsi()
        self._send_to_primary(
            sock, wire.subscribe_frame(watermark, self.epoch)
        )
        response = protocol.recv_frame(sock)
        if response is None or not response.get("ok"):
            # A fenced or unwilling primary; back off and retry (the
            # reconnect loop owns pacing).
            return
        try:
            primary_epoch = int(response.get("epoch", INITIAL_EPOCH))
            through = int(response.get("through", NULL_SI))
        except (TypeError, ValueError):
            return
        with self._witness_lock:
            if primary_epoch < self.epoch:
                # A stale primary must not feed us; tell it so in-band.
                self._send_to_primary(
                    sock, wire.ack_frame(self._adopted_through, self.epoch)
                )
                return
            if primary_epoch > self.epoch:
                self._set_epoch_locked(primary_epoch)
            self._primary_through = max(self._primary_through, through)
        self._attached.set()
        if self.system.obs.enabled:
            self.system.obs.count("repl.witness_subscribes")
        while not self._stop_subscriber.is_set():
            readable, _, _ = select.select([sock], [], [], 0.25)
            if not readable:
                continue
            frame = protocol.recv_frame(sock)
            if frame is None:
                return
            if frame.get("kind") != wire.KIND_BATCH:
                continue
            if not self._handle_batch(sock, frame):
                return

    def _handle_batch(
        self, sock: socket.socket, frame: Dict[str, Any]
    ) -> bool:
        """Adopt one pushed batch; ack its durable receipt.

        Returns False when the stream must end (stale pusher, or this
        witness has been promoted) — the fencing ack carrying our
        higher epoch has already been sent by then.
        """
        try:
            epoch = int(frame.get("epoch", INITIAL_EPOCH))
            through = int(frame.get("through", NULL_SI))
        except (TypeError, ValueError):
            raise protocol.ProtocolError("bad repl_batch frame")
        run_cycle = False
        obs = self.system.obs
        # The batch may carry the trace of the client write whose ack
        # gates on it; tolerant parsing (an old primary sends none).
        batch_trace = protocol.request_trace(frame)
        adopt_ctx = batch_trace.child() if batch_trace is not None else None
        with self._witness_lock:
            if self._promoted.is_set() or epoch < self.epoch:
                # The pusher's epoch is history.  The ack's epoch field
                # is the fence: the primary sees a number above its own
                # and refuses to ack anything ever again.
                self._send_to_primary(
                    sock, wire.ack_frame(self._adopted_through, self.epoch)
                )
                return False
            if epoch > self.epoch:
                self._set_epoch_locked(epoch)
            # The durable-adopt stage: decode + adopt_records (which
            # forces) is what the witness's receipt promise costs.
            with obs.span("witness.adopt_ms",
                          **(adopt_ctx.tags() if adopt_ctx is not None
                             else {})):
                records = wire.decode_records(frame.get("records") or [])
                self.system.log.adopt_records(records)
            self._adopted_through = max(
                self._adopted_through,
                through,
                self.system.log.stable_end_lsi(),
            )
            self._primary_through = max(self._primary_through, through)
            self._records_since_cycle += len(records)
            run_cycle = bool(frame.get("checkpoint")) or (
                self._records_since_cycle
                >= self.witness_config.redo_every_records
            )
        # The receipt ack goes out *after* adopt_records forced the
        # batch (durable receipt), *before* the redo cycle (redo is
        # catch-up work, not part of the durability contract).  It
        # echoes the batch's trace back at the primary.
        ack_ctx = adopt_ctx.child() if adopt_ctx is not None else None
        with obs.span("witness.ack_ms",
                      **(ack_ctx.tags() if ack_ctx is not None else {})):
            self._send_to_primary(
                sock,
                wire.ack_frame(
                    self._adopted_through,
                    self.epoch,
                    trace=(batch_trace.to_wire()
                           if batch_trace is not None else None),
                ),
            )
        if obs.enabled:
            obs.count("repl.witness_batches")
            obs.gauge(
                "repl.witness_adopted_through", self._adopted_through
            )
            # Live lag gauges, updated per batch (not just per redo
            # cycle) so /metrics always reflects the current windows.
            obs.gauge("repl.lag_records", self.lag_records)
            obs.gauge("repl.redo_lag_records", self.redo_lag_records)
        if run_cycle:
            self._redo_cycle()
        return True

    def _set_epoch_locked(self, epoch: int) -> None:
        previous = self.epoch
        self.epoch = self.epochs.save(epoch)
        if self.epoch != previous:
            self.system.obs.emit(
                "epoch.change",
                old=previous,
                new=self.epoch,
                role=self.role,
            )

    # ------------------------------------------------------------------
    # the redo/materialize cycle (the paper's recovery path, on a timer)
    # ------------------------------------------------------------------
    def _redo_cycle(self) -> None:
        """Crash, supervise recovery, install, truncate.

        One cycle makes everything at or below the current stable end
        *recovery-stable*: the supervisor replays the adopted records
        through analysis + REDO-test pruning, and the materialize step
        installs every dirty cache entry into the stable store at its
        vSI.  After installation every retained record's effects have
        ``vSI >= lSI``, so the REDO test would skip them all — which is
        exactly the condition under which truncating them is safe (and
        the witness's own restart recovery stays bounded).
        """
        with self._witness_lock:
            if self._promoted.is_set():
                return
            watermark = self.system.log.stable_end_lsi()
            if watermark == NULL_SI or watermark <= self._materialized_through:
                self._records_since_cycle = 0
                return
            start = time.perf_counter()
            if not self.system._crashed:
                self.system.crash()
            RecoverySupervisor(
                self.system, config=self.config.watchdog.supervisor
            ).run()
            if self.system.health is not SystemHealth.HEALTHY:
                # The ladder did not converge (it will re-run next
                # cycle and at promotion); keep the log intact.
                return
            self._materialize_locked(watermark)
            self._materialized_through = watermark
            self._records_since_cycle = 0
            self.redo_cycles += 1
            if self.system.obs.enabled:
                self.system.obs.count("repl.redo_cycles")
                self.system.obs.observe(
                    "repl.redo_cycle_seconds", time.perf_counter() - start
                )
                self.system.obs.gauge(
                    "repl.redo_lag_records", self.redo_lag_records
                )

    def _materialize_locked(self, watermark: StateId) -> None:
        """Install redone versions; truncate the covered log prefix."""
        system = self.system
        cache, store, log = system.cache, system.store, system.log
        for obj in cache.dirty_objects():
            entry = cache.entry(obj)
            if entry is None:
                continue
            if store.vsi_of(obj) >= entry.vsi:
                continue  # an earlier cycle already installed this
            if entry.value is TOMBSTONE:
                store.delete(obj)
            else:
                store.write(obj, entry.value, entry.vsi)
        log.truncate_before(watermark + 1, watermark + 1)

    # ------------------------------------------------------------------
    # promotion (apply thread, via the ``promote`` request kind)
    # ------------------------------------------------------------------
    def _promote(self, request_id: Any) -> Dict[str, Any]:
        """Fence the old epoch, converge the log, start serving."""
        if self._promoted.is_set():
            return protocol.ok_response(
                request_id,
                self.system.health.value,
                role="primary",
                epoch=self.epoch,
                watermark=self._adopted_through,
                already_promoted=True,
            )
        # Stop the stream first: nothing may be adopted at or after the
        # promotion watermark.
        self._stop_subscriber.set()
        with self._witness_lock:
            old_epoch = self.epoch
            new_epoch = self.epochs.save(self.epoch + 1)
            self.epoch = new_epoch
        self.system.obs.emit(
            "epoch.promote", old=old_epoch, new=new_epoch
        )
        # Best-effort in-band fence: an ack carrying the new epoch makes
        # a still-live primary refuse every further write with FENCED.
        # (If the primary is dead, its loss of the witness connection
        # already guarantees it can never ack — replication is
        # semi-synchronous.)
        with self._sock_lock:
            sock = self._subscriber_sock
        if sock is not None:
            try:
                self._send_to_primary(
                    sock, wire.ack_frame(self._adopted_through, new_epoch)
                )
            except (OSError, protocol.ProtocolError):
                pass
        self._halt_subscriber()
        with self._witness_lock:
            watermark = self.system.log.stable_end_lsi()
            if not self.system._crashed:
                self.system.crash()
            RecoverySupervisor(
                self.system, config=self.config.watchdog.supervisor
            ).run()
            if self.system.health is SystemHealth.FAILED:
                return protocol.error_response(
                    request_id,
                    "FAILED",
                    "promotion recovery did not converge",
                    self.system.health.value,
                )
            # New appends must never reuse a primary-era lSI (the
            # shipped stream had bookkeeping gaps above our stable end).
            self.system.log.reserve_lsis_through(
                max(self._primary_through, self._adopted_through)
            )
            from repro.wal.records import EpochRecord

            self.system.log.append(
                EpochRecord(
                    epoch=new_epoch,
                    role="primary",
                    note=f"promoted from witness at watermark {watermark}",
                )
            )
            self.system.log.force()
            self.role = "primary"
            self._promoted.set()
        self.system.obs.emit(
            "epoch.promoted",
            epoch=new_epoch,
            watermark=watermark,
            health=self.system.health.value,
        )
        if self.system.obs.enabled:
            self.system.obs.count("repl.promotions")
        return protocol.ok_response(
            request_id,
            self.system.health.value,
            role="primary",
            epoch=new_epoch,
            watermark=watermark,
        )

    # ------------------------------------------------------------------
    # HTTP endpoint providers
    # ------------------------------------------------------------------
    def _health_payload(self) -> Tuple[int, Dict[str, Any]]:
        status, payload = super()._health_payload()
        payload.update(self.replication_status())
        return status, payload

    def _ready_payload(self) -> Tuple[int, Dict[str, Any]]:
        if self._promoted.is_set():
            return super()._ready_payload()
        _status, payload = super()._health_payload()
        payload.update(self.replication_status())
        reasons = []
        if not self.attached:
            reasons.append("not subscribed to a primary")
        if self.lag_records > 0:
            reasons.append(
                f"{self.lag_records} records behind the primary's "
                "watermark"
            )
        if self.system.health is SystemHealth.RECOVERING:
            reasons.append("redo cycle in progress")
        payload["ready"] = not reasons
        payload["not_ready_reasons"] = reasons
        return (200 if not reasons else 503), payload
