"""Replication wire format: WAL records over the serving protocol.

Replication reuses the length-prefixed JSON framing of
:mod:`repro.serve.protocol` — a witness dials the primary's *normal*
request listener and sends one ``repl_subscribe`` frame; the primary
answers it like any request, then keeps the connection and pushes
``repl_batch`` frames down it, each of which the witness answers with a
``repl_ack``.  Three frame shapes:

``repl_subscribe`` (witness → primary, once per connection)::

    {"id": 0, "kind": "repl_subscribe", "watermark": 41, "epoch": 1}

``watermark`` is the witness's durable position (the last lSI it has on
its stable log, ``NULL_SI`` when empty): the primary resumes shipping
from the record after it, so a restarting witness never re-downloads
what it already holds.  The response carries the primary's ``epoch``
and current stable end (``through``).

``repl_batch`` (primary → witness, pushed)::

    {"kind": "repl_batch", "epoch": 1, "through": 57,
     "checkpoint": false, "records": ["<base64 pickle>", ...]}

``records`` are the primary's forced :class:`~repro.wal.records`
objects — operation, fence and epoch records only; the primary's
private bookkeeping records (installation, flush, checkpoint) describe
the *primary's* stable store and are never shipped — with their
original lSIs preserved.  ``through`` is the primary's stable end when
the batch was built: it is the unit of the watermark handshake, and it
may exceed the last shipped record's lSI (bookkeeping gaps).
``checkpoint`` hints that the primary just checkpointed, nudging the
witness to run a redo/materialize cycle soon.

``repl_ack`` (witness → primary, one per batch)::

    {"kind": "repl_ack", "watermark": 57, "epoch": 1}

The ack is a **durability promise**: the witness sends it only after
:meth:`~repro.wal.log_manager.LogManager.adopt_records` has forced the
batch to its own stable log.  The primary releases the client ack for
an operation only once the witness watermark covers its lSI —
replication is semi-synchronous, which is what makes the acked-write
oracle extendable across the pair.

Records travel as pickles in base64 envelopes.  The pair runs the same
codebase on both ends and the channel is operator-configured (the
witness dials an address it was given), so the trusted-peer assumption
of pickle holds here the same way it does for the on-disk log frames.
"""

from __future__ import annotations

import base64
import pickle
from typing import Any, Dict, List, Optional, Sequence

from repro.serve.errors import ProtocolError
from repro.wal.records import (
    EpochRecord,
    FenceRecord,
    LogRecord,
    OperationRecord,
)

#: Record kinds a primary ships.  Everything else in its WAL is private
#: bookkeeping about its own stable store and must not prune (or drive)
#: the witness's redo.
SHIPPED_RECORD_KINDS = (OperationRecord, FenceRecord, EpochRecord)

KIND_SUBSCRIBE = "repl_subscribe"
KIND_BATCH = "repl_batch"
KIND_ACK = "repl_ack"


def shippable(record: LogRecord) -> bool:
    """True for record kinds that cross the replication channel."""
    return isinstance(record, SHIPPED_RECORD_KINDS)


def encode_records(records: Sequence[LogRecord]) -> List[str]:
    """Serialize records for a ``repl_batch`` frame."""
    return [
        base64.b64encode(pickle.dumps(record)).decode("ascii")
        for record in records
    ]


def decode_records(blobs: Sequence[Any]) -> List[LogRecord]:
    """Invert :func:`encode_records`, validating every entry."""
    records: List[LogRecord] = []
    for blob in blobs:
        if not isinstance(blob, str):
            raise ProtocolError(
                f"repl_batch record must be a base64 string, got "
                f"{type(blob).__name__}"
            )
        try:
            record = pickle.loads(base64.b64decode(blob))
        except Exception as exc:  # noqa: BLE001 - any decode failure
            raise ProtocolError(f"undecodable shipped record: {exc}") from None
        if not isinstance(record, LogRecord):
            raise ProtocolError(
                f"shipped blob decoded to {type(record).__name__}, "
                "not a LogRecord"
            )
        records.append(record)
    return records


def batch_frame(
    epoch: int,
    through: int,
    records: Sequence[LogRecord],
    checkpoint: bool = False,
    trace: Optional[Dict[str, str]] = None,
) -> Dict[str, Any]:
    """Build one ``repl_batch`` push frame.

    ``trace`` is the optional distributed-trace wire field of the
    client write whose ack is gated on this batch: the witness parses
    it tolerantly (see :func:`repro.serve.protocol.request_trace`) and
    parents its adopt/ack spans on it.
    """
    frame: Dict[str, Any] = {
        "kind": KIND_BATCH,
        "epoch": int(epoch),
        "through": int(through),
        "checkpoint": bool(checkpoint),
        "records": encode_records(records),
    }
    if trace is not None:
        frame["trace"] = trace
    return frame


def subscribe_frame(watermark: int, epoch: int) -> Dict[str, Any]:
    """Build the ``repl_subscribe`` handshake frame."""
    return {
        "id": 0,
        "kind": KIND_SUBSCRIBE,
        "watermark": int(watermark),
        "epoch": int(epoch),
    }


def ack_frame(
    watermark: int,
    epoch: int,
    trace: Optional[Dict[str, str]] = None,
) -> Dict[str, Any]:
    """Build one ``repl_ack`` durable-receipt frame.

    ``trace`` echoes the acknowledged batch's trace field back to the
    primary, closing the shipped span's loop on the wire.
    """
    frame: Dict[str, Any] = {
        "kind": KIND_ACK,
        "watermark": int(watermark),
        "epoch": int(epoch),
    }
    if trace is not None:
        frame["trace"] = trace
    return frame
