"""Durable replication epochs: the split-brain guard's source of truth.

The epoch is a monotonically increasing integer naming who may
acknowledge writes.  Promotion bumps it; every replication frame and
every ack carries it; a frame from a smaller epoch is refused with
``FENCED``.  The number must survive restarts — a promoted witness that
reboots and comes back believing it is still epoch 1 would accept the
old primary's stream again — and it cannot live only in the WAL,
because checkpoint truncation legitimately drops old records
(:class:`~repro.wal.records.EpochRecord` is the in-band copy; this
sidecar is the durable one).

``EpochStore`` keeps the number in ``epoch.json`` under the daemon's
data directory, written with the tmp-write → rename → directory-fsync
dance the file log uses, so a crash mid-update leaves either the old
number or the new one, never garbage.  A store built with ``root=None``
(the in-process harnesses) keeps the number in memory with the same
interface.
"""

from __future__ import annotations

import json
import os
from typing import Optional

#: Epoch of a pair that has never failed over.
INITIAL_EPOCH = 1

_FILENAME = "epoch.json"


class EpochStore:
    """Durable (or in-memory) storage for one daemon's epoch."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root
        self._memory = INITIAL_EPOCH
        if root is not None:
            os.makedirs(root, exist_ok=True)

    @property
    def path(self) -> Optional[str]:
        if self.root is None:
            return None
        return os.path.join(self.root, _FILENAME)

    def load(self) -> int:
        """The stored epoch; ``INITIAL_EPOCH`` when none was saved."""
        if self.root is None:
            return self._memory
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            epoch = int(payload["epoch"])
        except (OSError, ValueError, KeyError, TypeError):
            return INITIAL_EPOCH
        return max(epoch, INITIAL_EPOCH)

    def save(self, epoch: int) -> int:
        """Persist ``epoch`` (monotone: a smaller number is ignored).

        Returns the number actually stored.
        """
        current = self.load()
        epoch = max(int(epoch), current)
        if epoch == current and self.root is not None:
            return epoch
        if self.root is None:
            self._memory = epoch
            return epoch
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"epoch": epoch}, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        directory = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(directory)
        finally:
            os.close(directory)
        return epoch
