"""Primary-side replication: ship forced WAL records, gate the ack.

The :class:`ReplicationSender` hangs off a
:class:`~repro.serve.server.ServeDaemon` and owns the primary half of
the protocol in :mod:`repro.replica.wire`:

* a witness's ``repl_subscribe`` registers its connection (and durable
  watermark) here; the reply carries the primary's epoch and stable
  end, and a catch-up batch follows immediately;
* after every client write's WAL force, the apply loop calls
  :meth:`replicate`, which ships the new stable records and **blocks
  until the witness's durable watermark covers the operation's lSI**
  (or the request deadline runs out).  Replication is
  semi-synchronous: with no witness attached, or a witness too slow,
  the write is answered ``UNAVAILABLE`` and *not* acknowledged —
  consistency over availability, so the acked-write oracle holds
  across failover;
* the shipped-but-unacked window is pinned against checkpoint
  truncation with a log protection
  (:meth:`~repro.wal.log_manager.LogManager.add_protection`), advanced
  as acks arrive — a reconnecting witness can always be caught up from
  the primary's own log;
* epoch fencing: a subscribe or ack carrying a *larger* epoch proves a
  promotion happened elsewhere — the sender marks itself fenced and
  every subsequent write is refused with ``FENCED`` (an ack from the
  old epoch must never be produced).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.common.identifiers import NULL_SI, StateId
from repro.obs.tracing import TraceContext
from repro.replica import wire
from repro.replica.epoch import EpochStore
from repro.serve import protocol
from repro.serve.errors import FencedError, ServerUnavailableError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.server import ServeDaemon, _Connection


@dataclass
class ReplicationConfig:
    """Primary-side replication policy."""

    #: Directory for the durable epoch sidecar (None = in-memory, the
    #: harness default; real daemons pass their data directory).
    epoch_root: Optional[str] = None
    #: Ceiling on the per-write wait for the witness's durable receipt
    #: (the request's own deadline applies too; the smaller wins).
    ack_timeout_s: float = 5.0
    #: Backoff hint attached to replication UNAVAILABLE rejections.
    retry_after_ms: int = 100
    #: Maximum records per ``repl_batch`` frame (a reconnecting witness
    #: far behind is caught up in chunks, not one giant frame).
    max_batch_records: int = 512


class ReplicationSender:
    """The primary's shipping, watermark and fencing state."""

    def __init__(
        self, daemon: "ServeDaemon", config: Optional[ReplicationConfig] = None
    ) -> None:
        self.daemon = daemon
        self.config = config if config is not None else ReplicationConfig()
        self.epochs = EpochStore(self.config.epoch_root)
        #: This primary's epoch.  Bumped only by an external promotion
        #: (observed via fencing); the primary itself never promotes.
        self.epoch = self.epochs.load()
        #: True once a higher epoch has been observed: a witness was
        #: promoted, and this primary must never ack again.
        self.fenced = False
        self._cond = threading.Condition()
        self._conn: Optional["_Connection"] = None
        #: Last lSI the attached witness has durably acknowledged.
        self._watermark: StateId = NULL_SI
        #: Stable end already announced to the witness (``through``).
        self._shipped_through: StateId = NULL_SI
        self._protection: Optional[int] = None

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        """True while a live witness connection is registered."""
        with self._cond:
            return self._conn is not None and self._conn.alive

    @property
    def watermark(self) -> StateId:
        """The witness's durable watermark (``NULL_SI`` if never acked)."""
        with self._cond:
            return self._watermark

    def status(self) -> Dict[str, Any]:
        """Replication fields for health/readiness payloads."""
        with self._cond:
            return {
                "role": "primary",
                "epoch": self.epoch,
                "fenced": self.fenced,
                "witness_attached": (
                    self._conn is not None and self._conn.alive
                ),
                "witness_watermark": self._watermark,
                "shipped_through": self._shipped_through,
            }

    # ------------------------------------------------------------------
    # frames from the witness (reader threads)
    # ------------------------------------------------------------------
    def handle_frame(
        self, conn: "_Connection", request: Dict[str, Any]
    ) -> None:
        """Route one replication frame from a reader thread."""
        kind = request.get("kind")
        if kind == wire.KIND_SUBSCRIBE:
            self._handle_subscribe(conn, request)
        elif kind == wire.KIND_ACK:
            self._handle_ack(conn, request)

    def _handle_subscribe(
        self, conn: "_Connection", request: Dict[str, Any]
    ) -> None:
        request_id = request.get("id")
        health = self.daemon.system.health.value
        try:
            watermark = int(request.get("watermark", NULL_SI))
            peer_epoch = int(request.get("epoch", self.epoch))
        except (TypeError, ValueError):
            conn.send(
                protocol.error_response(
                    request_id, "BAD_REQUEST", "bad subscribe frame", health
                )
            )
            return
        log = self.daemon.system.log
        previous: Optional["_Connection"] = None
        with self._cond:
            if peer_epoch > self.epoch:
                # The subscriber outranks us: a promotion happened while
                # we were partitioned.  Fence forever; never ack again.
                self._fence_locked(peer_epoch)
                conn.send(
                    protocol.error_response(
                        request_id,
                        "FENCED",
                        f"subscriber epoch {peer_epoch} outranks "
                        f"primary epoch {self.epoch}; primary is fenced",
                        health,
                    )
                )
                return
            if self.fenced:
                conn.send(
                    protocol.error_response(
                        request_id,
                        "FENCED",
                        "primary is fenced; a newer epoch is serving",
                        health,
                    )
                )
                return
            previous, self._conn = self._conn, conn
            self._watermark = watermark
            self._shipped_through = watermark
            # Pin everything the witness does not yet hold: checkpoint
            # truncation must not outrun the shipping stream.
            if self._protection is not None:
                log.remove_protection(self._protection)
            self._protection = log.add_protection(watermark + 1)
            conn.send(
                protocol.ok_response(
                    request_id,
                    health,
                    epoch=self.epoch,
                    through=log.stable_end_lsi(),
                )
            )
            self._ship_locked()
            self._cond.notify_all()
        if previous is not None and previous is not conn:
            previous.close()
        if self.daemon.system.obs.enabled:
            self.daemon.system.obs.count("repl.subscribes")

    def _handle_ack(
        self, conn: "_Connection", request: Dict[str, Any]
    ) -> None:
        try:
            watermark = int(request.get("watermark", NULL_SI))
            peer_epoch = int(request.get("epoch", self.epoch))
        except (TypeError, ValueError):
            return
        with self._cond:
            if peer_epoch > self.epoch:
                self._fence_locked(peer_epoch)
                return
            if conn is not self._conn:
                return  # a superseded connection's straggler
            if watermark > self._watermark:
                self._watermark = watermark
                log = self.daemon.system.log
                if self._protection is not None:
                    log.remove_protection(self._protection)
                self._protection = log.add_protection(watermark + 1)
            unacked = max(0, self._shipped_through - self._watermark)
            self._cond.notify_all()
        obs = self.daemon.system.obs
        if obs.enabled:
            obs.gauge("repl.witness_watermark", watermark)
            obs.gauge("repl.unacked_records", unacked)

    def detach(self, conn: "_Connection") -> None:
        """A registered witness connection died (reader loop exited)."""
        with self._cond:
            if conn is self._conn:
                self._conn = None
                self._cond.notify_all()

    def _fence_locked(self, peer_epoch: int) -> None:
        self.fenced = True
        self.epochs.save(peer_epoch)
        if self._conn is not None:
            self._conn = None
        self._cond.notify_all()
        obs = self.daemon.system.obs
        if obs.enabled:
            obs.count("repl.fenced")
        obs.emit("epoch.fenced", old=self.epoch, new=peer_epoch)

    # ------------------------------------------------------------------
    # shipping (apply thread)
    # ------------------------------------------------------------------
    def replicate(
        self,
        lsi: StateId,
        deadline: Optional[float] = None,
        trace: Optional[TraceContext] = None,
    ) -> None:
        """Block until the witness durably holds ``lsi``; raise otherwise.

        Called by the apply loop after the local WAL force, before the
        client ack.  Raises :class:`FencedError` if this primary has
        been fenced, :class:`ServerUnavailableError` (retryable) when
        no witness is attached or the receipt does not arrive in time.

        ``trace`` is the acking request's trace context: the batch that
        ships this lSI carries it on the wire, so the witness's adopt
        and durable-ack spans join the request's tree.
        """
        timeout_at = time.monotonic() + self.config.ack_timeout_s
        if deadline is not None:
            timeout_at = min(timeout_at, deadline)
        with self._cond:
            self._ship_locked(trace=trace)
            while True:
                if self.fenced:
                    raise FencedError(
                        f"primary epoch {self.epoch} is fenced; a "
                        "promoted witness is serving"
                    )
                if self._watermark >= lsi:
                    return
                if self._conn is None or not self._conn.alive:
                    raise ServerUnavailableError(
                        "write executed but not acknowledged: no witness "
                        "attached to replicate it",
                        retry_after_ms=self.config.retry_after_ms,
                    )
                remaining = timeout_at - time.monotonic()
                if remaining <= 0:
                    raise ServerUnavailableError(
                        "write executed but not acknowledged: witness "
                        f"receipt for lSI {lsi} did not arrive in time "
                        f"(witness watermark {self._watermark})",
                        retry_after_ms=self.config.retry_after_ms,
                    )
                self._cond.wait(min(remaining, 0.05))
                self._ship_locked(trace=trace)

    def ship_checkpoint_hint(self) -> None:
        """Push current stable records with the checkpoint flag set."""
        with self._cond:
            self._ship_locked(checkpoint=True)

    def _ship_locked(
        self,
        checkpoint: bool = False,
        trace: Optional[TraceContext] = None,
    ) -> None:
        """Push stable records past ``_shipped_through`` (lock held)."""
        conn = self._conn
        if conn is None or not conn.alive or self.fenced:
            return
        log = self.daemon.system.log
        through = log.stable_end_lsi()
        if through <= self._shipped_through and not checkpoint:
            return
        records = [
            record
            for record in log.stable_records(self._shipped_through + 1)
            if wire.shippable(record)
        ]
        obs = self.daemon.system.obs
        ship_ctx = trace.child() if trace is not None else None
        wire_trace = ship_ctx.to_wire() if ship_ctx is not None else None
        with obs.span("repl.ship_ms",
                      **(ship_ctx.tags() if ship_ctx is not None else {})):
            limit = max(1, self.config.max_batch_records)
            while len(records) > limit:
                chunk, records = records[:limit], records[limit:]
                conn.send(
                    wire.batch_frame(
                        self.epoch, chunk[-1].lsi, chunk, trace=wire_trace
                    )
                )
            conn.send(
                wire.batch_frame(
                    self.epoch, through, records, checkpoint,
                    trace=wire_trace,
                )
            )
        self._shipped_through = through
        if obs.enabled:
            obs.count("repl.batches")
            obs.gauge("repl.shipped_through", through)
            obs.gauge(
                "repl.unacked_records",
                max(0, self._shipped_through - self._watermark),
            )

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the truncation pin and drop the witness connection."""
        with self._cond:
            if self._protection is not None:
                self.daemon.system.log.remove_protection(self._protection)
                self._protection = None
            self._conn = None
            self._cond.notify_all()
