"""Live-fire torture (v5): kill the primary, promote the witness, audit.

Torture v3 tortures one daemon; this lane tortures the **pair**.  A
primary :class:`~repro.serve.server.ServeDaemon` with a
:class:`~repro.replica.sender.ReplicationSender` and a
:class:`~repro.replica.witness.WitnessDaemon` run over real sockets;
concurrent clients (constructed with the witness as their failover
target) drive puts at the primary; at a seeded ack count the run takes
one of two lanes:

* **kill** — the primary is SIGKILL-modelled dead mid-workload
  (``daemon.kill()``), the harness promotes the witness, and the
  clients fail over to it;
* **zombie** — the primary stays *alive* while the witness is
  promoted.  The promotion's in-band fencing ack (an ``repl_ack``
  carrying ``epoch + 1``) must make the old primary refuse every
  further write with ``FENCED`` — the lane that proves a deposed
  primary cannot keep acknowledging writes the new epoch will never
  see.

The oracle is torture v3's exactly-once acked-write audit, run against
the **promoted witness**: for every object, the recovered vSI is at
least the highest lSI any client was ever acked (by either epoch), and
the recovered value is something a client actually sent.  Because the
primary acks only after the witness's durable receipt
(semi-synchronous shipping), an ack can never name state the witness
does not hold — so the audit holds across the failover, not just
across a restart.

On top of the v3 oracle, two pair-specific invariants:

* **promotion always completes** — every run must end with the
  witness promoted, HEALTHY, and serving reads and writes;
* **no post-promotion ack from the old epoch** — an ack carrying the
  deposed epoch whose lSI lies *above* the promotion watermark would
  name a write the promoted state cannot contain; the count of such
  acks must be zero.  (An old-epoch ack at or below the watermark is
  a benign race: its write was adopted before promotion and is part
  of the promoted state.)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import DegradedModeError
from repro.common.rng import make_rng
from repro.kernel.supervisor import SupervisorConfig
from repro.kernel.system import RecoverableSystem, SystemHealth
from repro.obs.metrics import MetricsRegistry
from repro.replica.sender import ReplicationConfig
from repro.replica.witness import WitnessConfig, WitnessDaemon
from repro.serve.client import DaemonClient, RetryPolicy
from repro.serve.errors import ServeError
from repro.serve.server import DaemonConfig, ServeDaemon
from repro.serve.watchdog import WatchdogConfig


@dataclass
class ReplicaLiveFireConfig:
    """Workload shape for one primary/witness torture campaign."""

    #: Concurrent client threads; disjoint object sets per client.
    clients: int = 3
    #: Sequential put requests each client attempts.
    requests_per_client: int = 10
    #: Objects each client cycles its puts over.
    objects_per_client: int = 3
    #: Fraction of runs that take the zombie lane (primary left alive
    #: through the promotion) instead of the kill lane.
    zombie_ratio: float = 0.2
    #: Witness redo cadence; small, so redo cycles actually interleave
    #: with the workload instead of all happening at the end.
    redo_every_records: int = 8
    #: Primary-side ceiling on the per-write witness-receipt wait.
    ack_timeout_s: float = 2.0
    #: Ladder budget for witness redo/promotion recoveries.
    supervisor_attempts: int = 24
    #: Daemon admission-queue bound.
    max_queue: int = 16
    #: Client retry budget per request.  Generous: a request caught by
    #: the kill must survive connect-refused → rotate → witness
    #: UNAVAILABLE (not yet promoted) → rotate ... until promotion.
    client_attempts: int = 40
    client_base_delay: float = 0.002
    client_deadline: float = 15.0
    #: Wall-clock cap waiting for the witness to first attach.
    attach_timeout_s: float = 10.0
    #: Post-promotion writes driven directly at a zombie primary; every
    #: one must be refused (FENCED or UNAVAILABLE), never acked.
    zombie_probe_writes: int = 3


@dataclass
class ReplicaLiveFireOutcome:
    """One kill-promote-verify run against a live pair."""

    description: str
    ok: bool
    error: str = ""
    seed: Optional[int] = None
    #: Which lane this run took ("kill" or "zombie").
    lane: str = "kill"
    acked: int = 0
    sent: int = 0
    failed: int = 0
    #: Did the witness end the run promoted and HEALTHY?
    promoted: bool = False
    #: Seconds from the kill/fence decision to the promote ack.
    failover_seconds: float = 0.0
    #: Redo cycles the witness completed during the run.
    redo_cycles: int = 0
    #: Acks carrying the deposed epoch with an lSI above the promotion
    #: watermark — writes the promoted state cannot contain.  Must be 0.
    old_epoch_acks: int = 0
    #: Acked writes found missing or stale on the promoted witness.
    losses: List[str] = field(default_factory=list)


@dataclass
class ReplicaLiveFireReport:
    """Aggregate verdict of a torture v5 campaign."""

    mode: str = "replica"
    outcomes: List[ReplicaLiveFireOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def total_acked(self) -> int:
        return sum(outcome.acked for outcome in self.outcomes)

    @property
    def total_losses(self) -> int:
        return sum(len(outcome.losses) for outcome in self.outcomes)

    @property
    def total_old_epoch_acks(self) -> int:
        return sum(outcome.old_epoch_acks for outcome in self.outcomes)

    def failures(self) -> List[ReplicaLiveFireOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def summary(self) -> str:
        failed = len(self.failures())
        status = "OK" if failed == 0 else f"{failed} FAILED"
        return (
            f"torture v5 ({self.mode}): {len(self.outcomes)} runs, "
            f"{self.total_acked} acked writes, "
            f"{self.total_losses} acked losses, "
            f"{self.total_old_epoch_acks} old-epoch acks — {status}"
        )


class _PairClientRecord:
    """What one client thread sent, and every ack with its epoch."""

    def __init__(self) -> None:
        #: obj -> every value this client sent for it (ack or not).
        self.sent_values: Dict[str, List[str]] = {}
        #: (obj, value, lsi, epoch, monotonic ack time), in ack order.
        self.acks: List[Tuple[str, str, int, Optional[int], float]] = []
        self.sent = 0
        self.failed = 0
        self.errors: List[str] = []


class ReplicaLiveFireHarness:
    """Kills primaries under load and audits the promoted witness."""

    def __init__(
        self,
        config: Optional[ReplicaLiveFireConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else ReplicaLiveFireConfig()
        self.obs = metrics

    # ------------------------------------------------------------------
    # one run
    # ------------------------------------------------------------------
    def run(self, seed: int) -> ReplicaLiveFireOutcome:
        cfg = self.config
        lane = (
            "zombie"
            if make_rng(f"replica-lane:{seed}").random() < cfg.zombie_ratio
            else "kill"
        )
        outcome = ReplicaLiveFireOutcome(
            f"replica livefire seed={seed} lane={lane}",
            True,
            seed=seed,
            lane=lane,
        )
        watchdog = WatchdogConfig(
            supervisor=SupervisorConfig(max_attempts=cfg.supervisor_attempts)
        )
        primary_system = RecoverableSystem()
        if self.obs is not None:
            primary_system.attach_metrics(self.obs)
        primary = ServeDaemon(
            primary_system,
            DaemonConfig(
                port=0,
                http_port=None,
                max_queue=cfg.max_queue,
                retry_after_ms=5,
                watchdog=watchdog,
            ),
            replication=ReplicationConfig(
                ack_timeout_s=cfg.ack_timeout_s, retry_after_ms=5
            ),
        ).start()
        witness_system = RecoverableSystem()
        if self.obs is not None:
            witness_system.attach_metrics(self.obs)
        witness = WitnessDaemon(
            witness_system,
            DaemonConfig(
                port=0,
                http_port=None,
                max_queue=cfg.max_queue,
                retry_after_ms=5,
                watchdog=watchdog,
            ),
            witness=WitnessConfig(
                primary_port=primary.port,
                redo_every_records=cfg.redo_every_records,
                reconnect_delay_s=0.02,
            ),
        ).start()
        try:
            return self._run_pair(seed, lane, outcome, primary, witness)
        finally:
            witness.stop(graceful=False)
            primary.kill()

    def _run_pair(
        self,
        seed: int,
        lane: str,
        outcome: ReplicaLiveFireOutcome,
        primary: ServeDaemon,
        witness: WitnessDaemon,
    ) -> ReplicaLiveFireOutcome:
        cfg = self.config
        deadline = time.monotonic() + cfg.attach_timeout_s
        while time.monotonic() < deadline:
            if witness.attached and primary.replication.attached:
                break
            time.sleep(0.002)
        else:
            outcome.ok = False
            outcome.error = "witness never attached to the primary"
            return outcome
        records = [_PairClientRecord() for _ in range(cfg.clients)]
        stop = threading.Event()
        workers = [
            threading.Thread(
                target=self._client_worker,
                args=(seed, cid, primary.port, witness.port, records[cid],
                      stop),
                name=f"replica-livefire-client-{cid}",
                daemon=True,
            )
            for cid in range(cfg.clients)
        ]
        for worker in workers:
            worker.start()
        total = cfg.clients * cfg.requests_per_client
        kill_after = make_rng(f"replica-kill:{seed}").randint(1, total)
        loop_deadline = time.monotonic() + 30.0
        while time.monotonic() < loop_deadline:
            if sum(len(record.acks) for record in records) >= kill_after:
                break
            if not any(worker.is_alive() for worker in workers):
                break
            time.sleep(0.002)
        failover_start = time.monotonic()
        if lane == "kill":
            primary.kill()
        promote = self._promote(witness)
        promote_time = time.monotonic()
        outcome.failover_seconds = promote_time - failover_start
        if not promote.get("ok"):
            outcome.ok = False
            outcome.error = f"promotion failed: {promote.get('error')}"
            stop.set()
            for worker in workers:
                worker.join(timeout=10.0)
            return outcome
        promoted_epoch = promote["epoch"]
        promotion_watermark = promote["watermark"]
        for worker in workers:
            worker.join(timeout=20.0)
        stop.set()
        outcome.sent = sum(record.sent for record in records)
        outcome.acked = sum(len(record.acks) for record in records)
        outcome.failed = sum(record.failed for record in records)
        outcome.redo_cycles = witness.redo_cycles
        # Invariant: no post-promotion ack from the deposed epoch above
        # the promotion watermark (see the module docstring).
        for record in records:
            for _obj, _value, lsi, epoch, at in record.acks:
                if (
                    epoch is not None
                    and epoch < promoted_epoch
                    and at > promote_time
                    and lsi > promotion_watermark
                ):
                    outcome.old_epoch_acks += 1
        if lane == "zombie":
            self._probe_zombie(primary, outcome, promoted_epoch,
                               promotion_watermark, seed)
            primary.kill()
        try:
            self._verify_promoted(witness, records, outcome, seed)
        except Exception as exc:  # noqa: BLE001 - verdict, not control flow
            outcome.ok = False
            outcome.error = f"{type(exc).__name__}: {exc}"
        if outcome.ok and not outcome.promoted:
            outcome.ok = False
            outcome.error = "witness did not end the run promoted and serving"
        if outcome.ok and outcome.old_epoch_acks:
            outcome.ok = False
            outcome.error = (
                f"{outcome.old_epoch_acks} post-promotion acks from the "
                "deposed epoch"
            )
        if outcome.ok and outcome.losses:
            outcome.ok = False
            outcome.error = f"{len(outcome.losses)} acked writes lost"
        return outcome

    def campaign(self, runs: int, seed: int = 0) -> ReplicaLiveFireReport:
        """``runs`` seeded pair runs; run ``i`` uses ``seed + i``."""
        report = ReplicaLiveFireReport()
        for index in range(runs):
            report.outcomes.append(self.run(seed + index))
        return report

    # ------------------------------------------------------------------
    # pieces
    # ------------------------------------------------------------------
    def _promote(self, witness: WitnessDaemon) -> Dict[str, Any]:
        client = DaemonClient(
            "127.0.0.1",
            witness.port,
            policy=RetryPolicy(attempts=5, base_delay=0.01, deadline=20.0),
        )
        try:
            return client.request("promote")
        except (ServeError, OSError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        finally:
            client.close()

    def _client_worker(
        self,
        seed: int,
        cid: int,
        primary_port: int,
        witness_port: int,
        record: _PairClientRecord,
        stop: threading.Event,
    ) -> None:
        cfg = self.config
        rng = make_rng(f"replica-client:{seed}:{cid}")
        client = DaemonClient(
            "127.0.0.1",
            primary_port,
            policy=RetryPolicy(
                attempts=cfg.client_attempts,
                base_delay=cfg.client_base_delay,
                max_delay=0.1,
                deadline=cfg.client_deadline,
                rng=rng,
            ),
            connect_timeout=2.0,
            failover=[("127.0.0.1", witness_port)],
        )
        try:
            for seq in range(cfg.requests_per_client):
                if stop.is_set():
                    return
                obj = f"rf{cid}:{seq % cfg.objects_per_client}"
                value = f"run{seed}:c{cid}:s{seq}"
                record.sent_values.setdefault(obj, []).append(value)
                record.sent += 1
                try:
                    response = client.request("put", obj=obj, value=value)
                except (ServeError, DegradedModeError, OSError) as exc:
                    record.failed += 1
                    record.errors.append(f"{type(exc).__name__}: {exc}")
                    continue
                record.acks.append(
                    (
                        obj,
                        value,
                        response["lsi"],
                        response.get("epoch"),
                        time.monotonic(),
                    )
                )
        finally:
            client.close()

    def _probe_zombie(
        self,
        primary: ServeDaemon,
        outcome: ReplicaLiveFireOutcome,
        promoted_epoch: int,
        promotion_watermark: int,
        seed: int,
    ) -> None:
        """Drive writes at the still-live deposed primary; none may ack.

        The in-band fence makes these FENCED; a lost fence ack (the
        witness closed the socket under the frame) degrades to
        UNAVAILABLE (the primary is witness-less and cannot ack) —
        either refusal is correct.  An *ack* above the promotion
        watermark is the split-brain the epoch machinery exists to
        prevent.
        """
        client = DaemonClient(
            "127.0.0.1",
            primary.port,
            policy=RetryPolicy(attempts=1),
        )
        try:
            for probe in range(self.config.zombie_probe_writes):
                obj = f"zombie{probe % 2}"
                try:
                    response = client.request(
                        "put", obj=obj, value=f"zombie{seed}:{probe}"
                    )
                except (ServeError, DegradedModeError, OSError):
                    continue  # refused: exactly what the fence promises
                if response.get("lsi", 0) > promotion_watermark:
                    outcome.old_epoch_acks += 1
        finally:
            client.close()

    def _verify_promoted(
        self,
        witness: WitnessDaemon,
        records: List[_PairClientRecord],
        outcome: ReplicaLiveFireOutcome,
        seed: int,
    ) -> None:
        """Audit every ack against the promoted witness, then write to it."""
        if not witness.promoted:
            return
        if witness.system.health is not SystemHealth.HEALTHY:
            raise AssertionError(
                "promoted witness is not HEALTHY: "
                f"{witness.system.health.value}"
            )
        client = DaemonClient(
            "127.0.0.1",
            witness.port,
            policy=RetryPolicy(attempts=5, base_delay=0.01, deadline=10.0),
        )
        try:
            for record in records:
                by_obj: Dict[str, List[Tuple[int, str]]] = {}
                for obj, value, lsi, _epoch, _at in record.acks:
                    by_obj.setdefault(obj, []).append((lsi, value))
                for obj, acks in by_obj.items():
                    max_lsi, max_value = max(acks)
                    value, vsi = client.get(obj)
                    if vsi is None or vsi < max_lsi:
                        outcome.losses.append(
                            f"{obj}: acked through lsi {max_lsi} but the "
                            f"promoted witness has vsi {vsi}"
                        )
                        continue
                    if vsi == max_lsi and value != max_value:
                        outcome.losses.append(
                            f"{obj}: promoted vsi {vsi} matches the last "
                            f"ack but value is {value!r}, acked "
                            f"{max_value!r}"
                        )
                        continue
                    if value not in record.sent_values.get(obj, []):
                        outcome.losses.append(
                            f"{obj}: promoted value {value!r} was never "
                            "sent by its owning client"
                        )
            # The promoted witness must also *serve*: one write-read
            # round trip at the new epoch.
            probe = f"postfailover:{seed}"
            lsi = client.put(probe, f"epoch-probe:{seed}")
            read_value, vsi = client.get(probe)
            if vsi != lsi or read_value != f"epoch-probe:{seed}":
                raise AssertionError(
                    "promoted witness failed the write-read probe: "
                    f"wrote lsi {lsi}, read ({read_value!r}, {vsi})"
                )
            outcome.promoted = True
        finally:
            client.close()
