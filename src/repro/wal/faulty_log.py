"""A log manager whose stable device is described by a FaultModel.

The in-memory :class:`~repro.wal.log_manager.LogManager` models a
perfect stable log: a force either happens or the process crashes first.
:class:`FaultyLog` interposes the fault model at every force — the
log's device touchpoint — and reproduces the WAL failure modes:

* **transient force failure** (``TRANSIENT``/``FSYNC_FAIL``): the
  append raises; the base class's bounded retry re-drives it, and the
  workload never notices;
* **torn force** (``TORN``): only a prefix of the forced records
  reaches the stable log before the crash — exactly the torn-tail
  state the file WAL repairs on open;
* **lying fsync** (``FSYNC_LIE``): the force reports success but the
  records are not durable; a later *successful* force makes everything
  before it durable (one real fsync flushes the whole file), and a
  crash before that loses the lied-about suffix.  This fault is
  deliberately outside the must-survive envelope — no WAL system can
  keep its durability contract against an undetected lying fsync, and
  the torture suite includes a strawman demonstrating the breakage.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.common.identifiers import NULL_SI, StateId
from repro.storage.faults import FaultCrash, FaultKind, FaultModel
from repro.storage.stats import IOStats
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord

_LOG_FAULTS = frozenset({FaultKind.TORN, FaultKind.FSYNC_LIE})


class FaultyLog(LogManager):
    """An in-memory log with injected stable-append faults."""

    def __init__(
        self, model: FaultModel, stats: Optional[IOStats] = None
    ) -> None:
        super().__init__(stats)
        self.model = model
        #: Stable records up to this index are genuinely durable; a
        #: lying fsync appends records beyond it without advancing it.
        self._durable_len = 0

    def _write_stable(self, pending: List[LogRecord]) -> None:
        spec = self.model.fire(
            "log.force",
            f"{len(pending)} records",
            can=_LOG_FAULTS,
            stats=self.stats,
        )
        if spec is None:
            super()._write_stable(pending)
            self._durable_len = len(self._stable)
            return
        if spec.kind is FaultKind.TORN:
            # The device tore the append: a strict prefix landed.  The
            # rest stays in the volatile buffer and dies with the crash
            # (a torn force is only observable if the machine goes down
            # before a successful re-force).
            landed = pending[: len(pending) - 1]
            super()._write_stable(landed)
            self._durable_len = len(self._stable)
            raise FaultCrash(f"log force torn at {spec.describe()}")
        # FSYNC_LIE: everything "succeeds" but durability is a lie.
        super()._write_stable(pending)

    def stable_records(
        self, from_lsi: StateId = NULL_SI
    ) -> Iterator[LogRecord]:
        """A stable-log scan is a device read: one faultable I/O point.

        Scans only happen during recovery (analysis and redo passes),
        so this is the log-side recovery-phase fault surface: a
        transient scan failure or a crash mid-scan kills the recovery
        attempt and the supervisor must restart it.  One point per scan
        call, not per record — the unit of device I/O is the sequential
        read, and per-record points would explode the sweep space
        without adding distinct failure shapes.
        """
        self.model.fire(
            "log.scan", f"from {from_lsi}", stats=self.stats
        )
        return super().stable_records(from_lsi)

    def truncate_before(self, lsi, redo_start) -> int:
        dropped = super().truncate_before(lsi, redo_start)
        # Truncation rewrites the stable log in place; model the rewrite
        # as durable (the interesting lie is on the force path).
        self._durable_len = len(self._stable)
        return dropped

    def crash(self) -> None:
        """Lose the buffer *and* any lied-about stable suffix."""
        del self._stable[self._durable_len :]
        super().crash()
