"""A log whose stable writes take modeled device time.

The in-memory :class:`~repro.wal.log_manager.LogManager` completes a
force in nanoseconds, and the file backend's fsync latency depends
entirely on the host (fast NVMe makes per-shard WAL overlap invisible;
a loaded ext4 journal exaggerates it).  :class:`LatencyLog` pins the
device model instead: every stable write sleeps a configured force
latency, releasing the GIL exactly the way a real ``fsync`` does.

That makes it the honest substrate for the E13 sharding bench: the
architectural claim under test is that **N per-shard WALs overlap N
force latencies** where a single WAL serializes them, and a fixed,
declared latency measures that claim without conflating it with the
benchmark host's storage stack.  It is also a deliberately *slow*
device for tests that need a force to take long enough to race.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.storage.stats import IOStats
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord


class LatencyLog(LogManager):
    """An in-memory log with a fixed modeled per-force device latency."""

    def __init__(
        self,
        force_latency_s: float = 0.0015,
        stats: Optional[IOStats] = None,
        group_commit: bool = False,
    ) -> None:
        super().__init__(stats=stats, group_commit=group_commit)
        if force_latency_s < 0:
            raise ValueError(
                f"force latency must be >= 0, got {force_latency_s}"
            )
        #: Modeled device force latency (seconds); ~1.5 ms approximates
        #: a commodity SSD fsync including the kernel round trip.
        self.force_latency_s = force_latency_s

    def _write_stable(self, pending: List[LogRecord]) -> None:
        if self.force_latency_s > 0:
            # time.sleep releases the GIL, like a real fsync: forces on
            # *different* LatencyLogs overlap, forces on the same log
            # serialize under the log lock.
            time.sleep(self.force_latency_s)
        super()._write_stable(pending)
