"""The log manager: volatile buffer + stable log with WAL enforcement.

LSNs (our lSIs) are assigned when a record enters the volatile buffer;
records move to the stable log in order when the buffer is *forced*.
A crash discards the buffer — operations whose records never reached
the stable log simply never happened, which is why the stable log is
always a prefix of the submitted record sequence (the "conflict graph
prefix" that PurgeCache writes).

Truncation discards a stable-log prefix after a checkpoint; the manager
refuses to truncate past the caller-supplied redo start point so that
every uninstalled operation (and the backup start point, for media
recovery) stays on the log.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, List, Mapping, Optional

from repro.common.errors import LogTruncationError, WALViolationError
from repro.common.identifiers import NULL_SI, ObjectId, StateId
from repro.common.retry import retry_transient
from repro.obs.metrics import COUNT_BUCKETS, NULL_OBS
from repro.core.operation import Operation
from repro.storage.stable_store import StoredVersion
from repro.storage.stats import IOStats
from repro.wal.records import (
    FlushTxnCommitRecord,
    FlushTxnValuesRecord,
    LogRecord,
    OperationRecord,
)


class LogManager:
    """Append-ordered log with a volatile buffer and a stable tail."""

    def __init__(
        self,
        stats: Optional[IOStats] = None,
        group_commit: bool = False,
    ) -> None:
        self.stats = stats if stats is not None else IOStats()
        #: Group commit: a prefix force that must touch the device
        #: widens to the whole buffer, so adjacent force requests in an
        #: install batch share one stable-log write.  Off by default —
        #: exact prefix semantics are what PurgeCache literally states,
        #: and some tests depend on them.
        self.group_commit = group_commit
        self._stable: List[LogRecord] = []
        self._buffer: List[LogRecord] = []
        self._next_lsi: StateId = NULL_SI + 1
        self._truncated_before: StateId = NULL_SI + 1
        #: Highest lSI any force request has asked for; lets the group
        #: commit path tell "this prefix rode along with an earlier
        #: widened force" (a saved force) apart from "this prefix was
        #: already explicitly forced" (a plain no-op).
        self._requested_high: StateId = NULL_SI
        self._next_txn_id = 1
        self._protections: Dict[int, StateId] = {}
        self._next_protection_token = 1
        #: Observability hook (null object by default; a system's
        #: MetricsRegistry replaces it via ``attach_metrics``).
        self.obs = NULL_OBS
        #: append timestamps by lSI, kept only while a registry is
        #: attached, to measure the append→stable coalescing latency.
        self._append_times: Dict[StateId, float] = {}
        #: Serializes buffer/stable mutation between the caller's thread
        #: and the (optional) group-commit timer thread.  Reentrant so
        #: append_flush_transaction's two appends stay atomic.
        self._lock = threading.RLock()
        self._timer_stop: Optional[threading.Event] = None
        self._timer_thread: Optional[threading.Thread] = None
        #: Forces initiated by the timer (device touches only — an empty
        #: buffer at the tick is a free no-op, not a force).
        self.timer_forces = 0
        #: Timer ticks whose force raised (e.g. a transient budget ran
        #: out); the error is swallowed — the next piggyback force will
        #: surface it on the caller's thread where it can be handled.
        self.timer_force_errors = 0

    # ------------------------------------------------------------------
    # timer-driven group commit
    # ------------------------------------------------------------------
    def start_group_commit_timer(self, interval_s: float) -> None:
        """Force the buffer on a timer as well as on piggyback requests.

        Every ``interval_s`` seconds a daemon thread forces whatever sits
        in the volatile buffer, coalescing forces *across* install
        batches (piggyback group commit only coalesces requests that
        arrive while records already sit buffered).  Idempotent: a second
        call restarts the timer at the new interval.
        """
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self.stop_group_commit_timer()
        stop = threading.Event()

        def tick() -> None:
            while not stop.wait(interval_s):
                with self._lock:
                    if stop.is_set() or not self._buffer:
                        continue
                    try:
                        self.force()
                        self.timer_forces += 1
                        self.stats.bump("log_timer_forces")
                    except Exception:
                        self.timer_force_errors += 1
                        self.stats.bump("log_timer_force_errors")

        self._timer_stop = stop
        self._timer_thread = threading.Thread(
            target=tick, name="wal-group-commit", daemon=True
        )
        self._timer_thread.start()

    def stop_group_commit_timer(self) -> None:
        """Cancel the timer and join its thread (safe to call twice).

        The stop flag is re-checked under the log lock inside the tick,
        so once this returns no further timer force can start — a force
        already in flight is waited out by the join.
        """
        stop, thread = self._timer_stop, self._timer_thread
        self._timer_stop = self._timer_thread = None
        if stop is not None:
            stop.set()
        if thread is not None and thread is not threading.current_thread():
            thread.join()

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def append(self, record: LogRecord) -> StateId:
        """Append ``record`` to the volatile buffer, assigning its lSI."""
        with self._lock:
            record.lsi = self._next_lsi
            self._next_lsi += 1
            self._buffer.append(record)
            self.stats.log_records += 1
            self.stats.log_bytes += record.record_size()
            self.stats.log_value_bytes += record.value_bytes()
            if self.obs.enabled:
                self._append_times[record.lsi] = time.perf_counter()
            return record.lsi

    def append_operation(self, op: Operation) -> StateId:
        """Log an operation; its ``lsi`` field is set as a side effect."""
        record = OperationRecord(op)
        lsi = self.append(record)
        op.lsi = lsi
        return lsi

    def append_flush_transaction(
        self, versions: Mapping[ObjectId, StoredVersion]
    ) -> StateId:
        """Log the values + commit records of one flush transaction."""
        with self._lock:
            txn_id = self._next_txn_id
            self._next_txn_id += 1
            self.append(
                FlushTxnValuesRecord(
                    txn_id,
                    {obj: (v.value, v.vsi) for obj, v in versions.items()},
                )
            )
            return self.append(FlushTxnCommitRecord(txn_id))

    def reserve_lsis_through(self, lsi: StateId) -> None:
        """Never assign lSIs at or below ``lsi`` to future appends.

        A promoted witness calls this with the primary's last announced
        stable end before its first local append: the shipped stream
        had bookkeeping gaps above the witness's own stable end, and a
        new history must not reuse any lSI the old primary ever
        assigned.
        """
        with self._lock:
            self._next_lsi = max(self._next_lsi, lsi + 1)

    def adopt_records(self, records: List[LogRecord]) -> int:
        """Durably adopt shipped records, preserving their origin lSIs.

        A replication witness mirrors the primary's lSI space: shipped
        records keep the lSIs the primary assigned, so the REDO test
        and the watermark handshake mean the same thing on both sides.
        The witness log therefore has *gaps* — the primary's private
        bookkeeping records (installation, flush, checkpoint) describe
        the primary's stable store and are never shipped — which the
        gap-tolerant :meth:`is_stable` / :meth:`stable_records` already
        handle.  Records at or below the current stable end are
        duplicates from a re-ship after reconnect and are skipped
        (adoption is idempotent); the remainder must be strictly
        ascending.  Adoption goes straight through the forced path
        (:meth:`_write_stable` via the transient-retry wrapper), so a
        file-backed witness has the records on disk before this
        returns — the receipt ack a witness sends upstream is a
        durability promise.

        Returns the number of records actually adopted.  Refuses to
        interleave with locally appended volatile records: a witness
        never calls :meth:`append` before promotion, and after
        promotion it never adopts.
        """
        with self._lock:
            if self._buffer:
                raise WALViolationError(
                    "cannot adopt shipped records into a log with "
                    "buffered local appends"
                )
            floor = max(self.stable_end_lsi(), self._truncated_before - 1)
            fresh: List[LogRecord] = []
            for record in records:
                if record.lsi <= floor:
                    continue  # duplicate from a reconnect re-ship
                if fresh and record.lsi <= fresh[-1].lsi:
                    raise WALViolationError(
                        "shipped records are not in ascending lSI order: "
                        f"{record.lsi} after {fresh[-1].lsi}"
                    )
                fresh.append(record)
            if not fresh:
                return 0
            self._buffer.extend(fresh)
            self._next_lsi = max(self._next_lsi, fresh[-1].lsi + 1)
            self._requested_high = max(self._requested_high, fresh[-1].lsi)
            for record in fresh:
                self.stats.log_records += 1
                self.stats.log_bytes += record.record_size()
                self.stats.log_value_bytes += record.value_bytes()
            self._force_records(len(fresh))
            return len(fresh)

    # ------------------------------------------------------------------
    # forcing (WAL)
    # ------------------------------------------------------------------
    def force(self) -> None:
        """Force the whole volatile buffer to the stable log."""
        with self._lock:
            if self._buffer:
                self._requested_high = max(
                    self._requested_high, self._buffer[-1].lsi
                )
            self._force_records(len(self._buffer))

    def force_through(self, lsi: StateId) -> None:
        """Force the buffer prefix up to and including ``lsi``.

        Forcing a prefix (not the whole buffer) matches PurgeCache:
        "write a conflict graph prefix of operations ... to the stable
        log in conflict order (WAL protocol)".  With :attr:`group_commit`
        on, a force that must touch the device takes the whole buffer
        with it — the later records were headed for the stable log
        anyway, and riding along costs no extra force; when they are
        next requested the force has already happened and
        ``log_force_saves`` counts it.
        """
        with self._lock:
            if not self._buffer or self._buffer[0].lsi > lsi:
                if (
                    self.group_commit
                    and lsi > self._requested_high
                    and self.is_stable(lsi)
                ):
                    # First request for a prefix that an earlier widened
                    # force already made stable: one device force saved.
                    self.stats.log_force_saves += 1
                    self._requested_high = lsi
                return
            # The buffer is lsi-ordered, so the prefix cut is a bisect.
            lo, hi = 0, len(self._buffer)
            while lo < hi:
                mid = (lo + hi) // 2
                if self._buffer[mid].lsi <= lsi:
                    lo = mid + 1
                else:
                    hi = mid
            self._requested_high = max(self._requested_high, lsi)
            self._force_records(
                len(self._buffer) if self.group_commit else lo
            )

    def _force_records(self, count: int) -> None:
        """Move the first ``count`` buffered records to the stable log.

        The device touch itself is :meth:`_write_stable`, which fault
        models and file backends override; a transiently failing force
        (an fsync that returns an error) is retried here with a bounded
        budget rather than escalated — the retry is what the paper's
        "stable log" abstraction quietly assumes.
        """
        if count <= 0:
            return
        pending = self._buffer[:count]
        obs = self.obs
        if not obs.enabled:
            retry_transient(
                lambda: self._write_stable(pending),
                stats=self.stats,
                what="log force",
            )
            self.stats.log_forces += 1
            return
        start = time.perf_counter()
        retry_transient(
            lambda: self._write_stable(pending),
            stats=self.stats,
            what="log force",
        )
        done = time.perf_counter()
        self.stats.log_forces += 1
        obs.observe("wal.force", done - start)
        obs.observe("wal.force_batch_records", len(pending), COUNT_BUCKETS)
        for record in pending:
            appended = self._append_times.pop(record.lsi, None)
            if appended is not None:
                # Group-commit coalescing latency: how long the record
                # sat in the volatile buffer before going stable.
                obs.observe("wal.coalesce_wait", done - appended)

    def _write_stable(self, pending: List[LogRecord]) -> None:
        """Append ``pending`` (a buffer prefix) to the stable log.

        Overridden by the file backend (append + fsync frames first) and
        by the fault-injecting log (which may fail transiently, tear the
        append, or lie about durability).  Must either complete fully or
        leave buffer/stable untouched before raising a transient error,
        so a retry is safe.
        """
        self._stable.extend(pending)
        del self._buffer[: len(pending)]

    def assert_stable(self, lsi: StateId) -> None:
        """Raise WALViolationError unless ``lsi`` is on the stable log."""
        if lsi == NULL_SI:
            return
        if not self.is_stable(lsi):
            raise WALViolationError(
                f"lSI {lsi} is not on the stable log; flushing its effects "
                "would violate the WAL protocol"
            )

    def is_stable(self, lsi: StateId) -> bool:
        """True when the record with ``lsi`` reached the stable log
        (or was legitimately truncated away)."""
        if lsi < self._truncated_before:
            return True
        return bool(self._stable) and self._stable[-1].lsi >= lsi

    # ------------------------------------------------------------------
    # reading (recovery)
    # ------------------------------------------------------------------
    def stable_records(
        self, from_lsi: StateId = NULL_SI
    ) -> Iterator[LogRecord]:
        """Stable records with lSI >= ``from_lsi``, in log order."""
        for record in self._stable:
            if record.lsi >= from_lsi:
                yield record

    def stable_end_lsi(self) -> StateId:
        """lSI of the last stable record (NULL_SI when empty)."""
        return self._stable[-1].lsi if self._stable else NULL_SI

    def stable_start_lsi(self) -> StateId:
        """lSI of the first retained stable record."""
        return self._stable[0].lsi if self._stable else self._truncated_before

    def buffered_lsis(self) -> List[StateId]:
        """lSIs still only in the volatile buffer (lost at crash)."""
        return [r.lsi for r in self._buffer]

    # ------------------------------------------------------------------
    # truncation and crash
    # ------------------------------------------------------------------
    def add_protection(self, lsi: StateId) -> int:
        """Protect records with lSI >= ``lsi`` from truncation.

        Used by media recovery: a fuzzy backup's redo window must stay
        on the log until the backup is superseded.  Returns a token for
        :meth:`remove_protection`.
        """
        token = self._next_protection_token
        self._next_protection_token += 1
        self._protections[token] = lsi
        return token

    def remove_protection(self, token: int) -> None:
        """Release a truncation protection."""
        self._protections.pop(token, None)

    def min_protected_lsi(self) -> Optional[StateId]:
        """The smallest protected lSI, or None when nothing is protected."""
        if not self._protections:
            return None
        return min(self._protections.values())

    def truncate_before(self, lsi: StateId, redo_start: StateId) -> int:
        """Discard stable records with lSI < ``lsi``.

        ``redo_start`` is the current redo scan start point (minimum rSI
        over dirty objects, or end of log); truncating at or past it
        would lose uninstalled operations, so it is refused.  Active
        protections (backup redo windows) clamp the cut silently — the
        caller asked to reclaim *up to* ``lsi``, and the log reclaims
        what it safely can.  Returns the number of records discarded.
        """
        if lsi > redo_start:
            raise LogTruncationError(
                f"cannot truncate before lSI {lsi}: redo scan start point "
                f"is {redo_start}"
            )
        with self._lock:
            protected = self.min_protected_lsi()
            if protected is not None:
                lsi = min(lsi, protected)
            kept = [r for r in self._stable if r.lsi >= lsi]
            dropped = len(self._stable) - len(kept)
            self._stable = kept
            self._truncated_before = max(self._truncated_before, lsi)
            return dropped

    def crash(self) -> None:
        """Discard the volatile buffer (the stable log survives)."""
        with self._lock:
            self._buffer.clear()
            self._append_times.clear()

    def __len__(self) -> int:
        return len(self._stable) + len(self._buffer)
