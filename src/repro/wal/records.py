"""Log record types.

Beyond operation records, the paper's Section 5 relies on three further
record kinds that feed the analysis pass:

* **installation records** — "we capture these opportunities to advance
  object rSI's by logging the installation of each node n of rW.  In
  that log record, in addition to identifying the objects of vars(n) and
  their rSI's, we identify objects in Notx(n) and their rSI's";
* **flush records** — the physiological analogue: "by logging the flush
  of an object ... we are recording not only that the object is now
  clean but also that prior operations updating the object are
  installed";
* **checkpoint records** — ARIES-style: the dirty object table (object
  ids and rSIs) as of the checkpoint.

Flush-transaction value/commit records implement the Section 4 baseline
atomic-flush mechanism.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.common.identifiers import NULL_SI, ObjectId, StateId
from repro.common.sizes import ID_SIZE, RECORD_HEADER_SIZE, SCALAR_SIZE, size_of
from repro.core.operation import Operation


@dataclass
class LogRecord:
    """Base log record; ``lsi`` is assigned by the log manager."""

    lsi: StateId = field(default=NULL_SI, init=False)

    def record_size(self) -> int:
        """Modelled byte size of the record."""
        return RECORD_HEADER_SIZE

    def value_bytes(self) -> int:
        """Bytes of data values carried (the logical-logging saving)."""
        return 0


@dataclass
class OperationRecord(LogRecord):
    """The record describing one redoable operation."""

    op: Operation

    def record_size(self) -> int:
        return self.op.record_size()

    def value_bytes(self) -> int:
        return self.op.value_bytes()


@dataclass
class InstallationRecord(LogRecord):
    """Logged when a write-graph node is installed.

    ``flushed`` maps each object of vars(n) to its new rSI, or None when
    the object became clean (no uninstalled writer remains).
    ``unexposed`` maps each object of Notx(n) to its new rSI — always
    present, since an unexposed object by definition has a later blind
    writer still uninstalled (or was deleted, mapping to None).
    ``installed_lsis`` lists the lSIs of the operations installed, which
    lets the analysis pass account for partially-installed histories.
    """

    flushed: Dict[ObjectId, Optional[StateId]]
    unexposed: Dict[ObjectId, Optional[StateId]]
    installed_lsis: Tuple[StateId, ...] = ()

    def record_size(self) -> int:
        entries = len(self.flushed) + len(self.unexposed)
        return (
            RECORD_HEADER_SIZE
            + entries * (ID_SIZE + SCALAR_SIZE)
            + len(self.installed_lsis) * SCALAR_SIZE
        )


@dataclass
class FlushRecord(LogRecord):
    """Lazily logged after a single-object physiological flush."""

    obj: ObjectId
    vsi: StateId

    def record_size(self) -> int:
        return RECORD_HEADER_SIZE + ID_SIZE + SCALAR_SIZE


@dataclass
class CheckpointRecord(LogRecord):
    """ARIES-style checkpoint: the dirty object table snapshot.

    Carries a content checksum over its dirty-object table so the
    analysis pass can reject a checkpoint whose payload was damaged
    *after* framing (in-memory rot of a decoded record, a torn rewrite
    in place) and fall back to an earlier intact checkpoint or the log
    start.  The frame-level CRC of the file log only protects the
    bytes-on-disk prefix; this is the record-level belt to that brace.
    """

    dirty_objects: Dict[ObjectId, StateId]
    #: CRC32 of the canonicalized dirty-object table; filled in on
    #: construction.  ``None`` only for records unpickled from logs
    #: written before checksums existed — treated as intact.
    checksum: Optional[int] = None

    def __post_init__(self) -> None:
        if self.checksum is None:
            self.checksum = self._content_checksum()

    def _content_checksum(self) -> int:
        table = sorted(self.dirty_objects.items())
        return zlib.crc32(pickle.dumps(table))

    def is_intact(self) -> bool:
        """Whether the dirty-object table still matches its checksum."""
        try:
            claimed = getattr(self, "checksum", None)
            if claimed is None:
                return True
            return self._content_checksum() == claimed
        except Exception:
            return False

    def record_size(self) -> int:
        return (
            RECORD_HEADER_SIZE
            + SCALAR_SIZE  # the checksum itself
            + len(self.dirty_objects) * (ID_SIZE + SCALAR_SIZE)
        )


@dataclass
class FenceRecord(LogRecord):
    """Cross-shard fence: a vector of per-shard local positions.

    When one operation's read/write-set spans recovery domains
    (shards), each participating shard logs its local share of the
    effects and then every participant appends the *same* fence — one
    ``fence_id``, the full participant set, and the vector of per-shard
    local lSIs the fence covers.  Recovery replays each shard's log
    independently (the analysis/redo passes skip fence records, like
    any record kind they do not know); the fence exists for the
    *audit*: after a crash, a fence found on every participant with an
    agreeing vector proves the cross-shard operation completed on all
    shards, a fence found on a strict subset proves the operation was
    never acknowledged (the ack force covers all participants), and
    two fences sharing an id with disagreeing vectors is corruption.
    """

    fence_id: str
    origin_shard: int
    participants: Tuple[int, ...]
    #: shard index → lSI (in that shard's log) of the last local record
    #: belonging to this cross-shard operation.
    vector: Dict[int, StateId]

    def record_size(self) -> int:
        return (
            RECORD_HEADER_SIZE
            + ID_SIZE  # the fence id
            + SCALAR_SIZE  # origin shard
            + len(self.participants) * SCALAR_SIZE
            + len(self.vector) * 2 * SCALAR_SIZE
        )


@dataclass
class EpochRecord(LogRecord):
    """Replication epoch marker: who may ack writes, fenced by number.

    A primary/witness pair shares one logical history but only one
    member may acknowledge writes at a time.  The *epoch* is a
    monotonically increasing integer; promotion appends and forces an
    ``EpochRecord`` with ``epoch + 1`` before the witness starts
    serving, so a partitioned "zombie" primary still running at the old
    epoch can be refused deterministically (its replication frames and
    late acks carry a smaller number).  Analysis and redo skip epoch
    records like any kind they do not know; the record exists for the
    replication layer and for post-mortem audits of who was serving
    when.  Because checkpoint truncation may drop old epoch records,
    the durable source of truth is the ``epoch.json`` sidecar
    (:class:`repro.replica.epoch.EpochStore`); the WAL record is the
    in-band, shippable copy.
    """

    epoch: int
    #: Role the writer assumed at this epoch: "primary" or "witness".
    role: str
    #: Free-form annotation (e.g. the promotion watermark).
    note: str = ""

    def record_size(self) -> int:
        return RECORD_HEADER_SIZE + 2 * SCALAR_SIZE + len(self.note)


@dataclass
class FlushTxnValuesRecord(LogRecord):
    """Object values written to the log by a flush transaction."""

    txn_id: int
    versions: Dict[ObjectId, Tuple[Any, StateId]]  # value, vSI

    def record_size(self) -> int:
        return (
            RECORD_HEADER_SIZE
            + SCALAR_SIZE
            + sum(
                ID_SIZE + SCALAR_SIZE + size_of(value)
                for value, _vsi in self.versions.values()
            )
        )

    def value_bytes(self) -> int:
        return sum(size_of(value) for value, _vsi in self.versions.values())


@dataclass
class FlushTxnCommitRecord(LogRecord):
    """Commit record making a flush transaction durable."""

    txn_id: int

    def record_size(self) -> int:
        return RECORD_HEADER_SIZE + SCALAR_SIZE
