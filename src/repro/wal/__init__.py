"""Write-ahead log substrate.

The log is split into a volatile buffer (lost at crash) and the stable
log (survives).  Log sequence numbers are assigned at append time and
double as the state identifiers (lSIs) of the framework.  The WAL
protocol — an operation's record must be on the *stable* log before any
of its effects are flushed — is enforced by the cache manager via
:meth:`LogManager.force_through`.
"""

from repro.wal.records import (
    LogRecord,
    OperationRecord,
    InstallationRecord,
    FlushRecord,
    CheckpointRecord,
    FlushTxnValuesRecord,
    FlushTxnCommitRecord,
)
from repro.wal.log_manager import LogManager
from repro.wal.faulty_log import FaultyLog

__all__ = [
    "FaultyLog",
    "LogRecord",
    "OperationRecord",
    "InstallationRecord",
    "FlushRecord",
    "CheckpointRecord",
    "FlushTxnValuesRecord",
    "FlushTxnCommitRecord",
    "LogManager",
]
