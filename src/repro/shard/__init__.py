"""Sharded recovery domains: stable routing + per-shard kernels.

See :mod:`repro.shard.group` for the fence protocol that lets N
per-shard WALs replace one totally-ordered log without giving up
recoverability, and :mod:`repro.shard.router` for the stable
object→shard assignment that per-shard WALs depend on across upgrades.
"""

from repro.shard.group import (
    CrossShardError,
    FenceAudit,
    FenceStatus,
    ShardedSystem,
)
from repro.shard.router import ShardRouter

__all__ = [
    "CrossShardError",
    "FenceAudit",
    "FenceStatus",
    "ShardRouter",
    "ShardedSystem",
]
