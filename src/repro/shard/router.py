"""Deterministic object→shard routing.

The router is the *upgrade contract* of the sharded system: each shard
owns its own WAL, so the assignment of objects to shards must be stable
across process restarts, Python versions and hosts — a silent change
would point recovery at the wrong per-shard log and orphan every
object that moved.  Hence:

* the hash is ``zlib.crc32`` over the object id's UTF-8 bytes — a
  published, seedless function.  Python's builtin ``hash()`` is
  per-process salted (PYTHONHASHSEED) and is exactly the bug this
  module exists to prevent;
* the assignment for a fixed key set is snapshot-tested in CI
  (``tests/test_shard_router.py``), so any change to the function shows
  up as a failing literal, not a corrupted fleet.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Set, Tuple

from repro.common.identifiers import ObjectId


class ShardRouter:
    """Stable modular routing of object ids onto ``shards`` domains."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.shards = shards

    def shard_of(self, obj: ObjectId) -> int:
        """The shard that owns ``obj`` (stable across processes)."""
        if self.shards == 1:
            return 0
        return zlib.crc32(str(obj).encode("utf-8")) % self.shards

    def shards_of(self, objs: Iterable[ObjectId]) -> Set[int]:
        """The set of shards touched by a read/write-set."""
        return {self.shard_of(obj) for obj in objs}

    def assignment(
        self, objs: Iterable[ObjectId]
    ) -> Dict[str, int]:
        """Object→shard mapping for a key set (snapshot-test surface)."""
        return {str(obj): self.shard_of(obj) for obj in objs}

    def partition(
        self, objs: Iterable[ObjectId]
    ) -> Dict[int, Tuple[ObjectId, ...]]:
        """Group a key set by owning shard (shards with keys only)."""
        buckets: Dict[int, list] = {}
        for obj in objs:
            buckets.setdefault(self.shard_of(obj), []).append(obj)
        return {shard: tuple(objs) for shard, objs in buckets.items()}
