"""Sharded recovery domains: N kernels, N WALs, one object space.

The paper ties recoverability to the write graph's conflict order, not
to a single totally-ordered log, and "Guaranteeing Recoverability via
Partially Constrained Transaction Logs" (PAPERS.md) shows a partial
log order preserves recoverability.  That is the license this module
cashes in: the object space is partitioned by a stable
:class:`~repro.shard.router.ShardRouter`, and each shard owns a full
:class:`~repro.kernel.system.RecoverableSystem` — its own cache
manager, write-graph engine, WAL stream and recovery lifecycle.
Operations confined to one shard (the common case) touch exactly one
kernel and pay **zero** cross-shard coordination.

Cross-shard operations use a fence protocol:

1. *pre-flight* — every participating shard must be HEALTHY, checked
   before anything is mutated anywhere;
2. *read* — input values are read from their owning shards;
3. *transform once* — the registered function runs once, on the
   combined read values;
4. *local physical ops* — each shard that owns written objects
   executes a PHYSICAL operation carrying just its share of the
   values.  Physical (value) logging is what makes each shard's log
   independently replayable: redo needs no foreign reads;
5. *fence* — every participant appends a
   :class:`~repro.wal.records.FenceRecord` naming the fence id, the
   full participant set and the vector of per-shard local-op lSIs;
6. *force all, then ack* — the caller's ack force covers every
   participant's fence.

Recovery replays each shard's log independently (analysis and redo
skip fence records like any unknown record kind) and synchronizes only
at fences, via :meth:`ShardedSystem.fence_audit`: a fence present on
every participant with agreeing vectors is *complete*; a fence present
on a strict subset is *partial* — possible only for operations that
were never acknowledged, because the ack force covers all
participants; copies that disagree are *conflicting* (corruption).

Concurrency contract: one thread per shard may drive that shard's
kernel.  A cross-shard execution must hold the "turn" of every
participant (the serving layer's rendezvous does exactly this); the
kernels themselves are not locked here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.common.identifiers import ObjectId, StateId
from repro.core.functions import FunctionRegistry, default_registry
from repro.core.operation import (
    OpKind,
    Operation,
    execute_transform,
)
from repro.kernel.system import RecoverableSystem, SystemConfig, SystemHealth
from repro.shard.router import ShardRouter
from repro.wal.log_manager import LogManager
from repro.wal.records import FenceRecord
from repro.storage.stable_store import StableStore


class CrossShardError(RuntimeError):
    """A cross-shard operation could not start (unhealthy participant)."""


@dataclass
class FenceStatus:
    """One fence's post-crash classification."""

    fence_id: str
    participants: Tuple[int, ...]
    #: Shards whose stable log actually carries the fence.
    present_on: Tuple[int, ...]
    #: "complete" | "partial" | "conflicting".
    state: str
    #: Human-readable diagnosis.  For a conflicting fence it names the
    #: fence id and the lSI of each disagreeing copy, so an operator
    #: can go straight to the corrupt record without replaying logs.
    detail: str = ""


@dataclass
class FenceAudit:
    """The cross-shard synchronization verdict after recovery."""

    complete: List[FenceStatus] = field(default_factory=list)
    partial: List[FenceStatus] = field(default_factory=list)
    conflicting: List[FenceStatus] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no fence shows disagreeing copies."""
        return not self.conflicting


class ShardedSystem:
    """N recoverable systems behind one stable object→shard router."""

    def __init__(
        self,
        systems: List[RecoverableSystem],
        router: Optional[ShardRouter] = None,
    ) -> None:
        if not systems:
            raise ValueError("a sharded system needs at least one shard")
        self.systems = list(systems)
        self.router = (
            router if router is not None else ShardRouter(len(systems))
        )
        if self.router.shards != len(self.systems):
            raise ValueError(
                f"router covers {self.router.shards} shards but "
                f"{len(self.systems)} systems were supplied"
            )
        self.registry = self.systems[0].registry
        #: Monotonic label counter for cross-shard operations (display
        #: only; fence identity comes from the lSI vector).
        self._cross_seq = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        shards: int,
        config_factory: Optional[Callable[[int], SystemConfig]] = None,
        registry: Optional[FunctionRegistry] = None,
        store_factory: Optional[Callable[[int], StableStore]] = None,
        log_factory: Optional[Callable[[int], LogManager]] = None,
    ) -> "ShardedSystem":
        """Build ``shards`` kernels sharing one function registry.

        The factories receive the shard index, so file-backed shards
        land in per-shard directories and fault models stay per-shard.
        The function registry is shared — transforms are code, not
        state — while every other component is strictly per-shard.
        """
        registry = registry if registry is not None else default_registry()
        systems = []
        for index in range(shards):
            systems.append(
                RecoverableSystem(
                    config=(
                        config_factory(index) if config_factory else None
                    ),
                    registry=registry,
                    store=store_factory(index) if store_factory else None,
                    log=log_factory(index) if log_factory else None,
                )
            )
        return cls(systems, ShardRouter(shards))

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self.systems)

    def shard_of(self, obj: ObjectId) -> int:
        return self.router.shard_of(obj)

    def system_for(self, obj: ObjectId) -> RecoverableSystem:
        return self.systems[self.router.shard_of(obj)]

    def participants_of(self, op: Operation) -> Set[int]:
        """The shards an operation's read/write footprint touches."""
        return self.router.shards_of(op.reads | op.writes)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, op: Operation) -> Dict[ObjectId, Any]:
        """Route one operation: single-shard fast path, else fence."""
        participants = self.participants_of(op)
        if len(participants) == 1:
            return self.systems[next(iter(participants))].execute(op)
        return self.execute_cross(op, participants)

    def execute_cross(
        self, op: Operation, participants: Optional[Set[int]] = None
    ) -> Dict[ObjectId, Any]:
        """Run one cross-shard operation through the fence protocol.

        The caller must hold every participant's execution turn (see
        the module docstring).  Raises :class:`CrossShardError` before
        mutating anything if a participant is not HEALTHY; an exception
        later in the protocol leaves a *partial* (never-acked) fence,
        which recovery's audit is built to tolerate.
        """
        if participants is None:
            participants = self.participants_of(op)
        ordered = tuple(sorted(participants))
        for shard in ordered:
            health = self.systems[shard].health
            if health is not SystemHealth.HEALTHY:
                raise CrossShardError(
                    f"shard {shard} is {health.value}; cross-shard "
                    f"operation {op.name!r} refused before execution"
                )
        # Read inputs from their owning shards, then transform once.
        read_values = {
            obj: self.system_for(obj).read(obj) for obj in sorted(
                op.reads, key=str
            )
        }
        writes = execute_transform(op, read_values, self.registry)
        self._cross_seq += 1
        label = f"{op.name}&x{self._cross_seq}"
        # Each writing shard executes a PHYSICAL op carrying its share
        # of the values: per-shard redo then needs no foreign reads,
        # which is what keeps per-shard logs independently replayable.
        by_shard = self.router.partition(writes)
        vector: Dict[int, StateId] = {}
        for shard in ordered:
            owned = by_shard.get(shard)
            if not owned:
                continue  # read-only participant: fence record only
            local = Operation(
                name=f"{label}@s{shard}",
                kind=OpKind.PHYSICAL,
                reads=frozenset(),
                writes=frozenset(owned),
                payload={obj: writes[obj] for obj in owned},
            )
            self.systems[shard].execute(local)
            vector[shard] = local.lsi
        # The vector is unique for all time — per-shard lSIs are
        # monotone — so it doubles as the fence identity.
        fence_id = "xs:" + ",".join(
            f"{shard}@{lsi}" for shard, lsi in sorted(vector.items())
        )
        fence_lsis: Dict[int, StateId] = {}
        for shard in ordered:
            # One fresh record per log: lSIs are assigned per stream.
            record = FenceRecord(
                fence_id=fence_id,
                origin_shard=ordered[0],
                participants=ordered,
                vector=dict(vector),
            )
            fence_lsis[shard] = self.systems[shard].log.append(record)
        # Ack force: every participant's fence must be stable before
        # the operation may be acknowledged.
        for shard in ordered:
            self.systems[shard].log.force_through(fence_lsis[shard])
        return writes

    def read(self, obj: ObjectId) -> Any:
        return self.system_for(obj).read(obj)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def crash_shard(self, shard: int) -> None:
        self.systems[shard].crash()

    def recover_shard(self, shard: int):
        return self.systems[shard].recover()

    def crash_all(self) -> None:
        for system in self.systems:
            system.crash()

    def recover_all(self) -> List[Any]:
        return [system.recover() for system in self.systems]

    def close(self) -> None:
        for system in self.systems:
            system.close()

    def health(self) -> Dict[int, SystemHealth]:
        """Per-shard health (sharding's point: these are independent)."""
        return {
            index: system.health
            for index, system in enumerate(self.systems)
        }

    # ------------------------------------------------------------------
    # cross-shard synchronization audit
    # ------------------------------------------------------------------
    def fence_audit(self) -> FenceAudit:
        """Classify every fence found on the stable logs.

        * **complete** — the fence is on every listed participant's
          stable log and all copies agree;
        * **partial** — a strict subset carries it.  Only possible for
          never-acked operations (the ack force covers all
          participants), so recovery tolerates it: each shard's local
          physical ops replay independently and the unacked remainder
          is simply absent;
        * **conflicting** — copies disagree on participants or vector:
          log corruption, never a legal outcome of the protocol.
        """
        seen: Dict[str, Dict[int, FenceRecord]] = {}
        for index, system in enumerate(self.systems):
            for record in system.log.stable_records():
                if isinstance(record, FenceRecord):
                    seen.setdefault(record.fence_id, {})[index] = record
        audit = FenceAudit()
        for fence_id, copies in sorted(seen.items()):
            reference = next(iter(copies.values()))
            present = tuple(sorted(copies))
            agreeing = all(
                copy.participants == reference.participants
                and copy.vector == reference.vector
                for copy in copies.values()
            )
            status = FenceStatus(
                fence_id=fence_id,
                participants=reference.participants,
                present_on=present,
                state="conflicting",
            )
            if not agreeing:
                reference_shard = next(iter(copies))
                disagreeing = next(
                    (shard, copy)
                    for shard, copy in copies.items()
                    if copy.participants != reference.participants
                    or copy.vector != reference.vector
                )
                status.detail = (
                    f"fence {fence_id!r}: shard {reference_shard}'s copy "
                    f"at lSI {reference.lsi} disagrees with shard "
                    f"{disagreeing[0]}'s copy at lSI {disagreeing[1].lsi} "
                    "on participants or vector"
                )
                audit.conflicting.append(status)
            elif set(present) == set(reference.participants):
                status.state = "complete"
                audit.complete.append(status)
            else:
                status.state = "partial"
                audit.partial.append(status)
        return audit
