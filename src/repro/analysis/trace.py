"""Event tracing for observability of cache-manager decisions.

A :class:`Tracer` attached to a cache manager records the interesting
events — operation execution, WAL forces, node installations (with
their vars/Notx split), identity-write injections, evictions and
checkpoints — as structured tuples.  Tests assert on sequences;
examples print them to narrate what the machinery did.

Tracing is opt-in and costs nothing when absent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: a kind plus structured details."""

    kind: str
    details: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        """Fetch one detail field."""
        return dict(self.details).get(key, default)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.details)
        return f"<{self.kind} {inner}>"


class Tracer:
    """Append-only event sink."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        #: Optional bound; the deque drops oldest events beyond it.
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)

    def emit(self, kind: str, **details: Any) -> None:
        """Record one event."""
        self.events.append(
            TraceEvent(kind, tuple(sorted(details.items())))
        )

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All recorded events of one kind, in order."""
        return [event for event in self.events if event.kind == kind]

    def kinds(self) -> List[str]:
        """The sequence of event kinds, in order."""
        return [event.kind for event in self.events]

    def counts(self) -> Dict[str, int]:
        """Event counts by kind."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
