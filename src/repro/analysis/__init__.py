"""Measurement, tracing and reporting helpers."""

from repro.analysis.tables import Table, format_bytes, ratio
from repro.analysis.trace import TraceEvent, Tracer
from repro.analysis.logstats import (
    LogBreakdown,
    analyze_log,
    engine_summary,
    failure_summary,
    fault_summary,
    obs_summary,
)

__all__ = [
    "Table",
    "format_bytes",
    "ratio",
    "TraceEvent",
    "Tracer",
    "LogBreakdown",
    "analyze_log",
    "engine_summary",
    "failure_summary",
    "fault_summary",
    "obs_summary",
]
