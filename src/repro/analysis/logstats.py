"""Log composition analytics.

Summarizes a log's stable records by type and by operation kind: record
counts, total bytes, data-value bytes.  Useful for understanding *where
the log bytes went* — the question the paper's whole Figure 1 argument
is about — and used by examples and tests to report log composition.

Also renders the fault-injection ledger (:func:`fault_summary`): how
many faults a torture campaign injected and how each was absorbed —
retried, checksum-detected, quarantined, media-recovered, and how many
recovery attempts/restarts the supervisor drove — the write-graph
engine's counters (:func:`engine_summary`), the recovery
supervisor's structured :class:`~repro.kernel.supervisor.FailureReport`
(:func:`failure_summary`), and a system's observability registry
(:func:`obs_summary`: top counters plus per-histogram p50/p95/p99).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Union

from repro.analysis.tables import Table, format_bytes
from repro.storage.stats import IOStats
from repro.wal.log_manager import LogManager
from repro.wal.records import OperationRecord


@dataclass
class LogBreakdown:
    """Aggregated composition of a log's stable records."""

    #: record-type name -> (count, bytes, value bytes)
    by_record_type: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: operation kind -> (count, bytes, value bytes), operation records only
    by_op_kind: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def total_bytes(self) -> int:
        """All stable-log bytes."""
        return sum(row["bytes"] for row in self.by_record_type.values())

    def total_value_bytes(self) -> int:
        """All data-value bytes on the stable log."""
        return sum(
            row["value_bytes"] for row in self.by_record_type.values()
        )

    def overhead_fraction(self) -> float:
        """Share of log bytes that are NOT data values (headers, ids,
        parameters, bookkeeping records)."""
        total = self.total_bytes()
        if total == 0:
            return 0.0
        return 1.0 - self.total_value_bytes() / total

    def render(self, title: str = "log composition") -> str:
        """An aligned two-section table."""
        table = Table(
            title, ["record type / op kind", "count", "bytes", "value bytes"]
        )
        for name in sorted(self.by_record_type):
            row = self.by_record_type[name]
            table.add_row(
                name,
                row["count"],
                format_bytes(row["bytes"]),
                format_bytes(row["value_bytes"]),
            )
        for kind in sorted(self.by_op_kind):
            row = self.by_op_kind[kind]
            table.add_row(
                f"  op:{kind}",
                row["count"],
                format_bytes(row["bytes"]),
                format_bytes(row["value_bytes"]),
            )
        return table.render()


def _bump(bucket: Dict[str, Dict[str, int]], key: str, size: int,
          value_bytes: int) -> None:
    row = bucket.setdefault(
        key, {"count": 0, "bytes": 0, "value_bytes": 0}
    )
    row["count"] += 1
    row["bytes"] += size
    row["value_bytes"] += value_bytes


#: Counter name -> row label for the fault ledger, in display order.
_FAULT_ROWS = (
    ("faults_injected", "faults injected"),
    ("fault_retries", "transient retries absorbed"),
    ("checksum_failures", "checksum failures detected"),
    ("quarantines", "versions quarantined"),
    ("media_recoveries", "media-recovery fallbacks"),
    ("recovery_attempts", "supervised recovery attempts"),
    ("recovery_restarts", "mid-recovery crash restarts"),
)


def fault_summary(
    stats: Union[IOStats, Mapping[str, int]],
    title: str = "fault injection ledger",
) -> Table:
    """The fault/retry/quarantine counters as a printable table.

    Accepts a live :class:`IOStats` or a plain counter mapping (e.g.
    :attr:`~repro.kernel.torture.TortureReport.totals`, which sums the
    counters across a whole torture campaign).
    """
    table = Table(title, ["event", "count"])
    for name, label in _FAULT_ROWS:
        if isinstance(stats, IOStats):
            value = getattr(stats, name)
        else:
            value = stats.get(name, 0)
        table.add_row(label, value)
    return table


def engine_summary(
    stats: Mapping[str, object],
    title: str = "write-graph engine counters",
) -> Table:
    """A :meth:`WriteGraphEngine.stats` mapping as a printable table.

    The ``engine`` entry (the mode string) becomes part of the title;
    the remaining counters are emitted in the engine's own order.
    """
    mode = stats.get("engine")
    if mode:
        title = f"{title} [{mode}]"
    table = Table(title, ["counter", "value"])
    for name, value in stats.items():
        if name == "engine":
            continue
        table.add_row(name, value)
    return table


def failure_summary(
    report, title: str = "recovery supervision report"
) -> Table:
    """A supervisor :class:`~repro.kernel.supervisor.FailureReport`
    as a printable table: the budget header, one row per attempt (its
    outcome, the escalation rung taken, and the faults it absorbed),
    then the lost/restored object verdict.
    """
    table = Table(title, ["attempt", "outcome", "escalation", "detail"])
    deadline = "-" if report.deadline is None else f"{report.deadline:.3f}s"
    table.add_row(
        "budget",
        f"{report.attempts_used}/{report.max_attempts}",
        f"deadline {deadline}",
        f"elapsed {report.elapsed:.3f}s",
    )
    for record in report.attempts:
        detail = ", ".join(record.faults) if record.faults else "-"
        if record.quarantined:
            detail += (
                f" [quarantined: "
                f"{', '.join(map(str, record.quarantined))}]"
            )
        table.add_row(
            str(record.index), record.outcome, record.escalation, detail
        )
    table.add_row(
        "verdict",
        "converged" if report.converged else "NOT CONVERGED",
        report.final_health.value,
        (
            f"lost {sorted(map(str, report.objects_lost))}, "
            f"restored {sorted(map(str, report.objects_restored))}"
        ),
    )
    return table


def _sig(value: float) -> str:
    """Compact numeric rendering for mixed counts and sub-ms latencies."""
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def _hist_quantile(hist: Mapping[str, Any], q: float) -> float:
    """Recompute quantile ``q`` from a histogram snapshot's buckets.

    The fallback for snapshots exported before the quantile was part of
    :meth:`~repro.obs.metrics.Histogram.snapshot` — same upper-boundary
    semantics as the live computation.
    """
    count = hist.get("count", 0)
    boundaries = hist.get("boundaries") or []
    buckets = hist.get("buckets") or []
    maximum = hist.get("max", 0.0)
    if not count or not buckets:
        return 0.0
    rank = q * count
    cumulative = 0
    for index, bucket in enumerate(buckets):
        cumulative += bucket
        if cumulative >= rank and bucket:
            if index < len(boundaries):
                return min(boundaries[index], maximum)
            return maximum
    return maximum


def obs_summary(
    source: Union[Any, Mapping[str, Any]],
    title: str = "observability summary",
    top: int = 12,
) -> Table:
    """A metrics registry (or its :meth:`snapshot`) as a printable table.

    Two sections: the ``top`` largest counters (collector-backed
    ``io.*``/``engine.*`` values included), then every histogram with
    its observation count, p50, p95, p99, and mean — the per-span-kind
    latency digest the benchmarks and the ``metrics --summary`` CLI
    print.  Quantiles missing from an older snapshot are recomputed
    from its bucket counts.
    """
    snap = source if isinstance(source, Mapping) else source.snapshot()
    table = Table(title, ["metric", "count", "p50", "p95", "p99", "mean"])
    counters = snap.get("counters", {})
    ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
    for name, value in ranked[:top]:
        table.add_row(name, _sig(value), "-", "-", "-", "-")
    dropped = len(ranked) - top
    if dropped > 0:
        table.add_row(f"... {dropped} more counters", "-", "-", "-", "-", "-")
    for name in sorted(snap.get("histograms", {})):
        hist = snap["histograms"][name]
        quantiles = [
            hist[key] if key in hist else _hist_quantile(hist, q)
            for key, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))
        ]
        table.add_row(
            name,
            _sig(hist["count"]),
            *[_sig(value) for value in quantiles],
            _sig(hist["mean"]),
        )
    return table


def analyze_log(log: LogManager) -> LogBreakdown:
    """Aggregate the stable log's records into a :class:`LogBreakdown`."""
    breakdown = LogBreakdown()
    for record in log.stable_records():
        size = record.record_size()
        values = record.value_bytes()
        _bump(
            breakdown.by_record_type, type(record).__name__, size, values
        )
        if isinstance(record, OperationRecord):
            _bump(
                breakdown.by_op_kind, record.op.kind.value, size, values
            )
    return breakdown
