"""Plain-text table rendering for the benchmark harness.

Every experiment prints its result as an aligned ASCII table so that
``pytest benchmarks/ --benchmark-only -s`` regenerates the paper's
comparisons as readable rows; EXPERIMENTS.md embeds the same output.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def format_bytes(count: float) -> str:
    """Human-readable byte count (fixed thresholds, deterministic)."""
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024 or unit == "GiB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def ratio(numerator: float, denominator: float) -> str:
    """A 'x.yz×' ratio string, guarding division by zero."""
    if denominator == 0:
        return "n/a"
    return f"{numerator / denominator:.2f}x"


class Table:
    """Fixed-width table with a title, built row by row."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append one row; cells are str()-ed."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(cell) for cell in cells])

    def render(self) -> str:
        """The table as a printable string."""
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Iterable[str]) -> str:
            return "  ".join(
                cell.ljust(width) for cell, width in zip(cells, widths)
            ).rstrip()

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        parts = [self.title, rule, line(self.columns), rule]
        parts.extend(line(row) for row in self.rows)
        parts.append(rule)
        return "\n".join(parts)

    def print(self) -> None:
        """Print with a surrounding blank line (pytest -s friendly)."""
        print()
        print(self.render())
