"""File-backed WAL: an append-only record file with torn-tail repair.

Stable records are appended as ``[length][crc32][pickle bytes]``
frames; ``force`` writes the volatile buffer's frames and fsyncs.  On
open, frames are read back until the file ends or a frame fails its
length/checksum test — a torn tail from a crash mid-force — at which
point the file is truncated to the last good frame, which is exactly
the "a crash loses a suffix of unforced records" model the in-memory
log simulates.

Truncation (``truncate_before``) rewrites the file via temp + atomic
rename.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import zlib
from typing import List, Optional

from repro.common.identifiers import StateId
from repro.storage.framing import fsync_dir as _fsync_dir
from repro.storage.stats import IOStats
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord, OperationRecord

_HEADER = struct.Struct("<II")  # payload length, crc32


class FileLogManager(LogManager):
    """A LogManager whose stable tail lives in ``root/wal.log``."""

    def __init__(self, root: str, stats: Optional[IOStats] = None) -> None:
        super().__init__(stats)
        os.makedirs(root, exist_ok=True)
        self.path = os.path.join(root, "wal.log")
        self._load()

    # ------------------------------------------------------------------
    # opening
    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        records: List[LogRecord] = []
        good_length = 0
        with open(self.path, "rb") as handle:
            data = handle.read()
        offset = 0
        while offset + _HEADER.size <= len(data):
            length, checksum = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > len(data):
                break  # torn tail: incomplete frame
            payload = data[start:end]
            if zlib.crc32(payload) != checksum:
                break  # torn tail: corrupt frame
            try:
                record = pickle.loads(payload)
            except Exception:
                # A frame whose checksum passes but whose payload does
                # not decode — e.g. a zero-length payload from a torn
                # header-only write (crc32(b"") matches a zeroed
                # checksum field).  Same treatment: the log ends here.
                break
            records.append(record)
            offset = end
            good_length = end
        if good_length < len(data):
            # Repair: drop the torn tail so the file matches what we
            # recovered (idempotent on re-open).
            with open(self.path, "r+b") as handle:
                handle.truncate(good_length)
                handle.flush()
                os.fsync(handle.fileno())
        self._stable = records
        if records:
            self._next_lsi = records[-1].lsi + 1
            self._truncated_before = records[0].lsi

    def stable_operations(self) -> List:
        """The operations on the stable log, in order (used to rebuild
        a durable history when opening a database directory)."""
        return [
            record.op
            for record in self._stable
            if isinstance(record, OperationRecord)
        ]

    # ------------------------------------------------------------------
    # durable force path
    # ------------------------------------------------------------------
    @staticmethod
    def _frame(record: LogRecord) -> bytes:
        payload = pickle.dumps(record)
        return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload

    def _append_frames(self, records: List[LogRecord]) -> None:
        if not records:
            return
        with open(self.path, "ab") as handle:
            for record in records:
                handle.write(self._frame(record))
            handle.flush()
            os.fsync(handle.fileno())

    def _write_stable(self, pending: List[LogRecord]) -> None:
        # File first, memory second: a transient failure before any
        # bytes land leaves both sides untouched, so the base class's
        # bounded retry can safely re-drive the whole append.
        self._append_frames(pending)
        super()._write_stable(pending)

    # ------------------------------------------------------------------
    # truncation
    # ------------------------------------------------------------------
    def truncate_before(self, lsi: StateId, redo_start: StateId) -> int:
        dropped = super().truncate_before(lsi, redo_start)
        if dropped:
            self._rewrite()
        return dropped

    def _rewrite(self) -> None:
        directory = os.path.dirname(self.path)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                for record in self._stable:
                    handle.write(self._frame(record))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
            _fsync_dir(directory)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
