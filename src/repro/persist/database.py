"""Opening a persistent database directory.

``PersistentSystem.open(path)`` wires a file-backed stable store and
WAL into a :class:`~repro.kernel.system.RecoverableSystem`, replays
recovery over whatever the directory contains (a fresh directory, a
cleanly-forced state, or the debris of a killed process), and returns
the recovered system ready for new operations.

The caller must register the same deterministic transforms (by the same
names) before — or immediately after — opening, or replay of logical
records will fail loudly with UnknownFunctionError.  Domain layers
register their functions in their constructors, so instantiating the
domain objects against the recovered system is the natural pattern::

    system = PersistentSystem.open("/var/data/mydb")
    fs = RecoverableFileSystem(system)   # registers fs transforms

...except that *recovery itself* may need those transforms.  Pass the
registering callables via ``domains=`` so they run first::

    system = PersistentSystem.open(
        "/var/data/mydb",
        domains=[register_filesystem_functions],
    )

Note on verification: after a cold open the in-process history is
rebuilt from the stable log, so the oracle-based ``verify_recovered``
is only meaningful if the log was never truncated; tests assert
expected values directly instead.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.core.functions import FunctionRegistry, default_registry
from repro.core.recovery import RecoveryReport
from repro.kernel.system import RecoverableSystem, SystemConfig
from repro.persist.file_log import FileLogManager
from repro.persist.file_store import FileStableStore


class PersistentSystem:
    """Factory for file-backed recoverable systems."""

    @staticmethod
    def open(
        path: str,
        config: Optional[SystemConfig] = None,
        registry: Optional[FunctionRegistry] = None,
        domains: Iterable[Callable[[FunctionRegistry], None]] = (),
    ) -> RecoverableSystem:
        """Open (creating if needed) the database directory ``path``.

        Runs crash recovery over the directory's WAL and object files
        and returns the recovered system.  ``domains`` are
        function-registration callables (e.g.
        ``register_filesystem_functions``) invoked on the registry
        before replay.
        """
        registry = registry if registry is not None else default_registry()
        for register in domains:
            register(registry)
        store = FileStableStore(path)
        log = FileLogManager(path)
        system = RecoverableSystem(
            config=config, registry=registry, store=store, log=log
        )
        system.recover()
        return system

    @staticmethod
    def last_open_report(system: RecoverableSystem) -> Optional[RecoveryReport]:
        """The recovery report from the open (or latest recovery)."""
        return system.last_report
