"""Opening a persistent database directory.

``PersistentSystem.open(path)`` wires a file-backed stable store and
WAL into a :class:`~repro.kernel.system.RecoverableSystem`, replays
recovery over whatever the directory contains (a fresh directory, a
cleanly-forced state, or the debris of a killed process), and returns
the recovered system ready for new operations.

The caller must register the same deterministic transforms (by the same
names) before — or immediately after — opening, or replay of logical
records will fail loudly with UnknownFunctionError.  Domain layers
register their functions in their constructors, so instantiating the
domain objects against the recovered system is the natural pattern::

    system = PersistentSystem.open("/var/data/mydb")
    fs = RecoverableFileSystem(system)   # registers fs transforms

...except that *recovery itself* may need those transforms.  Pass the
registering callables via ``domains=`` so they run first::

    system = PersistentSystem.open(
        "/var/data/mydb",
        domains=[register_filesystem_functions],
    )

Passing ``supervisor_config=`` routes the open-time recovery through
the :class:`~repro.kernel.supervisor.RecoverySupervisor` instead of a
single bare ``recover()`` call: recovery that crashes or trips faults
mid-pass is restarted, retried, and — when damage is unrecoverable —
the system comes up in DEGRADED read-only mode rather than not at all.
The supervisor's :class:`FailureReport` for the open is retained on
``system.last_failure_report``.

Note on verification: after a cold open the in-process history is
rebuilt from the stable log, so the oracle-based ``verify_recovered``
is only meaningful if the log was never truncated; tests assert
expected values directly instead.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.core.functions import FunctionRegistry, default_registry
from repro.core.recovery import RecoveryReport
from repro.kernel.supervisor import RecoverySupervisor, SupervisorConfig
from repro.kernel.system import RecoverableSystem, SystemConfig
from repro.obs.metrics import MetricsRegistry
from repro.persist.file_log import FileLogManager
from repro.storage.registry import make_store


class PersistentSystem:
    """Factory for file-backed recoverable systems."""

    @staticmethod
    def open(
        path: str,
        config: Optional[SystemConfig] = None,
        registry: Optional[FunctionRegistry] = None,
        domains: Iterable[Callable[[FunctionRegistry], None]] = (),
        supervisor_config: Optional[SupervisorConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        store_backend: str = "file",
    ) -> RecoverableSystem:
        """Open (creating if needed) the database directory ``path``.

        Runs crash recovery over the directory's WAL and durable store
        and returns the recovered system.  ``domains`` are
        function-registration callables (e.g.
        ``register_filesystem_functions``) invoked on the registry
        before replay.  With ``supervisor_config`` the open-time
        recovery runs under the escalation-ladder supervisor: the
        system comes back HEALTHY when recovery converges, or DEGRADED
        (read-only over the surviving objects) when it cannot, with
        the structured verdict on ``system.last_failure_report``.

        ``metrics`` attaches a :class:`~repro.obs.metrics.MetricsRegistry`
        before recovery runs, so the open-time recovery's phase spans
        and latencies are captured too.

        ``store_backend`` names the durable store laid out under
        ``path``, resolved through :func:`repro.storage.make_store`:
        ``"file"`` (the default; one file per object) or ``"logstore"``
        (append-only segments).  A directory must be reopened with the
        backend that created it — the layouts are disjoint, so opening
        with the wrong backend sees an empty store.
        """
        registry = registry if registry is not None else default_registry()
        for register in domains:
            register(registry)
        store = make_store(store_backend, path)
        log = FileLogManager(path)
        system = RecoverableSystem(
            config=config, registry=registry, store=store, log=log
        )
        if metrics is not None:
            system.attach_metrics(metrics)
        if supervisor_config is not None:
            RecoverySupervisor(system, config=supervisor_config).run()
        else:
            system.recover()
        return system

    @staticmethod
    def last_open_report(system: RecoverableSystem) -> Optional[RecoveryReport]:
        """The recovery report from the open (or latest recovery)."""
        return system.last_report
