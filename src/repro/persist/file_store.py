"""File-backed stable store: one file per object, crash-atomic writes.

Each object version ``(value, vSI)`` is pickled to
``<root>/objects/<encoded-id>.obj`` via the classic temp-file + fsync +
atomic-rename dance, so a single-object write either fully lands or
fully doesn't — exactly the atomicity granule the paper's model
assumes.  Multi-object writes issued with ``atomic=False`` go one
rename at a time and can genuinely tear across a process crash.

Object ids are percent-encoded into file names (ids contain ``:`` and
may contain ``/``).
"""

from __future__ import annotations

import os
import pickle
import tempfile
import urllib.parse
from typing import Any, Optional

from repro.common.identifiers import ObjectId, StateId
from repro.storage.stable_store import StableStore, StoredVersion
from repro.storage.stats import IOStats

_SUFFIX = ".obj"


def _encode(obj: ObjectId) -> str:
    return urllib.parse.quote(obj, safe="") + _SUFFIX


def _decode(filename: str) -> ObjectId:
    return urllib.parse.unquote(filename[: -len(_SUFFIX)])


class FileStableStore(StableStore):
    """A StableStore whose contents live under ``root/objects``.

    The in-memory version map acts as a read cache over the files; the
    files are the durable truth and are reloaded on construction.
    """

    def __init__(self, root: str, stats: Optional[IOStats] = None) -> None:
        super().__init__(stats)
        self.root = root
        self._dir = os.path.join(root, "objects")
        os.makedirs(self._dir, exist_ok=True)
        self._load()

    def _load(self) -> None:
        for name in os.listdir(self._dir):
            if not name.endswith(_SUFFIX):
                continue
            path = os.path.join(self._dir, name)
            with open(path, "rb") as handle:
                value, vsi = pickle.load(handle)
            # Populate the base map directly: loading is not an I/O
            # event of the simulated workload.
            self._versions[_decode(name)] = StoredVersion(value, vsi)

    # ------------------------------------------------------------------
    # durable write path
    # ------------------------------------------------------------------
    def _persist(self, obj: ObjectId, version: StoredVersion) -> None:
        final_path = os.path.join(self._dir, _encode(obj))
        fd, tmp_path = tempfile.mkstemp(dir=self._dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump((version.value, version.vsi), handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, final_path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    def write(self, obj: ObjectId, value: Any, vsi: StateId) -> None:
        super().write(obj, value, vsi)
        self._persist(obj, StoredVersion(value, vsi))

    def write_many(self, versions, atomic: bool, count: bool = True) -> None:
        if atomic:
            # The caller used a real atomicity mechanism (our file
            # granule is per object; a true multi-file atomic install
            # would stage + manifest-swing, which the shadow mechanism
            # models), so order does not matter.
            super().write_many(versions, atomic, count)
            for obj, version in versions.items():
                self._persist(obj, version)
            return
        # Non-atomic: persist each object file at the moment of its
        # in-memory write, so an injected crash between writes leaves
        # disk and memory torn identically — real tearing semantics.
        for obj, version in versions.items():
            if self.mid_write_hook is not None:
                self.mid_write_hook(obj)
            if count:
                self.stats.object_writes += 1
            self._versions[obj] = version
            self._persist(obj, version)

    def delete(self, obj: ObjectId) -> None:
        super().delete(obj)
        path = os.path.join(self._dir, _encode(obj))
        if os.path.exists(path):
            os.unlink(path)

    def restore_versions(self, versions) -> None:
        """Media-recovery restore: replace the directory contents."""
        for name in os.listdir(self._dir):
            if name.endswith(_SUFFIX):
                os.unlink(os.path.join(self._dir, name))
        super().restore_versions(versions)
        for obj, version in versions.items():
            self._persist(obj, version)
