"""File-backed stable store: one file per object, crash-atomic writes.

Each object version ``(value, vSI)`` is written to
``<root>/objects/<encoded-id>.obj`` as a checksummed frame —
``magic || [length][crc32] || pickle bytes``, mirroring the WAL's frame
format — via the classic temp-file + fsync + atomic-rename dance, so a
single-object write either fully lands or fully doesn't — exactly the
atomicity granule the paper's model assumes.  Multi-object writes
issued with ``atomic=False`` go one rename at a time and can genuinely
tear across a process crash.

The framing is the detection layer: a torn or bit-rotted object file
fails its length/checksum test on load and is **quarantined** (moved to
``<root>/quarantine/``) instead of raising a bare unpickling error or
silently returning garbage; recovery then replays the object from the
log (see ``RecoverableSystem.recover``'s quarantine fallback).

Durability detail that the original rename dance missed: ``os.replace``
and ``os.unlink`` mutate the *directory*, and a metadata-losing crash
can undo them unless the directory itself is fsynced — so every rename
and unlink here is followed by :func:`_fsync_dir`.

Object ids are percent-encoded into file names (ids contain ``:`` and
may contain ``/``).
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import urllib.parse
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import CorruptObjectError
from repro.common.identifiers import NULL_SI, ObjectId, StateId
from repro.common.retry import retry_transient
from repro.storage.stable_store import StableStore, StoredVersion
from repro.storage.stats import IOStats

_SUFFIX = ".obj"
_MAGIC = b"ROBJ1\n"
_HEADER = struct.Struct("<II")  # payload length, crc32
_MARKER_NAME = "media_redo_pending.marker"
#: Value field stored in the marker frame (the vSI slot carries the
#: pending redo-start StateId).
_MARKER_TAG = "media-redo-pending"


def _encode(obj: ObjectId) -> str:
    return urllib.parse.quote(obj, safe="") + _SUFFIX


def _decode(filename: str) -> ObjectId:
    return urllib.parse.unquote(filename[: -len(_SUFFIX)])


def _fsync_dir(path: str) -> None:
    """fsync a directory so renames/unlinks inside it are durable.

    Platforms that cannot open directories for fsync (some filesystems
    refuse) are tolerated: the rename itself still happened, and the
    simulator's correctness does not depend on the host's metadata
    journaling — this is the real-deployment hardening.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def _frame(value: Any, vsi: StateId) -> bytes:
    """Serialize one version as a checksummed frame."""
    payload = pickle.dumps((value, vsi))
    return _MAGIC + _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _unframe(data: bytes, origin: str) -> Tuple[Any, StateId]:
    """Parse a frame, raising :class:`CorruptObjectError` on any damage."""
    if not data.startswith(_MAGIC):
        raise CorruptObjectError(f"{origin}: bad magic (torn or foreign file)")
    body = data[len(_MAGIC) :]
    if len(body) < _HEADER.size:
        raise CorruptObjectError(f"{origin}: truncated header")
    length, checksum = _HEADER.unpack_from(body, 0)
    payload = body[_HEADER.size : _HEADER.size + length]
    if len(payload) < length:
        raise CorruptObjectError(f"{origin}: truncated payload (torn write)")
    if zlib.crc32(payload) != checksum:
        raise CorruptObjectError(f"{origin}: checksum mismatch (bit rot)")
    try:
        value, vsi = pickle.loads(payload)
    except Exception as exc:
        raise CorruptObjectError(f"{origin}: undecodable payload: {exc}")
    return value, vsi


class FileStableStore(StableStore):
    """A StableStore whose contents live under ``root/objects``.

    The in-memory version map acts as a read cache over the files; the
    files are the durable truth and are reloaded on construction.
    Corrupt files discovered at load time are quarantined immediately
    and surfaced through :meth:`scrub` so the recovery path replays
    them from the log.
    """

    def __init__(self, root: str, stats: Optional[IOStats] = None) -> None:
        super().__init__(stats)
        self.root = root
        self._dir = os.path.join(root, "objects")
        self._quarantine_dir = os.path.join(root, "quarantine")
        self._marker_path = os.path.join(root, _MARKER_NAME)
        os.makedirs(self._dir, exist_ok=True)
        #: Objects quarantined but not yet reported through scrub():
        #: obj -> reason.  Load-time detections land here.
        self._pending_quarantine: Dict[ObjectId, str] = {}
        self._load()
        self._media_pending: Optional[StateId] = self._load_marker()

    def _load(self) -> None:
        for name in sorted(os.listdir(self._dir)):
            if not name.endswith(_SUFFIX):
                continue
            obj = _decode(name)
            path = os.path.join(self._dir, name)
            with open(path, "rb") as handle:
                data = handle.read()
            try:
                value, vsi = _unframe(data, f"object file {name}")
            except CorruptObjectError as exc:
                self.stats.checksum_failures += 1
                self._quarantine_file(name)
                self._pending_quarantine[obj] = str(exc)
                continue
            # Populate the base map directly: loading is not an I/O
            # event of the simulated workload.
            self._versions[obj] = StoredVersion(value, vsi)

    def _quarantine_file(self, name: str) -> None:
        os.makedirs(self._quarantine_dir, exist_ok=True)
        source = os.path.join(self._dir, name)
        if os.path.exists(source):
            os.replace(source, os.path.join(self._quarantine_dir, name))
            _fsync_dir(self._quarantine_dir)
            _fsync_dir(self._dir)

    # ------------------------------------------------------------------
    # restore-pending marker (restartable media recovery across cold
    # process restarts)
    # ------------------------------------------------------------------
    @property
    def media_redo_pending(self) -> Optional[StateId]:
        """The persisted restore-pending marker (see the base class).

        Unlike the in-memory store's attribute, this survives a cold
        process restart: a recovery that crashed between its media
        restore and the completion of the widened redo leaves the
        marker file on disk, so the next process's recovery re-widens
        instead of narrowly replaying over the stale restored version.
        """
        return self._media_pending

    @media_redo_pending.setter
    def media_redo_pending(self, value: Optional[StateId]) -> None:
        if value == self._media_pending:
            return
        self._media_pending = value
        if value is None:
            retry_transient(
                self._unlink_marker,
                stats=self.stats,
                what="clear media-redo marker",
            )
        else:
            retry_transient(
                lambda: self._write_marker(value),
                stats=self.stats,
                what="write media-redo marker",
            )

    def _load_marker(self) -> Optional[StateId]:
        if not os.path.exists(self._marker_path):
            return None
        with open(self._marker_path, "rb") as handle:
            data = handle.read()
        try:
            tag, pending = _unframe(data, "media-redo-pending marker")
        except CorruptObjectError:
            # A torn marker write still proves a media restore was in
            # flight; widen maximally (replay the whole retained log) —
            # the safe direction.
            self.stats.checksum_failures += 1
            return NULL_SI + 1
        if tag != _MARKER_TAG or not isinstance(pending, int):
            return NULL_SI + 1
        return pending

    def _write_marker(self, pending: StateId) -> None:
        frame = _frame(_MARKER_TAG, pending)
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(frame)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self._marker_path)
            _fsync_dir(self.root)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    def _unlink_marker(self) -> None:
        if os.path.exists(self._marker_path):
            os.unlink(self._marker_path)
            _fsync_dir(self.root)

    # ------------------------------------------------------------------
    # durable write path
    # ------------------------------------------------------------------
    def _persist(self, obj: ObjectId, version: StoredVersion) -> None:
        frame = _frame(version.value, version.vsi)
        retry_transient(
            lambda: self._write_frame(obj, frame),
            stats=self.stats,
            what=f"persist {obj!r}",
        )

    def _write_frame(self, obj: ObjectId, frame: bytes) -> None:
        """One durable object-file replacement (the device touchpoint).

        Overridden by the fault-injecting file store; transient failures
        raised from here are re-driven whole by :meth:`_persist`.
        """
        final_path = os.path.join(self._dir, _encode(obj))
        fd, tmp_path = tempfile.mkstemp(dir=self._dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(frame)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, final_path)
            _fsync_dir(self._dir)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    def write(self, obj: ObjectId, value: Any, vsi: StateId) -> None:
        super().write(obj, value, vsi)
        self._persist(obj, StoredVersion(value, vsi))

    def write_many(self, versions, atomic: bool, count: bool = True) -> None:
        if atomic:
            # The caller used a real atomicity mechanism (our file
            # granule is per object; a true multi-file atomic install
            # would stage + manifest-swing, which the shadow mechanism
            # models), so order does not matter.
            super().write_many(versions, atomic, count)
            for obj, version in versions.items():
                self._persist(obj, version)
            return
        # Non-atomic: persist each object file at the moment of its
        # in-memory write, so an injected crash between writes leaves
        # disk and memory torn identically — real tearing semantics.
        for obj, version in versions.items():
            if self.mid_write_hook is not None:
                self.mid_write_hook(obj)
            if count:
                self.stats.object_writes += 1
            self._versions[obj] = version
            self._persist(obj, version)

    def delete(self, obj: ObjectId) -> None:
        super().delete(obj)
        retry_transient(
            lambda: self._unlink(obj),
            stats=self.stats,
            what=f"unlink {obj!r}",
        )

    def _unlink(self, obj: ObjectId) -> None:
        path = os.path.join(self._dir, _encode(obj))
        if os.path.exists(path):
            os.unlink(path)
            _fsync_dir(self._dir)

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def scrub(self) -> List[ObjectId]:
        """Re-verify every object file; return all failing objects.

        Includes objects already quarantined at load time (their replay
        is still owed) plus any damage that landed after load — e.g. a
        fault-injected torn write whose in-memory copy looks fine.
        """
        bad = list(self._pending_quarantine)
        for name in sorted(os.listdir(self._dir)):
            if not name.endswith(_SUFFIX):
                continue
            path = os.path.join(self._dir, name)
            with open(path, "rb") as handle:
                data = handle.read()
            try:
                _unframe(data, f"object file {name}")
            except CorruptObjectError:
                self.stats.checksum_failures += 1
                obj = _decode(name)
                if obj not in bad:
                    bad.append(obj)
        return bad

    def quarantine(self, obj: ObjectId) -> None:
        super().quarantine(obj)
        self._pending_quarantine.pop(obj, None)
        self._quarantine_file(_encode(obj))

    def restore_version(
        self, obj: ObjectId, version: Optional[StoredVersion]
    ) -> None:
        super().restore_version(obj, version)
        if version is None:
            self._unlink(obj)
        else:
            self._persist(obj, version)

    def restore_versions(self, versions) -> None:
        """Media-recovery restore: replace the directory contents."""
        for name in os.listdir(self._dir):
            if name.endswith(_SUFFIX):
                os.unlink(os.path.join(self._dir, name))
        _fsync_dir(self._dir)
        super().restore_versions(versions)
        for obj, version in versions.items():
            self._persist(obj, version)
