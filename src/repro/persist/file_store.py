"""Deprecated location of :class:`FileStableStore`.

The file-backed store moved to :mod:`repro.storage.file_store` (the
storage surface is consolidated under ``repro.storage``; construct
backends via :func:`repro.storage.make_store`).  This module re-exports
the old names and will be removed in a future major release.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.persist.file_store is deprecated; import FileStableStore from "
    "repro.storage (or construct it via repro.storage.make_store)",
    DeprecationWarning,
    stacklevel=2,
)

from repro.storage.file_store import (  # noqa: E402,F401
    FileStableStore,
    _HEADER,
    _MAGIC,
    _MARKER_NAME,
    _MARKER_TAG,
    _SUFFIX,
    _decode,
    _encode,
    _frame,
    _fsync_dir,
    _unframe,
)

__all__ = ["FileStableStore"]
