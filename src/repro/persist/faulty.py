"""Deprecated location of the file-backed fault-injecting components.

:class:`FaultyFileStore` moved to :mod:`repro.storage.faultwrap` (one
store-agnostic fault wrapper for every backend) and
:class:`FaultyFileLog` to :mod:`repro.persist.faulty_log`.  This module
re-exports both and will be removed in a future major release.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.persist.faulty is deprecated; import FaultyFileStore from "
    "repro.storage (or build it via repro.storage.make_store with a "
    "FaultModel) and FaultyFileLog from repro.persist",
    DeprecationWarning,
    stacklevel=2,
)

from repro.persist.faulty_log import FaultyFileLog  # noqa: E402,F401
from repro.storage.faultwrap import FaultyFileStore  # noqa: E402,F401

__all__ = ["FaultyFileLog", "FaultyFileStore"]
