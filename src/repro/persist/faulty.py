"""Fault-injecting variants of the file-backed stable components.

These mirror :class:`~repro.storage.faults.FaultyStore` /
:class:`~repro.wal.faulty_log.FaultyLog` but damage *real files*, so the
detection machinery being exercised is the on-disk CRC framing rather
than the in-memory checksum map:

* :class:`FaultyFileStore` — transient write/delete errors (retried by
  the base class), torn object files (a prefix of the frame lands),
  silent bit rot inside a written frame's payload;
* :class:`FaultyFileLog` — transient force errors and torn log appends
  (the final record of a force lands half-written; reopening — or the
  in-process ``crash()`` that simulates it — repairs the tail).

Damage lands on disk while the in-memory maps keep the intended
version, exactly like a real page cache over a failing device: the
damage is invisible until something re-reads the platter, which is what
:meth:`FileStableStore.scrub` and the WAL's open-time tail check do.

Faulting *recovery itself* is supported the same way as in the
in-memory layer: switch the model's phase
(``model.enter_phase(RECOVERY_PHASE)``) before recovering and drive it
through a :class:`~repro.kernel.supervisor.RecoverySupervisor`, which
restarts crashed attempts and escalates persistent damage.  Disarm the
model (``model.armed = False``) only around final verification — the
torture harness does — so the verdict itself is never faulted.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.common.identifiers import ObjectId
from repro.persist.file_log import FileLogManager
from repro.persist.file_store import (
    FileStableStore,
    _HEADER,
    _MAGIC,
    _encode,
)
from repro.storage.faults import FaultCrash, FaultKind, FaultModel
from repro.storage.stats import IOStats
from repro.wal.records import LogRecord


class FaultyFileStore(FileStableStore):
    """A FileStableStore whose device obeys a :class:`FaultModel`."""

    def __init__(
        self, root: str, model: FaultModel, stats: Optional[IOStats] = None
    ) -> None:
        self.model = model
        super().__init__(root, stats)

    def _write_frame(self, obj: ObjectId, frame: bytes) -> None:
        spec = self.model.fire(
            "file-store.write",
            obj,
            can=frozenset({FaultKind.TORN, FaultKind.CORRUPT}),
            stats=self.stats,
        )
        if spec is None:
            super()._write_frame(obj, frame)
            return
        if spec.kind is FaultKind.TORN:
            # The rename landed but only a prefix of the bytes did —
            # the one failure the temp+rename dance cannot rule out on
            # a device that acknowledges early.
            path = os.path.join(self._dir, _encode(obj))
            with open(path, "wb") as handle:
                handle.write(frame[: max(1, len(frame) // 2)])
                handle.flush()
                os.fsync(handle.fileno())
        else:  # CORRUPT: the write completed, then the medium rotted.
            super()._write_frame(obj, frame)
            self._rot(obj, spec.point)
        self.model.crash_if_demanded(spec)

    def _rot(self, obj: ObjectId, point: int) -> None:
        """Flip one payload bit of the stored frame, checksum left stale."""
        path = os.path.join(self._dir, _encode(obj))
        prefix = len(_MAGIC) + _HEADER.size
        with open(path, "r+b") as handle:
            data = handle.read()
            flip = prefix + point % max(1, len(data) - prefix)
            handle.seek(flip)
            handle.write(bytes([data[flip] ^ 0x40]))
            handle.flush()
            os.fsync(handle.fileno())

    def _unlink(self, obj: ObjectId) -> None:
        self.model.fire("file-store.delete", obj, stats=self.stats)
        super()._unlink(obj)


class FaultyFileLog(FileLogManager):
    """A FileLogManager whose force path obeys a :class:`FaultModel`."""

    def __init__(
        self, root: str, model: FaultModel, stats: Optional[IOStats] = None
    ) -> None:
        self.model = model
        super().__init__(root, stats)

    def _write_stable(self, pending: List[LogRecord]) -> None:
        spec = self.model.fire(
            "log.force",
            f"{len(pending)} records",
            can=frozenset({FaultKind.TORN}),
            stats=self.stats,
        )
        if spec is None:
            super()._write_stable(pending)
            return
        # Torn force: every record but the last lands whole, the last
        # lands as half a frame, and the machine dies mid-force — a torn
        # log write is only ever *observed* because of a crash; had the
        # process lived, the force would have completed or errored.
        landed = pending[: len(pending) - 1]
        super()._write_stable(landed)
        if pending:
            frame = self._frame(pending[-1])
            with open(self.path, "ab") as handle:
                handle.write(frame[: max(1, len(frame) // 2)])
                handle.flush()
                os.fsync(handle.fileno())
        raise FaultCrash(f"machine lost mid-force ({spec.describe()})")

    def crash(self) -> None:
        super().crash()
        # A machine restart reopens the file and repairs the torn tail;
        # the in-process equivalent is rewriting the file to the good
        # frames the in-memory stable log kept.
        self._rewrite()
