"""Fault-injecting variant of the file-backed WAL.

Mirrors :class:`~repro.wal.faulty_log.FaultyLog` but damages the *real
log file*, so the detection machinery being exercised is the on-disk
frame checksum rather than the in-memory model:

* transient force errors (retried by the hardened force path);
* torn log appends — the final record of a force lands half-written;
  reopening (or the in-process ``crash()`` that simulates it) repairs
  the tail.

The fault-injecting *stores* live in :mod:`repro.storage.faultwrap`;
only the WAL-side wrapper lives here because the file log itself is a
:mod:`repro.persist` component.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.persist.file_log import FileLogManager
from repro.storage.faults import FaultCrash, FaultKind, FaultModel
from repro.storage.stats import IOStats
from repro.wal.records import LogRecord


class FaultyFileLog(FileLogManager):
    """A FileLogManager whose force path obeys a :class:`FaultModel`."""

    def __init__(
        self, root: str, model: FaultModel, stats: Optional[IOStats] = None
    ) -> None:
        self.model = model
        super().__init__(root, stats)

    def _write_stable(self, pending: List[LogRecord]) -> None:
        spec = self.model.fire(
            "log.force",
            f"{len(pending)} records",
            can=frozenset({FaultKind.TORN}),
            stats=self.stats,
        )
        if spec is None:
            super()._write_stable(pending)
            return
        # Torn force: every record but the last lands whole, the last
        # lands as half a frame, and the machine dies mid-force — a torn
        # log write is only ever *observed* because of a crash; had the
        # process lived, the force would have completed or errored.
        landed = pending[: len(pending) - 1]
        super()._write_stable(landed)
        if pending:
            frame = self._frame(pending[-1])
            with open(self.path, "ab") as handle:
                handle.write(frame[: max(1, len(frame) // 2)])
                handle.flush()
                os.fsync(handle.fileno())
        raise FaultCrash(f"machine lost mid-force ({spec.describe()})")

    def crash(self) -> None:
        super().crash()
        # A machine restart reopens the file and repairs the torn tail;
        # the in-process equivalent is rewriting the file to the good
        # frames the in-memory stable log kept.
        self._rewrite()
