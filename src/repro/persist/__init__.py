"""Real on-disk persistence.

Everything else in the library simulates stable storage in memory —
ideal for experiments, useless for actually keeping data.  This package
provides the file-backed WAL and a facade that opens (and recovers) a
database directory:

* :class:`~repro.persist.file_log.FileLogManager` — an append-only
  record file; ``force`` appends and fsyncs, a torn tail (partial last
  record) is detected by length-prefix + checksum and truncated away on
  open, which matches the volatile-buffer-loss model;
* :class:`~repro.persist.database.PersistentSystem` — ``open(path)``
  wires a durable store and the file log, replays recovery, and hands
  back a fully recovered
  :class:`~repro.kernel.system.RecoverableSystem`.  The store backend
  is selected by name (``store_backend="file"`` or ``"logstore"``) via
  :func:`repro.storage.make_store`.

The durable *stores* live on the canonical storage surface,
:mod:`repro.storage` (:class:`~repro.storage.file_store.FileStableStore`,
:class:`~repro.storage.logstore.LogStructuredStableStore`); they are
re-exported here for compatibility, as are the fault-injecting variants.

Serialization is :mod:`pickle`: appropriate for a research system that
opens only its own files; do not open untrusted database directories.
"""

from repro.storage.file_store import FileStableStore
from repro.storage.faultwrap import FaultyFileStore
from repro.persist.file_log import FileLogManager
from repro.persist.faulty_log import FaultyFileLog
from repro.persist.database import PersistentSystem

__all__ = [
    "FaultyFileLog",
    "FaultyFileStore",
    "FileStableStore",
    "FileLogManager",
    "PersistentSystem",
]
