"""Real on-disk persistence.

Everything else in the library simulates stable storage in memory —
ideal for experiments, useless for actually keeping data.  This package
provides file-backed implementations of the two stable components and a
facade that opens (and recovers) a database directory:

* :class:`~repro.persist.file_store.FileStableStore` — one file per
  object, written via temp-file + atomic rename + fsync, so a single
  object write is crash-atomic (the simulator's ``write``), and a
  multi-object raw write is exactly as tearable as the paper assumes;
* :class:`~repro.persist.file_log.FileLogManager` — an append-only
  record file; ``force`` appends and fsyncs, a torn tail (partial last
  record) is detected by length-prefix + checksum and truncated away on
  open, which matches the volatile-buffer-loss model;
* :class:`~repro.persist.database.PersistentSystem` — ``open(path)``
  wires both, replays recovery, and hands back a fully recovered
  :class:`~repro.kernel.system.RecoverableSystem`.

Serialization is :mod:`pickle`: appropriate for a research system that
opens only its own files; do not open untrusted database directories.
"""

from repro.persist.file_store import FileStableStore
from repro.persist.file_log import FileLogManager
from repro.persist.database import PersistentSystem
from repro.persist.faulty import FaultyFileLog, FaultyFileStore

__all__ = [
    "FaultyFileLog",
    "FaultyFileStore",
    "FileStableStore",
    "FileLogManager",
    "PersistentSystem",
]
