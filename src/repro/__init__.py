"""repro — a reproduction of Lomet & Tuttle's *Logical Logging to
Extend Recovery to New Domains* (SIGMOD 1999).

The library implements general redo recovery with logical log
operations: the installation graph and explainable-state theory, the
write graph W of [8], the paper's refined write graph rW, cache-manager
identity writes, and SI/rSI-based REDO tests — plus the substrates
(stable store, WAL, cache manager) and the paper's motivating recovery
domains (application state, file systems, B-trees).

Quickstart::

    from repro import RecoverableSystem, Operation, OpKind

    system = RecoverableSystem()
    system.execute(Operation(
        "copy(a,b)", OpKind.LOGICAL,
        reads={"a"}, writes={"b"}, fn="copy", params=("a", "b"),
    ))
    system.crash()
    system.recover()
"""

from repro.common import ObjectId, StateId
from repro.common.errors import DegradedModeError
from repro.core import (
    OpKind,
    Operation,
    TOMBSTONE,
    identity_write,
    FunctionRegistry,
    default_registry,
    History,
    InstallationGraph,
    WriteWritePolicy,
    WriteGraphEngine,
    make_engine,
    BatchWriteGraph,
    IncrementalWriteGraph,
    RefinedWriteGraph,
    RedoTest,
    RedoAll,
    VsiRedoTest,
    GeneralizedRedoTest,
    RecoveryReport,
)
from repro.cache import CacheConfig, GraphMode, MultiObjectStrategy
from repro.storage import (
    IOStats,
    StableStore,
    ShadowInstall,
    FlushTransaction,
    RawMultiWrite,
    FuzzyBackup,
    FaultKind,
    FaultModel,
    FaultSpec,
    FaultyStore,
    FuzzRates,
)
from repro.obs import (
    MetricsRegistry,
    NULL_OBS,
    Span,
    dump_jsonl,
    load_jsonl,
    render_prometheus,
)
from repro.kernel import (
    RecoverableSystem,
    SystemConfig,
    SystemHealth,
    CrashInjector,
    verify_recovered,
    VerificationError,
    FailureReport,
    RecoverySupervisor,
    SupervisorConfig,
    TortureConfig,
    TortureHarness,
    TortureReport,
)
from repro.serve import (
    BackpressureError,
    BadRequestError,
    DaemonClient,
    DaemonConfig,
    DeadlineExceededError,
    LiveFireConfig,
    LiveFireHarness,
    RetryPolicy,
    ServeDaemon,
    ServeError,
    ServerFailedError,
    ServerUnavailableError,
    ServingWatchdog,
    ShardLiveFireConfig,
    ShardLiveFireHarness,
    ShardedDaemonConfig,
    ShardedServeDaemon,
    ShuttingDownError,
    WatchdogConfig,
)
from repro.shard import (
    CrossShardError,
    FenceAudit,
    ShardRouter,
    ShardedSystem,
)

__version__ = "2.3.0"

__all__ = [
    "ObjectId",
    "StateId",
    "OpKind",
    "Operation",
    "TOMBSTONE",
    "identity_write",
    "FunctionRegistry",
    "default_registry",
    "History",
    "InstallationGraph",
    "WriteWritePolicy",
    "WriteGraphEngine",
    "make_engine",
    "BatchWriteGraph",
    "IncrementalWriteGraph",
    "RefinedWriteGraph",
    "RedoTest",
    "RedoAll",
    "VsiRedoTest",
    "GeneralizedRedoTest",
    "RecoveryReport",
    "CacheConfig",
    "GraphMode",
    "MultiObjectStrategy",
    "IOStats",
    "StableStore",
    "ShadowInstall",
    "FlushTransaction",
    "RawMultiWrite",
    "FuzzyBackup",
    "FaultKind",
    "FaultModel",
    "FaultSpec",
    "FaultyStore",
    "FuzzRates",
    "DegradedModeError",
    "MetricsRegistry",
    "NULL_OBS",
    "Span",
    "dump_jsonl",
    "load_jsonl",
    "render_prometheus",
    "RecoverableSystem",
    "SystemConfig",
    "SystemHealth",
    "CrashInjector",
    "verify_recovered",
    "VerificationError",
    "FailureReport",
    "RecoverySupervisor",
    "SupervisorConfig",
    "TortureConfig",
    "TortureHarness",
    "TortureReport",
    "BackpressureError",
    "BadRequestError",
    "DaemonClient",
    "DaemonConfig",
    "DeadlineExceededError",
    "LiveFireConfig",
    "LiveFireHarness",
    "RetryPolicy",
    "ServeDaemon",
    "ServeError",
    "ServerFailedError",
    "ServerUnavailableError",
    "ServingWatchdog",
    "ShardLiveFireConfig",
    "ShardLiveFireHarness",
    "ShardRouter",
    "ShardedDaemonConfig",
    "ShardedServeDaemon",
    "ShardedSystem",
    "CrossShardError",
    "FenceAudit",
    "ShuttingDownError",
    "WatchdogConfig",
    "__version__",
]
