"""The cache manager.

The cache manager owns the dirty volatile state: it executes operations
against cached objects, maintains the write graph over the uninstalled
operations, and installs operations by flushing write-graph nodes in
graph order (PurgeCache, Figure 4), while honouring the WAL protocol.

It is the component the paper's innovations live in: the refined write
graph lets it shrink flush sets as blind writes arrive, and
cache-manager-initiated identity writes (Section 4) let it break up
multi-object atomic flush sets without quiescing the system.
"""

from repro.cache.config import CacheConfig, GraphMode, MultiObjectStrategy
from repro.cache.cache_manager import CacheManager, CacheEntry
from repro.cache.policies import (
    EvictionPolicy,
    LRUEviction,
    FIFOEviction,
    VictimPolicy,
    PeelFirstSorted,
    PeelHottest,
)

__all__ = [
    "CacheConfig",
    "GraphMode",
    "MultiObjectStrategy",
    "CacheManager",
    "CacheEntry",
    "EvictionPolicy",
    "LRUEviction",
    "FIFOEviction",
    "VictimPolicy",
    "PeelFirstSorted",
    "PeelHottest",
]
