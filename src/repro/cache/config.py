"""Cache-manager configuration.

The configuration axes are exactly the paper's comparison axes:

* which write graph orders flushes (``W`` of [8] versus the refined
  ``rW`` of this paper);
* how multi-object atomic flush sets are handled (a traditional atomic
  mechanism — shadow install or flush transaction — versus
  cache-manager identity writes that dissolve the set);
* whether node installations are logged so the analysis pass can
  advance rSIs (Section 5), and whether the WAL force at installation
  extends through the blind writers that justify leaving ``Notx(n)``
  unflushed (a protocol refinement implied by the paper's WAL
  assumption; ablation E8 shows what breaks without it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.cache.policies import (
    EvictionPolicy,
    LRUEviction,
    PeelFirstSorted,
    VictimPolicy,
)
from repro.core.engine import GraphMode
from repro.storage.atomic import AtomicFlushMechanism, ShadowInstall

__all__ = ["CacheConfig", "GraphMode", "MultiObjectStrategy"]


class MultiObjectStrategy(enum.Enum):
    """How a node with |vars(n)| > 1 is installed."""

    #: Inject identity writes until the flush set is a singleton
    #: (Section 4, only meaningful with GraphMode.RW).
    IDENTITY_WRITES = "identity"
    #: Use the configured atomic flush mechanism on the whole set.
    ATOMIC = "atomic"


@dataclass
class CacheConfig:
    """Knobs for one cache manager instance."""

    graph_mode: GraphMode = GraphMode.RW
    multi_object_strategy: MultiObjectStrategy = (
        MultiObjectStrategy.IDENTITY_WRITES
    )
    #: Mechanism used when ``multi_object_strategy`` is ATOMIC (and for
    #: W-mode nodes, which cannot shrink).
    mechanism: AtomicFlushMechanism = field(default_factory=ShadowInstall)
    #: Log an installation record per installed node, enabling rSI
    #: advancement during the analysis pass (Section 5).
    log_installations: bool = True
    #: Extend the WAL force at installation through the lSIs of the
    #: blind writers that un-exposed Notx(n).  Provably redundant for
    #: correctness given prefix-ordered forcing (see DESIGN.md §5);
    #: kept as an ablation knob — it only shifts force timing.
    wal_force_notx_writers: bool = True
    #: Maximum number of cached objects; None = unbounded.  When the
    #: cache exceeds capacity, clean objects are evicted (STEAL), after
    #: installing write-graph nodes if nothing is clean.
    capacity: Optional[int] = None
    #: Replacement policy for capacity eviction.
    eviction: EvictionPolicy = field(default_factory=LRUEviction)
    #: Which object a flush-set dissolution peels off next (Section 4).
    victim_policy: VictimPolicy = field(default_factory=PeelFirstSorted)

    def __post_init__(self) -> None:
        if (
            self.graph_mode is GraphMode.W
            and self.multi_object_strategy
            is MultiObjectStrategy.IDENTITY_WRITES
        ):
            raise ValueError(
                "identity writes require the refined write graph: W's "
                "atomic write sets never shrink (Section 4 of the paper)"
            )
