"""The cache manager: execution, write-graph maintenance, PurgeCache.

Normal-execution flow for one operation (Section 2's WAL assumptions
plus the Figure 6 incremental graph maintenance):

1. read the operation's inputs through the cache (reading from the
   stable store on a miss);
2. append the operation's record to the volatile log (assigning its
   lSI);
3. apply the transform, updating cached entries (dirty, vSI = lSI);
4. register the operation in the write-graph engine and the
   dirty-object / uninstalled-writer tables.

The manager holds exactly **one live write-graph engine** (a
:class:`~repro.core.engine.WriteGraphEngine`), selected by
``CacheConfig.graph_mode`` and built once by
:func:`~repro.core.engine.make_engine`: the refined ``rW`` engine or
the incremental ``W`` engine.  Both are maintained per operation —
neither mode ever rebuilds a graph from scratch on the hot path
(``engine.stats()["full_rebuilds"]`` stays 0), which is what retired
the old per-purge ``WriteGraph`` batch reconstruction.

Installation (PurgeCache, Figure 4, generalized for rW):

1. choose a minimal write-graph node n;
2. if |vars(n)| > 1, either dissolve the set with identity writes
   (Section 4) or use an atomic flush mechanism;
3. force the log through max(lSI of ops(n), lSIs of the blind writers
   justifying Notx(n)) — the WAL protocol;
4. flush vars(n); objects flushed become clean, objects in Notx(n)
   remain dirty with advanced rSIs;
5. log an installation record carrying the new rSIs (lazily — it need
   not be forced; a lost installation record only costs extra redos);
6. remove n from the graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.common.errors import CacheError
from repro.common.identifiers import NULL_SI, ObjectId, StateId
from repro.common.retry import retry_transient
from repro.cache.config import CacheConfig, GraphMode, MultiObjectStrategy
from repro.cache.policies import LRUEviction
from repro.core.engine import WriteGraphEngine, make_engine
from repro.core.functions import FunctionRegistry
from repro.core.operation import (
    Operation,
    TOMBSTONE,
    execute_transform,
    identity_write,
)
from repro.core.refined_write_graph import RWNode
from repro.core.state_identifiers import DirtyObjectTable, UninstalledWriters
from repro.obs.metrics import NULL_OBS
from repro.storage.stable_store import StableStore, StoredVersion
from repro.storage.stats import IOStats
from repro.wal.log_manager import LogManager
from repro.wal.records import CheckpointRecord, FlushRecord, InstallationRecord


@dataclass
class CacheEntry:
    """One cached object: current value, its vSI, and dirtiness."""

    value: Any
    vsi: StateId
    dirty: bool


class CacheManager:
    """Dirty volatile state plus the machinery to install it safely."""

    def __init__(
        self,
        store: StableStore,
        log: LogManager,
        registry: FunctionRegistry,
        config: Optional[CacheConfig] = None,
        stats: Optional[IOStats] = None,
    ) -> None:
        self.store = store
        self.log = log
        self.registry = registry
        self.config = config if config is not None else CacheConfig()
        self.stats = stats if stats is not None else store.stats
        self._entries: Dict[ObjectId, CacheEntry] = {}
        self.dirty_table = DirtyObjectTable()
        self._writers = UninstalledWriters()
        self._uninstalled: Dict[StateId, Operation] = {}
        self._engine: WriteGraphEngine = make_engine(self.config.graph_mode)
        #: Access-recency tracker feeding the hot-object victim policy;
        #: maintained regardless of the configured eviction policy.
        self.heat = LRUEviction()
        #: Observability hook (null object by default).  Events that
        #: used to go to a directly-attached tracer now flow through
        #: ``obs.emit`` — a Tracer subscribes to the registry instead.
        self.obs = NULL_OBS

    def set_obs(self, obs) -> None:
        """Wire a metrics registry (or NULL_OBS) into this manager and
        its live write-graph engine."""
        self.obs = obs
        self._engine.obs = obs

    def _emit(self, kind: str, **details) -> None:
        self.obs.emit(kind, **details)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, op: Operation) -> Dict[ObjectId, Any]:
        """Log and apply ``op``; returns the values written.

        The transform runs before the record is appended: an operation
        that fails (bad inputs, missing source object) must leave no
        trace on the log.
        """
        reads = {obj: self.read_object(obj) for obj in op.reads}
        writes = execute_transform(op, reads, self.registry)
        if set(writes) != set(op.writes):
            raise CacheError(
                f"{op!r} produced writes {sorted(writes)} but declared "
                f"writeset {sorted(op.writes)}"
            )
        self.log.append_operation(op)
        self._emit(
            "execute", op=op.name, op_kind=op.kind.value, lsi=op.lsi,
            writes=tuple(sorted(op.writes)),
        )
        for obj, value in writes.items():
            self._apply_write(obj, value, op.lsi)
        self._register(op)
        self._enforce_capacity()
        return writes

    def read_object(self, obj: ObjectId) -> Any:
        """Current value of ``obj``, reading through to the store.

        Deleted objects (TOMBSTONE) and never-written objects read as
        None, which domains treat as "does not exist".
        """
        entry = self._entries.get(obj)
        if entry is None:
            version = retry_transient(
                lambda: self.store.read(obj),
                stats=self.stats,
                what=f"read {obj!r}",
            )
            entry = CacheEntry(version.value, version.vsi, dirty=False)
            self._entries[obj] = entry
        self.heat.touch(obj)
        self.config.eviction.touch(obj)
        if entry.value is TOMBSTONE:
            return None
        return entry.value

    def peek_object(self, obj: ObjectId) -> Any:
        """Like :meth:`read_object` but with no I/O accounting and no
        cache population — for verifiers and tests."""
        entry = self._entries.get(obj)
        if entry is not None:
            return None if entry.value is TOMBSTONE else entry.value
        version = self.store.peek(obj)
        return None if version.value is TOMBSTONE else version.value

    def vsi_of(self, obj: ObjectId) -> StateId:
        """Current vSI of ``obj`` (cached version wins)."""
        entry = self._entries.get(obj)
        if entry is not None:
            return entry.vsi
        return self.store.vsi_of(obj)

    def _apply_write(self, obj: ObjectId, value: Any, lsi: StateId) -> None:
        entry = self._entries.get(obj)
        if entry is None:
            self._entries[obj] = CacheEntry(value, lsi, dirty=True)
        else:
            entry.value = value
            entry.vsi = lsi
            entry.dirty = True
        self.heat.touch(obj)
        self.config.eviction.touch(obj)

    def _register(self, op: Operation) -> None:
        for obj in op.writes:
            self.dirty_table.note_write(obj, op.lsi)
            self._writers.note(obj, op.lsi)
        self._uninstalled[op.lsi] = op
        self._engine.add_operation(op)

    # ------------------------------------------------------------------
    # graph access
    # ------------------------------------------------------------------
    def uninstalled_operations(self) -> List[Operation]:
        """Uninstalled operations in conflict (log) order."""
        return [self._uninstalled[lsi] for lsi in sorted(self._uninstalled)]

    @property
    def engine(self) -> WriteGraphEngine:
        """The live write-graph engine (rW or incremental W, by mode)."""
        return self._engine

    # ------------------------------------------------------------------
    # PurgeCache
    # ------------------------------------------------------------------
    def purge(self) -> bool:
        """Install one write-graph node; False when nothing is dirty."""
        graph = self._engine
        if not len(graph):
            return False
        use_identity = (
            self.config.graph_mode is GraphMode.RW
            and self.config.multi_object_strategy
            is MultiObjectStrategy.IDENTITY_WRITES
        )
        for _attempt in range(len(graph) + 8):
            minimal = graph.minimal_nodes()
            if not minimal:  # pragma: no cover - graphs stay acyclic
                raise CacheError("write graph has no minimal node")
            node = min(minimal, key=lambda n: (len(n.vars), n.node_id))
            if len(node.vars) > 1 and use_identity:
                node = self._dissolve_flush_set(node)
                if graph.predecessors(node):
                    # Injection added inverse write-read edges; some
                    # reader node must install first — pick again.
                    continue
            self._install_node(node, graph)
            return True
        raise CacheError("purge failed to converge")  # pragma: no cover

    def flush_all(self) -> int:
        """Drain the cache: install nodes until none remain."""
        installed = 0
        while self.purge():
            installed += 1
        return installed

    def make_clean(self, obj: ObjectId) -> None:
        """Install whatever is needed for ``obj`` to become clean.

        Used before eviction: repeatedly installs minimal nodes that are
        ancestors of (or are) the node holding ``obj``'s last writer.
        """
        guard = 0
        while self.dirty_table.is_dirty(obj) or (
            obj in self._entries and self._entries[obj].dirty
        ):
            guard += 1
            if guard > len(self._uninstalled) + len(self._entries) + 8:
                raise CacheError(f"make_clean({obj!r}) failed to converge")
            if not self.purge():
                raise CacheError(
                    f"{obj!r} is dirty but the write graph is empty"
                )

    def evict(self, obj: ObjectId) -> None:
        """Drop a clean object from the cache (STEAL requires clean)."""
        entry = self._entries.get(obj)
        if entry is None:
            return
        if entry.dirty:
            raise CacheError(
                f"cannot evict dirty object {obj!r}; call make_clean first"
            )
        del self._entries[obj]
        self.heat.forget(obj)
        self.config.eviction.forget(obj)
        if self.obs.enabled:
            self.obs.count("cache.evictions")
        self._emit("evict", obj=obj)

    def _enforce_capacity(self) -> None:
        """Shrink the cache to the configured capacity.

        Clean objects are evicted in replacement-policy order; when
        nothing is clean, write-graph nodes are installed (PurgeCache)
        until eviction candidates appear.  Re-entrant calls (capacity
        pressure during an identity-write injection inside a purge) are
        ignored — the outer call finishes the job.
        """
        capacity = self.config.capacity
        if capacity is None or getattr(self, "_enforcing", False):
            return
        self._enforcing = True
        try:
            guard = 0
            while len(self._entries) > capacity:
                guard += 1
                if guard > 4 * len(self._entries) + 16:
                    raise CacheError("capacity enforcement did not converge")
                clean = [
                    obj
                    for obj, entry in self._entries.items()
                    if not entry.dirty
                ]
                if clean:
                    victim = self.config.eviction.victims(clean)[0]
                    self.evict(victim)
                    continue
                if not self.purge():
                    # Nothing dirty yet nothing clean: impossible, but
                    # never loop silently.
                    raise CacheError(
                        "over capacity with no evictable objects"
                    )  # pragma: no cover
        finally:
            self._enforcing = False

    # ------------------------------------------------------------------
    # identity writes (Section 4)
    # ------------------------------------------------------------------
    def _dissolve_flush_set(self, node: RWNode) -> RWNode:
        """Inject identity writes until the node's flush set is small.

        Each ``W_IP(X, val(X))`` is fed through the ordinary execution
        path: it is logged as a physical record carrying X's current
        value, lands in its own new node, and its blind write removes X
        from this node's vars.  The injections can add inverse
        write-read edges (readers of the dropped values must install
        first) and, rarely, merge nodes via cycle collapse; the caller's
        minimal-node choice is re-evaluated afterwards, so we return the
        node that now holds the anchor operation.
        """
        anchor = next(iter(node.ops))
        guard = 0
        # Suppress capacity enforcement while injecting: a nested purge
        # could install (and thus invalidate) the very node being
        # dissolved.  The post-injection execute() calls re-enable it.
        previous = getattr(self, "_enforcing", False)
        self._enforcing = True
        try:
            while True:
                current = self._engine.node_of(anchor)
                if current is None:  # pragma: no cover - defensive
                    raise CacheError("anchor operation vanished from rW")
                if len(current.vars) <= 1:
                    return current
                guard += 1
                if guard > 4 * (len(current.vars) + len(self._engine)) + 16:
                    raise CacheError(
                        "identity-write injection did not converge"
                    )
                # Peel per the victim policy (default: lexicographic;
                # the hot-object policy peels recently-used objects so
                # a cold one is the single object flushed).
                victim = self.config.victim_policy.peel(
                    set(current.vars), self.heat
                )
                wip = identity_write(victim, self._entries[victim].value)
                self._emit("identity-write", obj=victim)
                if self.obs.enabled:
                    injected = time.perf_counter()
                    self.execute(wip)
                    self.obs.observe(
                        "cache.identity_write",
                        time.perf_counter() - injected,
                    )
                else:
                    self.execute(wip)
                self.stats.identity_writes += 1
        finally:
            self._enforcing = previous

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def _install_node(self, node: RWNode, graph: WriteGraphEngine) -> None:
        obs = self.obs
        if not obs.enabled:
            self._install_node_inner(node, graph)
            return
        start = time.perf_counter()
        try:
            self._install_node_inner(node, graph)
        finally:
            obs.observe("cache.install", time.perf_counter() - start)

    def _install_node_inner(
        self, node: RWNode, graph: WriteGraphEngine
    ) -> None:
        if graph.predecessors(node):  # pragma: no cover - defensive
            raise CacheError(f"{node!r} is not minimal")
        ops = sorted(node.ops, key=lambda o: o.lsi)
        vars_ = set(node.vars)
        notx = set(node.notx)

        # Discharge the installed writes, then read off the new rSIs.
        for op in ops:
            for obj in op.writes:
                self._writers.discharge(obj, op.lsi)
        new_rsis: Dict[ObjectId, Optional[StateId]] = {}
        for obj in vars_ | notx:
            new_rsis[obj] = self._writers.first(obj)

        # WAL: the node's own records, plus the blind writers that
        # justify not flushing Notx(n), must be stable before we flush.
        force_lsi = node.max_lsi()
        if self.config.wal_force_notx_writers:
            for obj in notx:
                rsi = new_rsis[obj]
                if rsi is not None:
                    force_lsi = max(force_lsi, rsi)
        self.log.force_through(force_lsi)
        for op in ops:
            self.log.assert_stable(op.lsi)

        # Flush vars(n).
        self._flush_objects(vars_)
        self.stats.flushes += 1
        self._emit(
            "install",
            vars=tuple(sorted(vars_)),
            notx=tuple(sorted(notx)),
            ops=tuple(op.name for op in ops),
        )

        # Installation record (lazy): lets the analysis pass advance
        # rSIs for both flushed and unexposed objects.  The degenerate
        # physiological case — one object flushed fully clean, nothing
        # unexposed — gets the cheaper flush record the paper describes
        # ("flushes can be lazily logged after the flush"); the two are
        # equivalent to the analysis pass.
        if self.config.log_installations:
            if (
                len(vars_) == 1
                and not notx
                and new_rsis[next(iter(vars_))] is None
            ):
                (obj,) = vars_
                entry = self._entries.get(obj)
                vsi = entry.vsi if entry is not None else NULL_SI
                self.log.append(FlushRecord(obj, vsi))
            else:
                self.log.append(
                    InstallationRecord(
                        flushed={obj: new_rsis[obj] for obj in vars_},
                        unexposed={obj: new_rsis[obj] for obj in notx},
                        installed_lsis=tuple(op.lsi for op in ops),
                    )
                )

        # Dirty-table and cache-entry bookkeeping.
        for obj in vars_:
            if new_rsis[obj] is None:
                self.dirty_table.remove(obj)
                entry = self._entries.get(obj)
                if entry is not None:
                    if entry.value is TOMBSTONE:
                        del self._entries[obj]
                    else:
                        entry.dirty = False
            else:
                # A flushed object with a remaining uninstalled writer
                # cannot occur for vars (the node holds the last
                # writer); defensive only.
                self.dirty_table.advance(obj, new_rsis[obj])
        for obj in notx:
            rsi = new_rsis[obj]
            if rsi is None:
                # Possible when the node also flushed the object via
                # vars in a merged node; treat as clean.
                self.dirty_table.remove(obj)
            else:
                self.dirty_table.advance(obj, rsi)

        for op in ops:
            del self._uninstalled[op.lsi]
        graph.remove_node(node)

    def _flush_objects(self, objs: Set[ObjectId]) -> None:
        """Write the current cached versions of ``objs`` to the store.

        Transient device errors are retried with the shared bounded
        budget: the flush mechanisms write full versions, so re-driving
        a flush after a partial failure rewrites the same values — the
        retry is idempotent with respect to the stable state (I/O
        counters do record the extra attempts, as a real device would).
        """
        if not objs:
            return
        obs = self.obs
        if not obs.enabled:
            self._flush_objects_inner(objs)
            return
        start = time.perf_counter()
        try:
            self._flush_objects_inner(objs)
        finally:
            obs.observe("cache.flush", time.perf_counter() - start)

    def _flush_objects_inner(self, objs: Set[ObjectId]) -> None:
        versions: Dict[ObjectId, StoredVersion] = {}
        deletions: List[ObjectId] = []
        for obj in sorted(objs):
            entry = self._entries[obj]
            if entry.value is TOMBSTONE:
                deletions.append(obj)
            else:
                versions[obj] = StoredVersion(entry.value, entry.vsi)
        if len(versions) > 1:
            retry_transient(
                lambda: self.config.mechanism.flush(
                    self.store, versions, self.log
                ),
                stats=self.stats,
                what="multi-object flush",
            )
        elif len(versions) == 1:
            ((obj, version),) = versions.items()
            retry_transient(
                lambda: self.config.mechanism.flush_one(
                    self.store, obj, version
                ),
                stats=self.stats,
                what=f"flush {obj!r}",
            )
        for obj in deletions:
            # Removing a terminated object is one metadata write.
            self.stats.object_writes += 1
            retry_transient(
                lambda: self.store.delete(obj),
                stats=self.stats,
                what=f"delete {obj!r}",
            )

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, truncate: bool = False) -> StateId:
        """Log a checkpoint record (the dirty object table) and force.

        With ``truncate=True`` the stable log is truncated up to the
        redo scan start point, which only installed records precede.
        """
        record = CheckpointRecord(self.dirty_table.snapshot())
        lsi = self.log.append(record)
        self.log.force()
        self._emit(
            "checkpoint", lsi=lsi, dirty=len(record.dirty_objects),
            truncate=truncate,
        )
        if truncate:
            start = self.dirty_table.min_rsi()
            redo_start = start if start is not None else lsi
            cut = min(redo_start, lsi)
            self.log.truncate_before(cut, redo_start=cut)
        return lsi

    # ------------------------------------------------------------------
    # recovery adoption
    # ------------------------------------------------------------------
    def adopt_recovery(
        self,
        volatile: Mapping[ObjectId, Tuple[Any, StateId]],
        redone_ops: List[Operation],
    ) -> None:
        """Seed a fresh cache manager with the outcome of a redo pass.

        The redone operations are uninstalled again (their records are
        already on the stable log, so nothing is re-logged); the write
        graph, dirty object table and writer index are rebuilt from them
        in log order.
        """
        if self._uninstalled:
            raise CacheError("adopt_recovery requires an empty cache manager")
        for obj, (value, vsi) in volatile.items():
            self._entries[obj] = CacheEntry(value, vsi, dirty=True)
        for op in sorted(redone_ops, key=lambda o: o.lsi):
            for obj in op.writes:
                self.dirty_table.note_write(obj, op.lsi)
                self._writers.note(obj, op.lsi)
            self._uninstalled[op.lsi] = op
            self._engine.add_operation(op)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def dirty_objects(self) -> List[ObjectId]:
        """Objects with uninstalled updates, per the dirty object table."""
        return sorted(obj for obj, _ in self.dirty_table.items())

    def cached_objects(self) -> List[ObjectId]:
        """All object ids currently resident in the cache."""
        return sorted(self._entries)

    def entry(self, obj: ObjectId) -> Optional[CacheEntry]:
        """The raw cache entry for tests and verifiers."""
        return self._entries.get(obj)

    def __len__(self) -> int:
        return len(self._entries)
