"""Cache replacement and identity-write victim policies.

Two policy families configure the cache manager:

* **Eviction** — which clean object to drop when the cache is over
  capacity (LRU by default).  The STEAL discipline of the paper applies:
  only clean objects may leave, so eviction may first have to install
  write-graph nodes (make_clean).
* **Identity-write victims** — when dissolving a multi-object flush set
  (Section 4), which object is *kept* to be flushed with the node and
  which are peeled off with ``W_IP`` records.  The paper observes that
  "hot objects will need to be retained in the cache in any event.
  Hence, we can decide to merely install operations on them via
  logging, without flushing them immediately" — i.e. peel the hot
  objects (log their value once, keep accumulating updates in cache)
  and flush a cold one.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Set

from repro.common.identifiers import ObjectId


class EvictionPolicy(abc.ABC):
    """Chooses eviction victims among cached objects."""

    name: str = "abstract"

    @abc.abstractmethod
    def touch(self, obj: ObjectId) -> None:
        """Record an access to ``obj``."""

    @abc.abstractmethod
    def forget(self, obj: ObjectId) -> None:
        """``obj`` left the cache."""

    @abc.abstractmethod
    def victims(self, candidates: Iterable[ObjectId]) -> List[ObjectId]:
        """Order ``candidates`` from most- to least-evictable."""


class LRUEviction(EvictionPolicy):
    """Least-recently-used ordering via an access clock."""

    name = "lru"

    def __init__(self) -> None:
        self._clock = 0
        self._last_access: Dict[ObjectId, int] = {}

    def touch(self, obj: ObjectId) -> None:
        self._clock += 1
        self._last_access[obj] = self._clock

    def forget(self, obj: ObjectId) -> None:
        self._last_access.pop(obj, None)

    def victims(self, candidates: Iterable[ObjectId]) -> List[ObjectId]:
        return sorted(
            candidates,
            key=lambda obj: self._last_access.get(obj, 0),
        )

    def last_access(self, obj: ObjectId) -> int:
        """The access clock at ``obj``'s last touch (0 = never)."""
        return self._last_access.get(obj, 0)


class FIFOEviction(EvictionPolicy):
    """First-in-first-out: evict in insertion order, ignore re-access."""

    name = "fifo"

    def __init__(self) -> None:
        self._clock = 0
        self._arrival: Dict[ObjectId, int] = {}

    def touch(self, obj: ObjectId) -> None:
        if obj not in self._arrival:
            self._clock += 1
            self._arrival[obj] = self._clock

    def forget(self, obj: ObjectId) -> None:
        self._arrival.pop(obj, None)

    def victims(self, candidates: Iterable[ObjectId]) -> List[ObjectId]:
        return sorted(
            candidates, key=lambda obj: self._arrival.get(obj, 0)
        )


class VictimPolicy(abc.ABC):
    """Chooses which object a flush-set dissolution peels off next."""

    name: str = "abstract"

    @abc.abstractmethod
    def peel(
        self,
        flush_set: Set[ObjectId],
        heat: Optional[LRUEviction] = None,
    ) -> ObjectId:
        """The object to remove from ``flush_set`` via an identity
        write; the last object remaining is the one flushed."""


class PeelFirstSorted(VictimPolicy):
    """Deterministic default: peel in lexicographic order."""

    name = "sorted"

    def peel(
        self,
        flush_set: Set[ObjectId],
        heat: Optional[LRUEviction] = None,
    ) -> ObjectId:
        return sorted(flush_set)[0]


class PeelHottest(VictimPolicy):
    """Peel the most-recently-used objects, flushing the coldest.

    The paper's hot-object rationale: a hot object will be updated
    again soon, so flushing it buys little — install its operations via
    the logged identity value and keep it dirty in cache, letting
    several updates accumulate before any flush ("the cost of flushing
    (and logging) the object is shared among the several updating
    operations").
    """

    name = "hottest"

    def peel(
        self,
        flush_set: Set[ObjectId],
        heat: Optional[LRUEviction] = None,
    ) -> ObjectId:
        if heat is None:
            return sorted(flush_set)[0]
        return max(
            sorted(flush_set), key=lambda obj: heat.last_access(obj)
        )
