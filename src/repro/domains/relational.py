"""A miniature relational layer: whole tables as recoverable objects.

The paper's economics are strongest when recoverable objects are much
larger than pages — "both application state and files may be many pages
in size".  Tables are the database-world instance: a
``CREATE TABLE ... AS SELECT`` derives an entire table from another,
and with logical logging the derivation costs a log record of
identifiers and a predicate, never the table's contents.

Tables are single recoverable objects valued as
``(column-name tuple, row tuple of value tuples)``.  Operations:

* ``create_table`` — physical (the rows enter from outside);
* ``insert_rows`` — physiological (the appended rows are logged — they
  too come from outside);
* ``create_table_as`` — **logical**: reads the source table, writes the
  derived table; the record carries only table ids plus the small
  query description (projection columns, filter, order key);
* ``drop_table`` — a blind tombstone.

Queries (``select``) are runtime reads and never touch the log.

The query description must be deterministic data, not code: filters
are ``(column, op, literal)`` triples with a fixed operator vocabulary,
so replay is exact.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.identifiers import ObjectId
from repro.core.functions import FunctionRegistry
from repro.core.operation import Operation, OpKind, delete_object
from repro.kernel.system import RecoverableSystem

#: Table value: (columns, rows); rows are tuples aligned with columns.
TableValue = Tuple[Tuple[str, ...], Tuple[Tuple[Any, ...], ...]]

#: Filter operators with deterministic semantics.
_OPERATORS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: A filter: (column, operator, literal).
Predicate = Tuple[str, str, Any]


def _apply_query(
    table: TableValue,
    columns: Optional[Sequence[str]],
    where: Optional[Predicate],
    order_by: Optional[str],
) -> TableValue:
    """Evaluate a projection/filter/sort over a table value."""
    src_columns, src_rows = table
    rows = list(src_rows)
    if where is not None:
        column, op_name, literal = where
        if op_name not in _OPERATORS:
            raise ValueError(f"unknown filter operator {op_name!r}")
        index = src_columns.index(column)
        compare = _OPERATORS[op_name]
        rows = [row for row in rows if compare(row[index], literal)]
    if order_by is not None:
        key_index = src_columns.index(order_by)
        rows.sort(key=lambda row: row[key_index])
    if columns is not None:
        indices = [src_columns.index(name) for name in columns]
        out_columns = tuple(columns)
        rows = [tuple(row[i] for i in indices) for row in rows]
    else:
        out_columns = tuple(src_columns)
    return (out_columns, tuple(rows))


def _rel_insert(
    reads: Mapping[ObjectId, Any], table: ObjectId, rows: tuple
) -> Dict[ObjectId, Any]:
    """Append logged rows to a table (physiological)."""
    current = reads[table]
    if current is None:
        raise ValueError(f"insert into missing table object {table!r}")
    columns, existing = current
    for row in rows:
        if len(row) != len(columns):
            raise ValueError(
                f"row arity {len(row)} != table arity {len(columns)}"
            )
    return {table: (columns, existing + tuple(tuple(r) for r in rows))}


def _rel_ctas(
    reads: Mapping[ObjectId, Any],
    src: ObjectId,
    dst: ObjectId,
    columns: Optional[tuple],
    where: Optional[tuple],
    order_by: Optional[str],
) -> Dict[ObjectId, Any]:
    """CREATE TABLE AS SELECT: dst <- query(src), fully logical."""
    table = reads[src]
    if table is None:
        raise ValueError(f"CTAS from missing table object {src!r}")
    return {dst: _apply_query(table, columns, where, order_by)}


def register_relational_functions(registry: FunctionRegistry) -> None:
    """Register the relational transforms (idempotent)."""
    for name, fn in (("rel_insert", _rel_insert), ("rel_ctas", _rel_ctas)):
        if not registry.registered(name):
            registry.register(name, fn)


class CtasLoggingMode(enum.Enum):
    """How CREATE TABLE AS SELECT is logged (the E2e comparison)."""

    LOGICAL = "logical"
    PHYSICAL = "physical"


class RelationalStore:
    """Named tables over one recoverable system."""

    def __init__(
        self,
        system: RecoverableSystem,
        mode: CtasLoggingMode = CtasLoggingMode.LOGICAL,
    ) -> None:
        self.system = system
        self.mode = mode
        register_relational_functions(system.registry)

    @staticmethod
    def object_id(table: str) -> ObjectId:
        """The recoverable object backing ``table``."""
        return f"table:{table}"

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        columns: Sequence[str],
        rows: Sequence[Sequence[Any]] = (),
    ) -> Operation:
        """Create a table with external data (physical write)."""
        obj = self.object_id(name)
        value: TableValue = (
            tuple(columns),
            tuple(tuple(row) for row in rows),
        )
        op = Operation(
            f"create({name})",
            OpKind.PHYSICAL,
            reads=set(),
            writes={obj},
            payload={obj: value},
        )
        self.system.execute(op)
        return op

    def insert_rows(
        self, name: str, rows: Sequence[Sequence[Any]]
    ) -> Operation:
        """Append rows (physiological; the rows are logged)."""
        obj = self.object_id(name)
        op = Operation(
            f"insert({name},{len(rows)})",
            OpKind.PHYSIOLOGICAL,
            reads={obj},
            writes={obj},
            fn="rel_insert",
            params=(obj, tuple(tuple(row) for row in rows)),
        )
        self.system.execute(op)
        return op

    def create_table_as(
        self,
        name: str,
        source: str,
        columns: Optional[Sequence[str]] = None,
        where: Optional[Predicate] = None,
        order_by: Optional[str] = None,
    ) -> Operation:
        """CREATE TABLE name AS SELECT columns FROM source WHERE ...

        Logical mode logs table ids plus the query description;
        physical mode (the baseline) logs the entire derived table.
        """
        src_obj, dst_obj = self.object_id(source), self.object_id(name)
        cols = tuple(columns) if columns is not None else None
        if self.mode is CtasLoggingMode.LOGICAL:
            op = Operation(
                f"ctas({source}->{name})",
                OpKind.LOGICAL,
                reads={src_obj},
                writes={dst_obj},
                fn="rel_ctas",
                params=(src_obj, dst_obj, cols, where, order_by),
            )
        else:
            table = self.system.read(src_obj)
            if table is None:
                raise KeyError(f"no such table {source!r}")
            derived = _apply_query(table, cols, where, order_by)
            op = Operation(
                f"ctas_P({name})",
                OpKind.PHYSICAL,
                reads=set(),
                writes={dst_obj},
                payload={dst_obj: derived},
            )
        self.system.execute(op)
        return op

    def drop_table(self, name: str) -> Operation:
        """Drop a table (blind tombstone)."""
        op = delete_object(self.object_id(name))
        self.system.execute(op)
        return op

    # ------------------------------------------------------------------
    # queries (runtime reads, unlogged)
    # ------------------------------------------------------------------
    def table_exists(self, name: str) -> bool:
        return self.system.read(self.object_id(name)) is not None

    def columns(self, name: str) -> Tuple[str, ...]:
        table = self._table(name)
        return table[0]

    def row_count(self, name: str) -> int:
        return len(self._table(name)[1])

    def select(
        self,
        name: str,
        columns: Optional[Sequence[str]] = None,
        where: Optional[Predicate] = None,
        order_by: Optional[str] = None,
    ) -> List[Tuple[Any, ...]]:
        """Evaluate a query against the current table (never logged)."""
        table = self._table(name)
        cols = tuple(columns) if columns is not None else None
        return list(_apply_query(table, cols, where, order_by)[1])

    def _table(self, name: str) -> TableValue:
        table = self.system.read(self.object_id(name))
        if table is None:
            raise KeyError(f"no such table {name!r}")
        return table
