"""A page-oriented key-value store using only physiological operations.

This is the "classic database" baseline domain: records live on pages
(hash-partitioned by key), and every update is a physiological
operation on a single page — exactly the degenerate write-graph case
the paper describes ("each node of which is associated with the
operations that write to a single object, and with no edges between
nodes and hence with no restrictions on flush order").

Used by the E6 recovery benchmarks as a familiar workload and by tests
as a sanity baseline: with this domain, W and rW coincide and every
flush set is a singleton.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.common.identifiers import ObjectId
from repro.core.functions import FunctionRegistry
from repro.core.operation import Operation, OpKind
from repro.kernel.system import RecoverableSystem

#: A page maps key -> value bytes.
PageValue = Tuple[Tuple[Any, Any], ...]


def _kv_put(
    reads: Mapping[ObjectId, Any], page: ObjectId, key: Any, value: Any
) -> Dict[ObjectId, Any]:
    """Insert or replace one record on a page."""
    records = dict(reads[page] or ())
    records[key] = value
    return {page: tuple(sorted(records.items()))}


def _kv_remove(
    reads: Mapping[ObjectId, Any], page: ObjectId, key: Any
) -> Dict[ObjectId, Any]:
    """Remove one record from a page (no-op if absent)."""
    records = dict(reads[page] or ())
    records.pop(key, None)
    return {page: tuple(sorted(records.items()))}


def register_kv_functions(registry: FunctionRegistry) -> None:
    """Register the KV transforms (idempotent)."""
    for name, fn in (("kv_put", _kv_put), ("kv_remove", _kv_remove)):
        if not registry.registered(name):
            registry.register(name, fn)


class KVPageStore:
    """Hash-partitioned record store over ``pages`` recoverable pages."""

    def __init__(
        self,
        system: RecoverableSystem,
        name: str = "kv",
        pages: int = 16,
    ) -> None:
        if pages < 1:
            raise ValueError("need at least one page")
        self.system = system
        self.name = name
        self.pages = pages
        register_kv_functions(system.registry)

    def page_of(self, key: Any) -> ObjectId:
        """The page object holding ``key``.

        Uses a process-independent hash (CRC32 of the key's repr) so
        that workloads, logs and recovery agree across runs — Python's
        built-in ``hash`` is randomized for strings.
        """
        digest = zlib.crc32(repr(key).encode("utf-8"))
        return f"kv:{self.name}:p{digest % self.pages}"

    def put(self, key: Any, value: Any) -> Operation:
        """Insert or replace a record (physiological, logs key+value)."""
        page = self.page_of(key)
        op = Operation(
            f"kvput({key})",
            OpKind.PHYSIOLOGICAL,
            reads={page},
            writes={page},
            fn="kv_put",
            params=(page, key, value),
        )
        self.system.execute(op)
        return op

    def remove(self, key: Any) -> Operation:
        """Remove a record (physiological, logs the key only)."""
        page = self.page_of(key)
        op = Operation(
            f"kvdel({key})",
            OpKind.PHYSIOLOGICAL,
            reads={page},
            writes={page},
            fn="kv_remove",
            params=(page, key),
        )
        self.system.execute(op)
        return op

    def get(self, key: Any) -> Optional[Any]:
        """Current value of ``key``, or None."""
        records = self.system.read(self.page_of(key))
        if records is None:
            return None
        return dict(records).get(key)

    def keys(self) -> List[Any]:
        """All keys currently stored (scans every page)."""
        out: List[Any] = []
        for number in range(self.pages):
            records = self.system.read(f"kv:{self.name}:p{number}")
            if records:
                out.extend(key for key, _value in records)
        return sorted(out)
