"""File-system recovery (Section 1 "File System Recovery").

Whole files are recoverable objects (``file:<name>``).  The paper's
point: an operation that copies file X to file Y, or sorts X into Y,
has the form of operation B in Figure 1 — with logical logging,
"in neither case do we log the values of input or output files.  Only
the transformations are logged and the source and target files id's."

``FsLoggingMode.PHYSICAL`` is the comparison baseline in which every
derived file's content is logged (what a physiological scheme must do,
since it may read only the updated object itself).

Data entering the system from outside (``write_file``) must always be
logged physically — there is no recoverable source to re-read it from.
Appends are physiological: only the appended bytes are logged.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Mapping, Optional

from repro.common.identifiers import ObjectId
from repro.core.functions import FunctionRegistry
from repro.core.operation import Operation, OpKind, delete_object
from repro.kernel.system import RecoverableSystem

FILE_PREFIX = "file:"


class FsLoggingMode(enum.Enum):
    """How derived files (copy/sort/concat) are logged."""

    LOGICAL = "logical"
    PHYSICAL = "physical"


def _fs_append(
    reads: Mapping[ObjectId, Any], obj: ObjectId, data: bytes
) -> Dict[ObjectId, Any]:
    """Physiological append: X <- X + logged-delta."""
    current = reads[obj] or b""
    return {obj: bytes(current) + bytes(data)}


def _fs_truncate(
    reads: Mapping[ObjectId, Any], obj: ObjectId, length: int
) -> Dict[ObjectId, Any]:
    """Physiological truncate: X <- X[:length] (only the length logged)."""
    current = reads[obj]
    if current is None:
        raise ValueError(f"truncate of absent file object {obj!r}")
    return {obj: bytes(current)[:length]}


def _fs_dir_add(
    reads: Mapping[ObjectId, Any], directory: ObjectId, name: str
) -> Dict[ObjectId, Any]:
    """Physiological directory insert: only the name is logged."""
    names = set(reads[directory] or ())
    names.add(name)
    return {directory: tuple(sorted(names))}


def _fs_dir_remove(
    reads: Mapping[ObjectId, Any], directory: ObjectId, name: str
) -> Dict[ObjectId, Any]:
    """Physiological directory remove (no-op when absent)."""
    names = set(reads[directory] or ())
    names.discard(name)
    return {directory: tuple(sorted(names))}


def register_filesystem_functions(registry: FunctionRegistry) -> None:
    """Register FS transforms (copy/sort/concat ship in the default
    registry).  Idempotent."""
    for name, fn in (
        ("fs_append", _fs_append),
        ("fs_truncate", _fs_truncate),
        ("fs_dir_add", _fs_dir_add),
        ("fs_dir_remove", _fs_dir_remove),
    ):
        if not registry.registered(name):
            registry.register(name, fn)


class RecoverableFileSystem:
    """A flat-namespace recoverable file system over one system."""

    def __init__(
        self,
        system: RecoverableSystem,
        mode: FsLoggingMode = FsLoggingMode.LOGICAL,
        track_directory: bool = False,
    ) -> None:
        self.system = system
        self.mode = mode
        #: With directory tracking on, a recoverable directory object
        #: records the live file names (physiological updates logging
        #: only the name), enabling ``list_files`` after recovery.
        self.track_directory = track_directory
        register_filesystem_functions(system.registry)

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    @staticmethod
    def object_id(name: str) -> ObjectId:
        """The recoverable object id backing file ``name``."""
        return FILE_PREFIX + name

    #: The recoverable object holding the directory listing.
    DIRECTORY_OBJECT: ObjectId = "fsdir:root"

    def _dir_update(self, fn: str, name: str) -> None:
        if not self.track_directory:
            return
        self.system.execute(
            Operation(
                f"{fn}({name})",
                OpKind.PHYSIOLOGICAL,
                reads={self.DIRECTORY_OBJECT},
                writes={self.DIRECTORY_OBJECT},
                fn=fn,
                params=(self.DIRECTORY_OBJECT, name),
            )
        )

    def list_files(self) -> List[str]:
        """Live file names per the recoverable directory object.

        Requires ``track_directory=True``; the listing survives crashes
        like any other recoverable object.
        """
        if not self.track_directory:
            raise ValueError("directory tracking is disabled")
        return list(self.system.read(self.DIRECTORY_OBJECT) or ())

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def write_file(self, name: str, data: bytes) -> Operation:
        """Create or overwrite a file with external data (physical)."""
        obj = self.object_id(name)
        op = Operation(
            f"fswrite({name})",
            OpKind.PHYSICAL,
            reads=set(),
            writes={obj},
            payload={obj: bytes(data)},
        )
        self.system.execute(op)
        self._dir_update("fs_dir_add", name)
        return op

    def append(self, name: str, data: bytes) -> Operation:
        """Append external data to a file (physiological delta)."""
        obj = self.object_id(name)
        op = Operation(
            f"fsappend({name})",
            OpKind.PHYSIOLOGICAL,
            reads={obj},
            writes={obj},
            fn="fs_append",
            params=(obj, bytes(data)),
        )
        self.system.execute(op)
        return op

    def read_file(self, name: str) -> Optional[bytes]:
        """Current contents, or None if the file does not exist."""
        return self.system.read(self.object_id(name))

    def delete(self, name: str) -> Operation:
        """Delete a file (a blind tombstone write)."""
        op = delete_object(self.object_id(name))
        self.system.execute(op)
        self._dir_update("fs_dir_remove", name)
        return op

    def truncate(self, name: str, length: int) -> Operation:
        """Truncate a file to ``length`` bytes (only the length is
        logged — a physiological operation)."""
        obj = self.object_id(name)
        op = Operation(
            f"fstrunc({name},{length})",
            OpKind.PHYSIOLOGICAL,
            reads={obj},
            writes={obj},
            fn="fs_truncate",
            params=(obj, length),
        )
        self.system.execute(op)
        return op

    def rename(self, old: str, new: str) -> None:
        """Rename a file.

        File ids embed names, so a rename is a logical copy to the new
        id (operation-B shape: contents never logged) followed by a
        tombstone for the old id, plus directory maintenance.
        """
        if not self.exists(old):
            raise FileNotFoundError(old)
        self._derive("copy", old, new)
        op = delete_object(self.object_id(old))
        self.system.execute(op)
        if self.track_directory:
            self._dir_update("fs_dir_add", new)
            self._dir_update("fs_dir_remove", old)

    def exists(self, name: str) -> bool:
        """True when the file currently has contents."""
        return self.read_file(name) is not None

    # ------------------------------------------------------------------
    # derived files: the Figure 1 operation-B shapes
    # ------------------------------------------------------------------
    def copy(self, src: str, dst: str) -> Operation:
        """Copy ``src`` to ``dst`` — logical unless mode is PHYSICAL."""
        return self._derive("copy", src, dst)

    def sort(self, src: str, dst: str) -> Operation:
        """Sort ``src``'s bytes into ``dst``."""
        return self._derive("sorted_copy", src, dst)

    def concat(self, sources: List[str], dst: str) -> Operation:
        """Concatenate ``sources`` into ``dst``: a multi-input logical
        transform (reads several recoverable objects, writes one)."""
        dst_obj = self.object_id(dst)
        src_objs = [self.object_id(s) for s in sources]
        if self.mode is FsLoggingMode.LOGICAL:
            op = Operation(
                f"fsconcat({','.join(sources)}->{dst})",
                OpKind.LOGICAL,
                reads=set(src_objs),
                writes={dst_obj},
                fn="concat",
                params=(dst_obj, *src_objs),
            )
        else:
            parts = [self.read_file(s) or b"" for s in sources]
            op = Operation(
                f"fsconcat_P({dst})",
                OpKind.PHYSICAL,
                reads=set(),
                writes={dst_obj},
                payload={dst_obj: b"".join(parts)},
            )
        self.system.execute(op)
        self._dir_update("fs_dir_add", dst)
        return op

    def _derive(self, fn: str, src: str, dst: str) -> Operation:
        src_obj, dst_obj = self.object_id(src), self.object_id(dst)
        if self.mode is FsLoggingMode.LOGICAL:
            op = Operation(
                f"fs{fn}({src}->{dst})",
                OpKind.LOGICAL,
                reads={src_obj},
                writes={dst_obj},
                fn=fn,
                params=(src_obj, dst_obj),
            )
        else:
            data = self.read_file(src)
            if data is None:
                raise FileNotFoundError(src)
            result = (
                bytes(sorted(data)) if fn == "sorted_copy" else bytes(data)
            )
            op = Operation(
                f"fs{fn}_P({dst})",
                OpKind.PHYSICAL,
                reads=set(),
                writes={dst_obj},
                payload={dst_obj: result},
            )
        self.system.execute(op)
        self._dir_update("fs_dir_add", dst)
        return op
