"""Recovery domains built on the core framework.

The paper's Section 1 motivates logical logging with three domains
beyond classic page-oriented databases; each is implemented here as a
thin, fully-recoverable layer over :class:`~repro.kernel.RecoverableSystem`:

* :mod:`~repro.domains.application` — application recovery: ``Ex``,
  ``R``, ``W_L``/``W_P`` operations over application state objects,
  with the three logging modes the paper compares (fully logical, the
  ICDE-98 [7] scheme with physical writes, and fully physiological).
* :mod:`~repro.domains.filesystem` — a recoverable file system where
  whole files are objects and copy/sort are logical operations.
* :mod:`~repro.domains.btree` — a B-tree whose page splits use logical
  copy operations instead of logging new-page images.
* :mod:`~repro.domains.kvstore` — a page-oriented record store using
  only physiological operations: the classic-database baseline.
"""

from repro.domains.application import (
    ApplicationRuntime,
    AppLoggingMode,
    APP_PROGRAMS,
)
from repro.domains.filesystem import RecoverableFileSystem, FsLoggingMode
from repro.domains.btree import RecoverableBTree, SplitLoggingMode
from repro.domains.kvstore import KVPageStore
from repro.domains.indexed_store import IndexedKVStore, IndexLoggingMode
from repro.domains.relational import RelationalStore, CtasLoggingMode

__all__ = [
    "IndexedKVStore",
    "IndexLoggingMode",
    "RelationalStore",
    "CtasLoggingMode",
    "ApplicationRuntime",
    "AppLoggingMode",
    "APP_PROGRAMS",
    "RecoverableFileSystem",
    "FsLoggingMode",
    "RecoverableBTree",
    "SplitLoggingMode",
    "KVPageStore",
]
