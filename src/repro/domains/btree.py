"""B-tree recovery with logical page splits (Section 1 "Database
Recovery").

The paper: "Operations of the form of operation B of Figure 1(a) can be
used in B-tree splits, i.e., to copy half the contents of a full B-tree
page to a new page. ... A logical split operation avoids the need to
log the contents of the new B-tree node, which is required when using
the simpler physiological operation."

A split therefore decomposes into three logged operations:

1. ``bt_split_copy`` — **logical**: reads the full page X, writes the
   new page Y with X's upper half (no page image logged); the
   physiological baseline replaces this with a physical write carrying
   the whole new-page image;
2. ``bt_split_trunc`` — physiological: X keeps its lower half;
3. ``bt_parent_add`` — physiological: the separator key and the new
   child pointer are inserted into the parent (only the small separator
   is logged).

Pages are recoverable objects valued as tuples:
``("leaf", keys, values)`` or ``("internal", keys, children)``; the root
pointer is a separate tiny object.  Inserts split full nodes on the way
down (preemptive splitting), so a parent is never full when a child
splits.
"""

from __future__ import annotations

import bisect
import enum
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.common.identifiers import ObjectId
from repro.core.functions import FunctionRegistry
from repro.core.operation import Operation, OpKind, delete_object
from repro.kernel.system import RecoverableSystem

#: Page values: ("leaf", keys, values) or ("internal", keys, children).
Page = Tuple[str, Tuple[Any, ...], Tuple[Any, ...]]


class SplitLoggingMode(enum.Enum):
    """How the new page produced by a split is logged."""

    LOGICAL = "logical"
    PHYSIOLOGICAL = "physiological"


# ----------------------------------------------------------------------
# registered transforms
# ----------------------------------------------------------------------
def _bt_insert(
    reads: Mapping[ObjectId, Any], leaf: ObjectId, key: Any, value: Any
) -> Dict[ObjectId, Any]:
    """Insert (or replace) one record in a leaf page."""
    kind, keys, values = reads[leaf]
    if kind != "leaf":
        raise ValueError(f"bt_insert into non-leaf page {leaf!r}")
    keys_list, values_list = list(keys), list(values)
    pos = bisect.bisect_left(keys_list, key)
    if pos < len(keys_list) and keys_list[pos] == key:
        values_list[pos] = value
    else:
        keys_list.insert(pos, key)
        values_list.insert(pos, value)
    return {leaf: ("leaf", tuple(keys_list), tuple(values_list))}


def _split_point(page: Page) -> int:
    return len(page[1]) // 2


def upper_half(page: Page) -> Page:
    """The new page a split produces (pure helper, also used by the
    physiological baseline to compute the logged image)."""
    kind, keys, payload = page
    mid = _split_point(page)
    if kind == "leaf":
        return ("leaf", keys[mid:], payload[mid:])
    return ("internal", keys[mid + 1 :], payload[mid + 1 :])


def lower_half(page: Page) -> Page:
    """What remains of the split page."""
    kind, keys, payload = page
    mid = _split_point(page)
    if kind == "leaf":
        return ("leaf", keys[:mid], payload[:mid])
    return ("internal", keys[:mid], payload[: mid + 1])


def separator_key(page: Page) -> Any:
    """The key promoted to the parent by splitting ``page``."""
    return page[1][_split_point(page)]


def _bt_split_copy(
    reads: Mapping[ObjectId, Any], src: ObjectId, dst: ObjectId
) -> Dict[ObjectId, Any]:
    """Logical split copy: dst <- upper half of src (reads src only)."""
    return {dst: upper_half(reads[src])}


def _bt_split_trunc(
    reads: Mapping[ObjectId, Any], obj: ObjectId
) -> Dict[ObjectId, Any]:
    """Physiological truncation: src keeps its lower half."""
    return {obj: lower_half(reads[obj])}


def _bt_parent_add(
    reads: Mapping[ObjectId, Any],
    parent: ObjectId,
    sep: Any,
    child: ObjectId,
) -> Dict[ObjectId, Any]:
    """Insert a separator key and new-child pointer into an internal page."""
    kind, keys, children = reads[parent]
    if kind != "internal":
        raise ValueError(f"bt_parent_add into non-internal page {parent!r}")
    keys_list, children_list = list(keys), list(children)
    pos = bisect.bisect_left(keys_list, sep)
    keys_list.insert(pos, sep)
    children_list.insert(pos + 1, child)
    return {parent: ("internal", tuple(keys_list), tuple(children_list))}


def _bt_delete(
    reads: Mapping[ObjectId, Any], leaf: ObjectId, key: Any
) -> Dict[ObjectId, Any]:
    """Remove one record from a leaf (no-op when absent)."""
    kind, keys, values = reads[leaf]
    if kind != "leaf":
        raise ValueError(f"bt_delete from non-leaf page {leaf!r}")
    keys_list, values_list = list(keys), list(values)
    pos = bisect.bisect_left(keys_list, key)
    if pos < len(keys_list) and keys_list[pos] == key:
        del keys_list[pos]
        del values_list[pos]
    return {leaf: ("leaf", tuple(keys_list), tuple(values_list))}


def _bt_merge(
    reads: Mapping[ObjectId, Any],
    dst: ObjectId,
    src: ObjectId,
    sep: Any,
) -> Dict[ObjectId, Any]:
    """Merge right sibling ``src`` into left page ``dst``.

    Logical, the operation-B shape again: the sibling's contents are
    *read* from the recoverable page, never logged.  For internal pages
    the parent's separator is pulled down between the key runs.
    """
    dkind, dkeys, dpayload = reads[dst]
    skind, skeys, spayload = reads[src]
    if dkind != skind:
        raise ValueError("cannot merge pages of different kinds")
    if dkind == "leaf":
        return {dst: ("leaf", dkeys + skeys, dpayload + spayload)}
    return {dst: ("internal", dkeys + (sep,) + skeys, dpayload + spayload)}


def _bt_parent_remove(
    reads: Mapping[ObjectId, Any], parent: ObjectId, index: int
) -> Dict[ObjectId, Any]:
    """Drop separator ``index`` and the child right of it (post-merge)."""
    kind, keys, children = reads[parent]
    if kind != "internal":
        raise ValueError(f"bt_parent_remove on non-internal {parent!r}")
    keys_list, children_list = list(keys), list(children)
    del keys_list[index]
    del children_list[index + 1]
    return {parent: ("internal", tuple(keys_list), tuple(children_list))}


def _bt_borrow(
    reads: Mapping[ObjectId, Any],
    parent: ObjectId,
    child: ObjectId,
    sibling: ObjectId,
    child_index: int,
    from_left: bool,
) -> Dict[ObjectId, Any]:
    """Rotate one entry from a sibling through the parent.

    A single logical operation reading and writing three pages: its
    whole writeset is exposed (everything it writes it also read), so
    the three pages end up in one write-graph node and install
    atomically — a realistic stress for the flush machinery.
    """
    pkind, pkeys, pchildren = reads[parent]
    ckind, ckeys, cpayload = reads[child]
    skind, skeys, spayload = reads[sibling]
    keys_list, children_list = list(pkeys), list(pchildren)
    sep_index = child_index - 1 if from_left else child_index
    if ckind == "leaf":
        if from_left:
            moved_key, moved_val = skeys[-1], spayload[-1]
            new_child = ("leaf", (moved_key,) + ckeys, (moved_val,) + cpayload)
            new_sib = ("leaf", skeys[:-1], spayload[:-1])
            keys_list[sep_index] = moved_key
        else:
            moved_key, moved_val = skeys[0], spayload[0]
            new_child = ("leaf", ckeys + (moved_key,), cpayload + (moved_val,))
            new_sib = ("leaf", skeys[1:], spayload[1:])
            keys_list[sep_index] = new_sib[1][0]
    else:
        sep = pkeys[sep_index]
        if from_left:
            new_child = (
                "internal", (sep,) + ckeys, (spayload[-1],) + cpayload
            )
            new_sib = ("internal", skeys[:-1], spayload[:-1])
            keys_list[sep_index] = skeys[-1]
        else:
            new_child = (
                "internal", ckeys + (sep,), cpayload + (spayload[0],)
            )
            new_sib = ("internal", skeys[1:], spayload[1:])
            keys_list[sep_index] = skeys[0]
    new_parent = ("internal", tuple(keys_list), tuple(children_list))
    return {parent: new_parent, child: new_child, sibling: new_sib}


def register_btree_functions(registry: FunctionRegistry) -> None:
    """Register the B-tree transforms (idempotent)."""
    for name, fn in (
        ("bt_insert", _bt_insert),
        ("bt_split_copy", _bt_split_copy),
        ("bt_split_trunc", _bt_split_trunc),
        ("bt_parent_add", _bt_parent_add),
        ("bt_delete", _bt_delete),
        ("bt_merge", _bt_merge),
        ("bt_parent_remove", _bt_parent_remove),
        ("bt_borrow", _bt_borrow),
    ):
        if not registry.registered(name):
            registry.register(name, fn)


# ----------------------------------------------------------------------
# the tree
# ----------------------------------------------------------------------
class RecoverableBTree:
    """A B-tree whose pages are recoverable objects."""

    def __init__(
        self,
        system: RecoverableSystem,
        name: str = "t",
        capacity: int = 4,
        mode: SplitLoggingMode = SplitLoggingMode.LOGICAL,
    ) -> None:
        if capacity < 3:
            raise ValueError("capacity must be at least 3")
        self.system = system
        self.name = name
        self.capacity = capacity
        self.mode = mode
        register_btree_functions(system.registry)
        self._next_page = 0
        if self.system.read(self.root_ptr_obj) is None:
            self._create_empty()
        else:
            self.attach()

    # -- naming ----------------------------------------------------------
    @property
    def root_ptr_obj(self) -> ObjectId:
        return f"bt:{self.name}:root"

    def _page_obj(self, number: int) -> ObjectId:
        return f"bt:{self.name}:p{number}"

    def _alloc(self) -> ObjectId:
        obj = self._page_obj(self._next_page)
        self._next_page += 1
        return obj

    # -- bootstrap ---------------------------------------------------------
    def _create_empty(self) -> None:
        first = self._alloc()
        self.system.execute(
            Operation(
                f"btinit({first})",
                OpKind.PHYSICAL,
                reads=set(),
                writes={first},
                payload={first: ("leaf", (), ())},
            )
        )
        self.system.execute(
            Operation(
                f"btroot={first}",
                OpKind.PHYSICAL,
                reads=set(),
                writes={self.root_ptr_obj},
                payload={self.root_ptr_obj: first},
            )
        )

    def attach(self) -> None:
        """Re-derive the page allocator after recovery by walking the
        tree; page numbers are embedded in object ids."""
        highest = -1
        for obj in self._walk_page_ids():
            number = int(obj.rsplit(":p", 1)[1])
            highest = max(highest, number)
        self._next_page = highest + 1

    def _walk_page_ids(self) -> Iterator[ObjectId]:
        root = self.system.read(self.root_ptr_obj)
        if root is None:
            return
        stack = [root]
        while stack:
            obj = stack.pop()
            yield obj
            page = self.system.read(obj)
            if page is not None and page[0] == "internal":
                stack.extend(page[2])

    # -- reads --------------------------------------------------------------
    def _page(self, obj: ObjectId) -> Page:
        page = self.system.read(obj)
        if page is None:
            raise KeyError(f"missing B-tree page {obj!r}")
        return page

    def lookup(self, key: Any) -> Optional[Any]:
        """The value stored under ``key``, or None."""
        obj = self.system.read(self.root_ptr_obj)
        while True:
            kind, keys, payload = self._page(obj)
            if kind == "leaf":
                pos = bisect.bisect_left(keys, key)
                if pos < len(keys) and keys[pos] == key:
                    return payload[pos]
                return None
            pos = bisect.bisect_right(keys, key)
            obj = payload[pos]

    def items(self) -> List[Tuple[Any, Any]]:
        """All (key, value) pairs in key order."""
        out: List[Tuple[Any, Any]] = []
        self._collect(self.system.read(self.root_ptr_obj), out)
        return out

    def _collect(self, obj: ObjectId, out: List[Tuple[Any, Any]]) -> None:
        kind, keys, payload = self._page(obj)
        if kind == "leaf":
            out.extend(zip(keys, payload))
            return
        for child in payload:
            self._collect(child, out)

    # -- inserts ---------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert or update one record, splitting full pages on the way
        down so splits never propagate upward."""
        root_obj = self.system.read(self.root_ptr_obj)
        if len(self._page(root_obj)[1]) >= self.capacity:
            root_obj = self._split_root(root_obj)
        node = root_obj
        while True:
            kind, keys, payload = self._page(node)
            if kind == "leaf":
                self.system.execute(
                    Operation(
                        f"btins({key})",
                        OpKind.PHYSIOLOGICAL,
                        reads={node},
                        writes={node},
                        fn="bt_insert",
                        params=(node, key, value),
                    )
                )
                return
            pos = bisect.bisect_right(keys, key)
            child = payload[pos]
            if len(self._page(child)[1]) >= self.capacity:
                self._split_child(node, child)
                # Re-read: the separator may route the key differently.
                kind, keys, payload = self._page(node)
                pos = bisect.bisect_right(keys, key)
                child = payload[pos]
            node = child

    # -- deletes ---------------------------------------------------------
    @property
    def min_keys(self) -> int:
        """Minimum occupancy of a non-root page.

        Chosen so a merge of two minimal pages (plus, for internal
        pages, the pulled-down separator) always fits:
        ``2*min + 1 <= capacity``.
        """
        return (self.capacity - 1) // 2

    def delete(self, key: Any) -> None:
        """Delete one record, rebalancing full pages on the way down.

        Descent maintains the invariant that the current node has more
        than ``min_keys`` keys (or is the root), so removing a key at
        the leaf can never underflow retroactively.  Underfull children
        are fixed before descending: borrow from a sibling with spare
        keys (one logical three-page rotation), else merge with a
        sibling (a logical operation-B copy plus a physiological parent
        update plus a page delete).
        """
        node = self.system.read(self.root_ptr_obj)
        while True:
            kind, keys, payload = self._page(node)
            if kind == "leaf":
                self.system.execute(
                    Operation(
                        f"btdel({key})",
                        OpKind.PHYSIOLOGICAL,
                        reads={node},
                        writes={node},
                        fn="bt_delete",
                        params=(node, key),
                    )
                )
                return
            pos = bisect.bisect_right(keys, key)
            child = payload[pos]
            if len(self._page(child)[1]) <= self.min_keys:
                self._fix_child(node, pos)
                # Re-evaluate from the (possibly collapsed) node: a
                # merge can re-route the key to a different child that
                # itself needs fixing before we descend.
                node = self._maybe_collapse_root(node)
                continue
            node = child

    def _fix_child(self, parent: ObjectId, index: int) -> None:
        """Bring child ``index`` above minimum occupancy."""
        _kind, keys, children = self._page(parent)
        child = children[index]
        left = children[index - 1] if index > 0 else None
        right = children[index + 1] if index < len(children) - 1 else None
        if left is not None and len(self._page(left)[1]) > self.min_keys:
            self._borrow(parent, child, left, index, from_left=True)
            return
        if right is not None and len(self._page(right)[1]) > self.min_keys:
            self._borrow(parent, child, right, index, from_left=False)
            return
        if left is not None:
            self._merge_children(parent, index - 1)
        else:
            self._merge_children(parent, index)

    def _borrow(
        self,
        parent: ObjectId,
        child: ObjectId,
        sibling: ObjectId,
        child_index: int,
        from_left: bool,
    ) -> None:
        self.system.execute(
            Operation(
                f"btborrow({child}<-{sibling})",
                OpKind.LOGICAL,
                reads={parent, child, sibling},
                writes={parent, child, sibling},
                fn="bt_borrow",
                params=(parent, child, sibling, child_index, from_left),
            )
        )

    def _merge_children(self, parent: ObjectId, left_index: int) -> None:
        """Merge child ``left_index+1`` into child ``left_index``."""
        _kind, keys, children = self._page(parent)
        dst, src = children[left_index], children[left_index + 1]
        sep = keys[left_index]
        self.system.execute(
            Operation(
                f"btmerge({src}->{dst})",
                OpKind.LOGICAL,
                reads={dst, src},
                writes={dst},
                fn="bt_merge",
                params=(dst, src, sep),
            )
        )
        self.system.execute(
            Operation(
                f"btparentrm({parent},{left_index})",
                OpKind.PHYSIOLOGICAL,
                reads={parent},
                writes={parent},
                fn="bt_parent_remove",
                params=(parent, left_index),
            )
        )
        self.system.execute(delete_object(src))

    def _maybe_collapse_root(self, node: ObjectId) -> ObjectId:
        """If the root lost its last separator, hoist its only child."""
        root = self.system.read(self.root_ptr_obj)
        if node != root:
            return node
        kind, keys, payload = self._page(root)
        if kind != "internal" or keys:
            return root
        only_child = payload[0]
        self.system.execute(
            Operation(
                f"btroot={only_child}",
                OpKind.PHYSICAL,
                reads=set(),
                writes={self.root_ptr_obj},
                payload={self.root_ptr_obj: only_child},
            )
        )
        self.system.execute(delete_object(root))
        return only_child

    # -- splits ----------------------------------------------------------
    def _emit_split_copy(self, src: ObjectId, dst: ObjectId) -> None:
        """The mode-dependent half of a split: how the new page is logged."""
        if self.mode is SplitLoggingMode.LOGICAL:
            op = Operation(
                f"btsplitcopy({src}->{dst})",
                OpKind.LOGICAL,
                reads={src},
                writes={dst},
                fn="bt_split_copy",
                params=(src, dst),
            )
        else:
            image = upper_half(self._page(src))
            op = Operation(
                f"btsplitcopy_P({dst})",
                OpKind.PHYSICAL,
                reads=set(),
                writes={dst},
                payload={dst: image},
            )
        self.system.execute(op)

    def _split_child(self, parent: ObjectId, child: ObjectId) -> None:
        sep = separator_key(self._page(child))
        new_page = self._alloc()
        self._emit_split_copy(child, new_page)
        self.system.execute(
            Operation(
                f"btsplittrunc({child})",
                OpKind.PHYSIOLOGICAL,
                reads={child},
                writes={child},
                fn="bt_split_trunc",
                params=(child,),
            )
        )
        self.system.execute(
            Operation(
                f"btparentadd({parent},{sep})",
                OpKind.PHYSIOLOGICAL,
                reads={parent},
                writes={parent},
                fn="bt_parent_add",
                params=(parent, sep, new_page),
            )
        )

    def _split_root(self, root_obj: ObjectId) -> ObjectId:
        """Split a full root: hoist a new internal root above it."""
        sep = separator_key(self._page(root_obj))
        sibling = self._alloc()
        new_root = self._alloc()
        self._emit_split_copy(root_obj, sibling)
        self.system.execute(
            Operation(
                f"btsplittrunc({root_obj})",
                OpKind.PHYSIOLOGICAL,
                reads={root_obj},
                writes={root_obj},
                fn="bt_split_trunc",
                params=(root_obj,),
            )
        )
        self.system.execute(
            Operation(
                f"btnewroot({new_root})",
                OpKind.PHYSICAL,
                reads=set(),
                writes={new_root},
                payload={new_root: ("internal", (sep,), (root_obj, sibling))},
            )
        )
        self.system.execute(
            Operation(
                f"btroot={new_root}",
                OpKind.PHYSICAL,
                reads=set(),
                writes={self.root_ptr_obj},
                payload={self.root_ptr_obj: new_root},
            )
        )
        return new_root

    # -- integrity ---------------------------------------------------------
    def check_structure(self) -> int:
        """Validate ordering/fanout/occupancy invariants; returns the
        key count."""
        root = self.system.read(self.root_ptr_obj)
        count, _lo, _hi, _depth = self._check_node(root, None, None)
        return count

    def _check_node(self, obj, lo, hi, depth: int = 0):
        kind, keys, payload = self._page(obj)
        assert list(keys) == sorted(keys), f"unsorted keys in {obj}"
        for key in keys:
            assert lo is None or key >= lo, f"key {key} below bound in {obj}"
            assert hi is None or key < hi, f"key {key} above bound in {obj}"
        assert len(keys) <= self.capacity, f"overfull page {obj}"
        if depth > 0:
            assert len(keys) >= self.min_keys, f"underfull page {obj}"
        if kind == "leaf":
            assert len(keys) == len(payload)
            return len(keys), lo, hi, depth
        assert len(payload) == len(keys) + 1, f"bad fanout in {obj}"
        total = 0
        depths = set()
        bounds = [lo, *keys, hi]
        for index, child in enumerate(payload):
            child_count, _l, _h, child_depth = self._check_node(
                child, bounds[index], bounds[index + 1], depth + 1
            )
            total += child_count
            depths.add(child_depth)
        assert len(depths) == 1, f"uneven leaf depth below {obj}"
        return total, lo, hi, depths.pop()
