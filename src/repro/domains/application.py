"""Application recovery (Section 1 "Application Recovery", and [7]).

An application is a deterministic state machine whose state is one
recoverable object.  Between interactions with the recoverable world it
advances via ``Ex(A)`` (physiological: reads and writes only A); it
ingests data via ``R(A, X)`` (logical: reads A and X, writes A) and
emits data via a write operation, which is where the paper's modes
differ:

* ``AppLoggingMode.LOGICAL`` — this paper: ``W_L(A, X)`` is logical
  (reads A, writes X); nothing but identifiers is logged.  This enables
  the cyclic flush dependencies the refined write graph exists to
  manage.
* ``AppLoggingMode.ICDE98`` — the scheme of [7]: reads are logical but
  writes are physical ``W_P(X, v)`` with the emitted value in the log
  record, precisely to preclude write-graph cycles.
* ``AppLoggingMode.PHYSIOLOGICAL`` — the classic baseline: reads are
  physiological on A with the ingested value logged as a parameter
  (Figure 1(b)'s ``log(X)``), writes are physical.

Application state is a 4-tuple ``(step, accum, inbuf, outbuf)``:
``step`` counts executions, ``accum`` is a running digest of everything
ingested, ``inbuf``/``outbuf`` are the input and output buffers.  The
per-application *program* (a named deterministic bytes transform from
``APP_PROGRAMS``) computes ``outbuf`` from ``inbuf`` at each ``Ex``.
"""

from __future__ import annotations

import enum
import hashlib
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.common.identifiers import ObjectId
from repro.core.functions import FunctionRegistry
from repro.core.operation import Operation, OpKind
from repro.kernel.system import RecoverableSystem

#: Application state: (step count, digest of ingested data, input
#: buffer, output buffer).  None buffers mean "empty".
AppState = Tuple[int, bytes, Optional[bytes], Optional[bytes]]

INITIAL_STATE: AppState = (0, b"", None, None)


def _digest(accum: bytes, data: bytes) -> bytes:
    return hashlib.sha256(accum + data).digest()[:16]


def _prog_upper(data: bytes) -> bytes:
    return data.upper()


def _prog_reverse(data: bytes) -> bytes:
    return bytes(reversed(data))


def _prog_sort(data: bytes) -> bytes:
    return bytes(sorted(data))


def _prog_checksum(data: bytes) -> bytes:
    return hashlib.sha256(data).hexdigest().encode("ascii")


#: Named deterministic programs an application can run.
APP_PROGRAMS = {
    "upper": _prog_upper,
    "reverse": _prog_reverse,
    "sort": _prog_sort,
    "checksum": _prog_checksum,
}


class AppLoggingMode(enum.Enum):
    """How application interactions are logged (the E2a comparison)."""

    LOGICAL = "logical"
    ICDE98 = "icde98"
    PHYSIOLOGICAL = "physiological"


# ----------------------------------------------------------------------
# registered transforms
# ----------------------------------------------------------------------
def _app_read(
    reads: Mapping[ObjectId, Any], app: ObjectId, src: ObjectId
) -> Dict[ObjectId, Any]:
    """R(A, X): ingest X's current value into A's input buffer."""
    state: AppState = reads[app] or INITIAL_STATE
    data = reads[src]
    if data is None:
        raise ValueError(f"application read of absent object {src!r}")
    step, accum, _inbuf, outbuf = state
    return {app: (step, accum, bytes(data), outbuf)}


def _app_read_logged(
    reads: Mapping[ObjectId, Any], app: ObjectId, data: bytes
) -> Dict[ObjectId, Any]:
    """Physiological read: the ingested value comes from the log record."""
    state: AppState = reads[app] or INITIAL_STATE
    step, accum, _inbuf, outbuf = state
    return {app: (step, accum, bytes(data), outbuf)}


def _app_exec(
    reads: Mapping[ObjectId, Any], app: ObjectId, program: str
) -> Dict[ObjectId, Any]:
    """Ex(A): consume the input buffer, fill the output buffer."""
    state: AppState = reads[app] or INITIAL_STATE
    step, accum, inbuf, _outbuf = state
    if inbuf is None:
        raise ValueError(f"Ex({app!r}) with empty input buffer")
    transform = APP_PROGRAMS[program]
    return {app: (step + 1, _digest(accum, inbuf), None, transform(inbuf))}


def _app_write(
    reads: Mapping[ObjectId, Any], app: ObjectId, dst: ObjectId
) -> Dict[ObjectId, Any]:
    """W_L(A, X): emit A's output buffer to X (A unchanged)."""
    state: AppState = reads[app] or INITIAL_STATE
    outbuf = state[3]
    if outbuf is None:
        raise ValueError(f"W_L({app!r}) with empty output buffer")
    return {dst: outbuf}


def _app_write_pl(
    reads: Mapping[ObjectId, Any], dst: ObjectId, delta: bytes
) -> Dict[ObjectId, Any]:
    """W_PL(X): physiological in-place write — X <- X + logged delta.

    Table 1's "Application Physiological Write: reads and writes X".
    Because the operation may read only X itself, the emitted data must
    travel in the log record (the delta parameter) — which is exactly
    why the paper prefers the logical W_L when objects are large.
    """
    current = reads[dst] or b""
    return {dst: bytes(current) + bytes(delta)}


def register_application_functions(registry: FunctionRegistry) -> None:
    """Register the application transforms (idempotent)."""
    for name, fn in (
        ("app_read", _app_read),
        ("app_read_logged", _app_read_logged),
        ("app_exec", _app_exec),
        ("app_write", _app_write),
        ("app_write_pl", _app_write_pl),
    ):
        if not registry.registered(name):
            registry.register(name, fn)


# ----------------------------------------------------------------------
# runtime
# ----------------------------------------------------------------------
class ApplicationRuntime:
    """Drives one application's operations on a RecoverableSystem."""

    def __init__(
        self,
        system: RecoverableSystem,
        app_id: ObjectId,
        program: str = "upper",
        mode: AppLoggingMode = AppLoggingMode.LOGICAL,
    ) -> None:
        if program not in APP_PROGRAMS:
            raise ValueError(f"unknown application program {program!r}")
        self.system = system
        self.app_id = app_id
        self.program = program
        self.mode = mode
        register_application_functions(system.registry)

    # -- state access ---------------------------------------------------
    def state(self) -> AppState:
        """The application's current recoverable state."""
        return self.system.read(self.app_id) or INITIAL_STATE

    @property
    def step(self) -> int:
        return self.state()[0]

    @property
    def accum(self) -> bytes:
        return self.state()[1]

    # -- operations -------------------------------------------------------
    def read(self, src: ObjectId) -> Operation:
        """Ingest object ``src`` into the input buffer — R(A, X)."""
        if self.mode is AppLoggingMode.PHYSIOLOGICAL:
            data = self.system.read(src)
            if data is None:
                raise ValueError(f"read of absent object {src!r}")
            op = Operation(
                f"R_P({self.app_id},{src})",
                OpKind.PHYSIOLOGICAL,
                reads={self.app_id},
                writes={self.app_id},
                fn="app_read_logged",
                params=(self.app_id, bytes(data)),
            )
        else:
            op = Operation(
                f"R({self.app_id},{src})",
                OpKind.LOGICAL,
                reads={self.app_id, src},
                writes={self.app_id},
                fn="app_read",
                params=(self.app_id, src),
            )
        self.system.execute(op)
        return op

    def execute_step(self) -> Operation:
        """Advance the application — Ex(A), always physiological."""
        op = Operation(
            f"Ex({self.app_id})",
            OpKind.PHYSIOLOGICAL,
            reads={self.app_id},
            writes={self.app_id},
            fn="app_exec",
            params=(self.app_id, self.program),
        )
        self.system.execute(op)
        return op

    def write(self, dst: ObjectId) -> Operation:
        """Emit the output buffer to ``dst``.

        Logical mode logs ``W_L(A, X)`` (identifiers only); the other
        modes log a physical ``W_P(X, v)`` carrying the value, as [7]
        required to preclude cyclic flush dependencies.
        """
        if self.mode is AppLoggingMode.LOGICAL:
            op = Operation(
                f"W_L({self.app_id},{dst})",
                OpKind.LOGICAL,
                reads={self.app_id},
                writes={dst},
                fn="app_write",
                params=(self.app_id, dst),
            )
        else:
            outbuf = self.state()[3]
            if outbuf is None:
                raise ValueError("write with empty output buffer")
            op = Operation(
                f"W_P({dst})",
                OpKind.PHYSICAL,
                reads=set(),
                writes={dst},
                payload={dst: outbuf},
            )
        self.system.execute(op)
        return op

    def write_in_place(self, dst: ObjectId) -> Operation:
        """Append the output buffer to ``dst`` in place — W_PL(X).

        Table 1's physiological application write: the operation reads
        and writes only X, so the emitted bytes are logged as a
        parameter regardless of the runtime's logging mode.  Included
        for completeness of the paper's operation vocabulary; W_L is
        the economical choice for large objects.
        """
        outbuf = self.state()[3]
        if outbuf is None:
            raise ValueError("write_in_place with empty output buffer")
        op = Operation(
            f"W_PL({dst})",
            OpKind.PHYSIOLOGICAL,
            reads={dst},
            writes={dst},
            fn="app_write_pl",
            params=(dst, outbuf),
        )
        self.system.execute(op)
        return op

    def run_pipeline(self, src: ObjectId, dst: ObjectId) -> None:
        """One full interaction: read ``src``, execute, write ``dst``."""
        self.read(src)
        self.execute_step()
        self.write(dst)
