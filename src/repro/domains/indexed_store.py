"""A record store with a secondary index maintained by logical
operations.

A realistic database use of the paper's generality beyond B-tree
splits: when a record changes, its secondary-index entries must change
too.  The index update is *derivable from recoverable state* — the base
page holds the record — so a logical operation of the Figure 1 form
(reads the base page and the index page, writes the index page) keeps
the index without logging record values a second time:

* ``idx_remove``: before the base update, reads the base page (the
  record's *old* value) and removes ``old-value -> key`` from the old
  value's index page;
* the base update itself (physiological, the record is logged once —
  it enters from outside);
* ``idx_add``: after the base update, reads the base page (the *new*
  value) and adds ``new-value -> key`` to the new value's index page.

With ``IndexLoggingMode.PHYSIOLOGICAL`` the index operations carry the
value in their log records instead — the classic scheme — which the E2
bench quantifies.

Which index page an operation touches depends on the value's hash; the
executor discovers that at run time and records the page id in the
operation's readset/writeset, so replay is fully determined.
"""

from __future__ import annotations

import enum
import zlib
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.common.identifiers import ObjectId
from repro.core.functions import FunctionRegistry
from repro.core.operation import Operation, OpKind
from repro.kernel.system import RecoverableSystem


class IndexLoggingMode(enum.Enum):
    """How index maintenance is logged."""

    LOGICAL = "logical"
    PHYSIOLOGICAL = "physiological"


def _records_of(page_value: Any) -> Dict[Any, Any]:
    return dict(page_value or ())


def _pack(records: Dict[Any, Any]) -> Tuple[Tuple[Any, Any], ...]:
    return tuple(sorted(records.items()))


# ----------------------------------------------------------------------
# registered transforms
# ----------------------------------------------------------------------
def _ikv_base_put(
    reads: Mapping[ObjectId, Any], page: ObjectId, key: Any, value: Any
) -> Dict[ObjectId, Any]:
    records = _records_of(reads[page])
    records[key] = value
    return {page: _pack(records)}


def _ikv_base_remove(
    reads: Mapping[ObjectId, Any], page: ObjectId, key: Any
) -> Dict[ObjectId, Any]:
    records = _records_of(reads[page])
    records.pop(key, None)
    return {page: _pack(records)}


def _ikv_idx_add(
    reads: Mapping[ObjectId, Any],
    idx_page: ObjectId,
    base_page: ObjectId,
    key: Any,
) -> Dict[ObjectId, Any]:
    """Add ``value(key) -> key`` to the index, reading the value from
    the base page (logical: nothing but ids and the key logged)."""
    base = _records_of(reads[base_page])
    if key not in base:
        raise ValueError(f"idx_add: {key!r} not on base page {base_page!r}")
    value = base[key]
    index = _records_of(reads[idx_page])
    keys = set(index.get(value, ()))
    keys.add(key)
    index[value] = tuple(sorted(keys))
    return {idx_page: _pack(index)}


def _ikv_idx_remove(
    reads: Mapping[ObjectId, Any],
    idx_page: ObjectId,
    base_page: ObjectId,
    key: Any,
) -> Dict[ObjectId, Any]:
    """Remove ``value(key) -> key``, reading the (old) value from the
    base page — this runs *before* the base update."""
    base = _records_of(reads[base_page])
    index = _records_of(reads[idx_page])
    value = base.get(key)
    if value is not None and value in index:
        keys = tuple(k for k in index[value] if k != key)
        if keys:
            index[value] = keys
        else:
            del index[value]
    return {idx_page: _pack(index)}


def _ikv_idx_add_logged(
    reads: Mapping[ObjectId, Any], idx_page: ObjectId, key: Any, value: Any
) -> Dict[ObjectId, Any]:
    """Physiological baseline: the value travels in the log record."""
    index = _records_of(reads[idx_page])
    keys = set(index.get(value, ()))
    keys.add(key)
    index[value] = tuple(sorted(keys))
    return {idx_page: _pack(index)}


def _ikv_idx_remove_logged(
    reads: Mapping[ObjectId, Any], idx_page: ObjectId, key: Any, value: Any
) -> Dict[ObjectId, Any]:
    index = _records_of(reads[idx_page])
    if value in index:
        keys = tuple(k for k in index[value] if k != key)
        if keys:
            index[value] = keys
        else:
            del index[value]
    return {idx_page: _pack(index)}


def register_indexed_store_functions(registry: FunctionRegistry) -> None:
    """Register the indexed-store transforms (idempotent)."""
    for name, fn in (
        ("ikv_base_put", _ikv_base_put),
        ("ikv_base_remove", _ikv_base_remove),
        ("ikv_idx_add", _ikv_idx_add),
        ("ikv_idx_remove", _ikv_idx_remove),
        ("ikv_idx_add_logged", _ikv_idx_add_logged),
        ("ikv_idx_remove_logged", _ikv_idx_remove_logged),
    ):
        if not registry.registered(name):
            registry.register(name, fn)


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class IndexedKVStore:
    """Hash-partitioned records with a value -> keys secondary index."""

    def __init__(
        self,
        system: RecoverableSystem,
        name: str = "ikv",
        base_pages: int = 8,
        index_pages: int = 8,
        mode: IndexLoggingMode = IndexLoggingMode.LOGICAL,
    ) -> None:
        self.system = system
        self.name = name
        self.base_pages = base_pages
        self.index_pages = index_pages
        self.mode = mode
        register_indexed_store_functions(system.registry)

    # -- partitioning ------------------------------------------------------
    def base_page_of(self, key: Any) -> ObjectId:
        digest = zlib.crc32(repr(key).encode("utf-8"))
        return f"ikv:{self.name}:base:p{digest % self.base_pages}"

    def index_page_of(self, value: Any) -> ObjectId:
        digest = zlib.crc32(repr(value).encode("utf-8"))
        return f"ikv:{self.name}:idx:p{digest % self.index_pages}"

    # -- mutations --------------------------------------------------------
    def put(self, key: Any, value: Any) -> None:
        """Insert or update a record, maintaining the index."""
        base = self.base_page_of(key)
        old_value = self.get(key)
        if old_value is not None:
            self._idx_remove(key, old_value)
        self.system.execute(
            Operation(
                f"ikvput({key})",
                OpKind.PHYSIOLOGICAL,
                reads={base},
                writes={base},
                fn="ikv_base_put",
                params=(base, key, value),
            )
        )
        self._idx_add(key, value)

    def remove(self, key: Any) -> None:
        """Remove a record and its index entry."""
        old_value = self.get(key)
        if old_value is None:
            return
        self._idx_remove(key, old_value)
        base = self.base_page_of(key)
        self.system.execute(
            Operation(
                f"ikvdel({key})",
                OpKind.PHYSIOLOGICAL,
                reads={base},
                writes={base},
                fn="ikv_base_remove",
                params=(base, key),
            )
        )

    def _idx_add(self, key: Any, value: Any) -> None:
        idx = self.index_page_of(value)
        base = self.base_page_of(key)
        if self.mode is IndexLoggingMode.LOGICAL:
            op = Operation(
                f"idxadd({key})",
                OpKind.LOGICAL,
                reads={idx, base},
                writes={idx},
                fn="ikv_idx_add",
                params=(idx, base, key),
            )
        else:
            op = Operation(
                f"idxadd_P({key})",
                OpKind.PHYSIOLOGICAL,
                reads={idx},
                writes={idx},
                fn="ikv_idx_add_logged",
                params=(idx, key, value),
            )
        self.system.execute(op)

    def _idx_remove(self, key: Any, old_value: Any) -> None:
        idx = self.index_page_of(old_value)
        base = self.base_page_of(key)
        if self.mode is IndexLoggingMode.LOGICAL:
            op = Operation(
                f"idxrm({key})",
                OpKind.LOGICAL,
                reads={idx, base},
                writes={idx},
                fn="ikv_idx_remove",
                params=(idx, base, key),
            )
        else:
            op = Operation(
                f"idxrm_P({key})",
                OpKind.PHYSIOLOGICAL,
                reads={idx},
                writes={idx},
                fn="ikv_idx_remove_logged",
                params=(idx, key, old_value),
            )
        self.system.execute(op)

    # -- queries ----------------------------------------------------------
    def get(self, key: Any) -> Optional[Any]:
        """Current value of ``key`` from the base pages."""
        records = _records_of(self.system.read(self.base_page_of(key)))
        return records.get(key)

    def find_by_value(self, value: Any) -> List[Any]:
        """Keys whose record equals ``value``, via the secondary index."""
        index = _records_of(self.system.read(self.index_page_of(value)))
        return list(index.get(value, ()))

    def keys(self) -> List[Any]:
        """All keys (base-page scan)."""
        out: List[Any] = []
        for number in range(self.base_pages):
            page = self.system.read(f"ikv:{self.name}:base:p{number}")
            out.extend(key for key, _value in (page or ()))
        return sorted(out)

    # -- integrity ----------------------------------------------------------
    def check_index_consistency(self) -> int:
        """Verify the index exactly mirrors the base; returns the
        number of indexed entries."""
        expected: Dict[Any, set] = {}
        for number in range(self.base_pages):
            page = self.system.read(f"ikv:{self.name}:base:p{number}")
            for key, value in page or ():
                expected.setdefault(value, set()).add(key)
        actual: Dict[Any, set] = {}
        for number in range(self.index_pages):
            page = self.system.read(f"ikv:{self.name}:idx:p{number}")
            for value, keys in page or ():
                actual.setdefault(value, set()).update(keys)
        assert actual == expected, (
            f"index diverged: extra={ {k: v for k, v in actual.items() if expected.get(k) != v} }"
        )
        return sum(len(keys) for keys in expected.values())
