"""The stable-storage backend registry and ``make_store`` factory.

Mirrors :func:`repro.core.engine.make_engine`: backend choice is a
first-class, swappable **policy**, not a hardcoded class.  Callers name
a backend (``"memory"``, ``"file"``, ``"logstore"``) and get a fully
constructed :class:`~repro.storage.stable_store.StableStore`; passing a
:class:`~repro.storage.faults.FaultModel` yields the backend's
fault-injecting variant, so every torture lane can sweep backends
without knowing their classes.

The registry is open: :func:`register_store_backend` admits new
backends (a future remote store, an encrypting wrapper) which then
work everywhere a backend name is threaded —
``SystemConfig.store_backend``, ``PersistentSystem.open(store_backend=
...)``, ``python -m repro serve --store``, and the torture CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.storage.faults import FaultModel
from repro.storage.stable_store import StableStore
from repro.storage.stats import IOStats

#: The backend used when none is named — the paper's in-memory
#: simulated store.
DEFAULT_BACKEND = "memory"


@dataclass(frozen=True)
class StoreBackend:
    """One registered storage backend.

    ``factory`` receives ``(root, stats, **kwargs)``; ``faulty_factory``
    receives ``(root, model, stats, **kwargs)`` and may be ``None`` for
    backends with no fault-injecting variant.  ``requires_root`` gates
    the ``root`` argument check in :func:`make_store` so error messages
    name the actual problem.
    """

    name: str
    description: str
    requires_root: bool
    factory: Callable[..., StableStore]
    faulty_factory: Optional[Callable[..., StableStore]] = None


_REGISTRY: Dict[str, StoreBackend] = {}

#: Convenience spellings accepted by :func:`make_store`.
_ALIASES = {
    "log": "logstore",
    "log-structured": "logstore",
}


def register_store_backend(backend: StoreBackend) -> None:
    """Admit a backend to the registry (name must be unused)."""
    if backend.name in _REGISTRY or backend.name in _ALIASES:
        raise ValueError(f"store backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend


def store_backends() -> List[str]:
    """Registered backend names, sorted (aliases excluded)."""
    return sorted(_REGISTRY)


def resolve_backend(name: str) -> StoreBackend:
    """The :class:`StoreBackend` for ``name`` (aliases accepted)."""
    canonical = _ALIASES.get(name, name)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        known = ", ".join(store_backends())
        raise ValueError(
            f"unknown store backend {name!r} (known: {known})"
        ) from None


def make_store(
    backend: str = DEFAULT_BACKEND,
    root: Optional[str] = None,
    stats: Optional[IOStats] = None,
    *,
    model: Optional[FaultModel] = None,
    **kwargs: Any,
) -> StableStore:
    """Build the stable store for ``backend``.

    Parameters
    ----------
    backend:
        A registered backend name or alias: ``"memory"`` (the paper's
        simulated store), ``"file"`` (one CRC-framed file per object),
        ``"logstore"`` / ``"log"`` / ``"log-structured"`` (append-only
        segments; the log is the database).
    root:
        Database directory; required by the durable backends.
    stats:
        Shared I/O ledger (one is created when omitted).
    model:
        When given, the backend's fault-injecting variant is built so
        torture harnesses can sweep backends uniformly.
    kwargs:
        Backend-specific knobs (e.g. the log-structured store's
        ``segment_bytes`` / ``compact_ratio``).
    """
    spec = resolve_backend(backend)
    if spec.requires_root and root is None:
        raise ValueError(
            f"store backend {spec.name!r} is durable and requires a root "
            "directory"
        )
    if model is not None:
        if spec.faulty_factory is None:
            raise ValueError(
                f"store backend {spec.name!r} has no fault-injecting "
                "variant"
            )
        return spec.faulty_factory(root, model, stats, **kwargs)
    return spec.factory(root, stats, **kwargs)


def recommended_cache_config(backend: str) -> "Any":
    """The :class:`~repro.cache.config.CacheConfig` that realizes a
    backend's cost profile.

    For the log-structured backend that is the ATOMIC multi-object
    strategy over :class:`~repro.storage.atomic.LogStructuredInstall`
    — batch frames make every flush set atomic for free, so identity
    writes and flush double-writes read zero.  Every in-place backend
    keeps the default (identity writes over the refined graph), which
    is the paper's recommendation for stores that rewrite in place.
    """
    # Imported lazily: cache.config imports repro.storage.atomic, so a
    # module-level import here would cycle through the package.
    from repro.cache.config import CacheConfig, MultiObjectStrategy
    from repro.storage.atomic import LogStructuredInstall

    spec = resolve_backend(backend)
    if spec.name == "logstore":
        return CacheConfig(
            multi_object_strategy=MultiObjectStrategy.ATOMIC,
            mechanism=LogStructuredInstall(),
        )
    return CacheConfig()


def _register_builtins() -> None:
    from repro.storage.faultwrap import (
        FaultyFileStore,
        FaultyLogStructuredStore,
        FaultyStore,
    )
    from repro.storage.file_store import FileStableStore
    from repro.storage.logstore import LogStructuredStableStore

    register_store_backend(
        StoreBackend(
            name="memory",
            description="in-memory simulated store (the paper's model)",
            requires_root=False,
            factory=lambda root, stats, **kw: StableStore(stats, **kw),
            faulty_factory=lambda root, model, stats, **kw: FaultyStore(
                model, stats, **kw
            ),
        )
    )
    register_store_backend(
        StoreBackend(
            name="file",
            description="one CRC-framed file per object, atomic renames",
            requires_root=True,
            factory=lambda root, stats, **kw: FileStableStore(
                root, stats, **kw
            ),
            faulty_factory=lambda root, model, stats, **kw: FaultyFileStore(
                root, model, stats, **kw
            ),
        )
    )
    register_store_backend(
        StoreBackend(
            name="logstore",
            description="append-only CRC-framed segments; the log is the "
            "database (compaction reclaims dead bytes)",
            requires_root=True,
            factory=lambda root, stats, **kw: LogStructuredStableStore(
                root, stats, **kw
            ),
            faulty_factory=(
                lambda root, model, stats, **kw: FaultyLogStructuredStore(
                    root, model, stats, **kw
                )
            ),
        )
    )


_register_builtins()
