"""Stable storage: the crash-surviving side of the system.

The stable store plays the role of the disk-resident database in the
paper: it survives crashes, it is updated by *flushing* cached objects,
and multi-object flushes are atomic only when performed through an
atomicity mechanism (Section 4 discusses two traditional ones — shadow
paging and flush transactions — which are implemented here as the
baselines that cache-manager identity writes are compared against).

This package is the **canonical storage surface**.  Three backends
implement the :class:`StableStore` contract, selected by name through
:func:`make_store` (the storage analogue of
:func:`repro.core.engine.make_engine`):

=============  =======================================================
``memory``     :class:`StableStore` — the paper's simulated store
``file``       :class:`FileStableStore` — one CRC-framed file per
               object, atomic renames
``logstore``   :class:`LogStructuredStableStore` — append-only
               segments; the log *is* the database, compaction
               reclaims dead bytes
=============  =======================================================

Every backend has a fault-injecting variant (built by passing a
:class:`FaultModel` to :func:`make_store`); the shared choreography
lives in :mod:`repro.storage.faultwrap`.

All I/O is accounted in :class:`~repro.storage.stats.IOStats` so the
benchmark harness can regenerate the paper's cost comparisons exactly.
"""

from repro.storage.stats import IOStats
from repro.storage.stable_store import StableStore, StoredVersion
from repro.storage.atomic import (
    AtomicFlushMechanism,
    RawMultiWrite,
    ShadowInstall,
    FlushTransaction,
    LogStructuredInstall,
)
from repro.storage.backup import FuzzyBackup
from repro.storage.faults import (
    FaultCrash,
    FaultKind,
    FaultModel,
    FaultSpec,
    FuzzRates,
)
from repro.storage.file_store import FileStableStore
from repro.storage.logstore import LogStructuredStableStore
from repro.storage.faultwrap import (
    FaultyFileStore,
    FaultyLogStructuredStore,
    FaultyStore,
)
from repro.storage.registry import (
    DEFAULT_BACKEND,
    StoreBackend,
    make_store,
    recommended_cache_config,
    register_store_backend,
    resolve_backend,
    store_backends,
)

__all__ = [
    "IOStats",
    "StableStore",
    "StoredVersion",
    "AtomicFlushMechanism",
    "RawMultiWrite",
    "ShadowInstall",
    "FlushTransaction",
    "LogStructuredInstall",
    "FuzzyBackup",
    "FaultCrash",
    "FaultKind",
    "FaultModel",
    "FaultSpec",
    "FaultyStore",
    "FaultyFileStore",
    "FaultyLogStructuredStore",
    "FuzzRates",
    "FileStableStore",
    "LogStructuredStableStore",
    "DEFAULT_BACKEND",
    "StoreBackend",
    "make_store",
    "recommended_cache_config",
    "register_store_backend",
    "resolve_backend",
    "store_backends",
]
