"""Simulated stable storage.

The stable store plays the role of the disk-resident database in the
paper: it survives crashes, it is updated by *flushing* cached objects,
and multi-object flushes are atomic only when performed through an
atomicity mechanism (Section 4 discusses two traditional ones — shadow
paging and flush transactions — which are implemented here as the
baselines that cache-manager identity writes are compared against).

All I/O is accounted in :class:`~repro.storage.stats.IOStats` so the
benchmark harness can regenerate the paper's cost comparisons exactly.
"""

from repro.storage.stats import IOStats
from repro.storage.stable_store import StableStore, StoredVersion
from repro.storage.atomic import (
    AtomicFlushMechanism,
    RawMultiWrite,
    ShadowInstall,
    FlushTransaction,
)
from repro.storage.backup import FuzzyBackup
from repro.storage.faults import (
    FaultCrash,
    FaultKind,
    FaultModel,
    FaultSpec,
    FaultyStore,
    FuzzRates,
)

__all__ = [
    "IOStats",
    "StableStore",
    "StoredVersion",
    "AtomicFlushMechanism",
    "RawMultiWrite",
    "ShadowInstall",
    "FlushTransaction",
    "FuzzyBackup",
    "FaultCrash",
    "FaultKind",
    "FaultModel",
    "FaultSpec",
    "FaultyStore",
    "FuzzRates",
]
