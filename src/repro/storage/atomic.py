"""Atomic multi-object flush mechanisms (Section 4, "Atomic Flush").

When a write-graph node carries several objects in its flush set, those
objects must reach the stable store atomically.  The paper examines two
traditional mechanisms and then argues that cache-manager identity
writes beat both:

* **Shadows** (System R): write every object to a shadow location, then
  atomically "swing a pointer" with one device write.  Atomic, but every
  object moves on every write, destroying sequential placement.
* **Flush transactions**: write the values of all objects to the log,
  force the log to commit, then overwrite the objects in place.  Atomic
  across crashes because recovery re-applies the committed transaction,
  but each object is written twice and the objects must be frozen for
  the duration — a quiesce.

``RawMultiWrite`` is the strawman that uses no mechanism; a crash in the
middle of it tears the flush set, which experiment E7 demonstrates.

The identity-write alternative is not implemented here because it is not
a storage mechanism at all: the cache manager injects ordinary logged
operations that shrink flush sets to singletons (see
:mod:`repro.cache.cache_manager`), which is precisely the paper's point.
"""

from __future__ import annotations

import abc
from typing import Mapping, Protocol

from repro.common.identifiers import ObjectId
from repro.storage.stable_store import StableStore, StoredVersion


class FlushTransactionLog(Protocol):
    """The slice of the log manager the flush-transaction mechanism needs."""

    def append_flush_transaction(
        self, versions: Mapping[ObjectId, StoredVersion]
    ) -> int:
        """Log the object values and a commit record; return the commit lSI."""
        ...

    def force(self) -> None:
        """Force the volatile log buffer to the stable log."""
        ...


class AtomicFlushMechanism(abc.ABC):
    """Strategy interface for writing a multi-object flush set."""

    #: Short name used in benchmark tables.
    name: str = "abstract"

    #: Whether a crash can tear a multi-object flush performed through
    #: this mechanism.  Only the raw strawman is tearable.
    tearable: bool = False

    @abc.abstractmethod
    def flush(
        self,
        store: StableStore,
        versions: Mapping[ObjectId, StoredVersion],
        log: FlushTransactionLog,
    ) -> None:
        """Write ``versions`` to ``store`` as one atomic unit."""

    def flush_one(
        self, store: StableStore, obj: ObjectId, version: StoredVersion
    ) -> None:
        """Write a single object; trivially atomic for every mechanism."""
        store.write(obj, version.value, version.vsi)


class RawMultiWrite(AtomicFlushMechanism):
    """No atomicity: write the objects one after another.

    Exists to demonstrate the failure mode the paper's machinery
    prevents.  A crash between the individual writes leaves a torn flush
    set and an unexplainable stable state.
    """

    name = "raw"
    tearable = True

    def flush(
        self,
        store: StableStore,
        versions: Mapping[ObjectId, StoredVersion],
        log: FlushTransactionLog,
    ) -> None:
        store.stats.atomic_flushes += 1
        store.write_many(versions, atomic=False)


class ShadowInstall(AtomicFlushMechanism):
    """Shadow paging: write shadows, then swing a pointer atomically."""

    name = "shadow"

    def flush(
        self,
        store: StableStore,
        versions: Mapping[ObjectId, StoredVersion],
        log: FlushTransactionLog,
    ) -> None:
        store.stats.atomic_flushes += 1
        # Shadow copies: one device write per object, to fresh locations.
        store.stats.shadow_writes += len(versions)
        # The pointer swing installs all shadows with one atomic write;
        # the logical placement itself is not a further data transfer.
        store.stats.pointer_swings += 1
        store.write_many(versions, atomic=True, count=False)


class FlushTransaction(AtomicFlushMechanism):
    """Log-then-overwrite flush transaction.

    The object values go to the log, the log is forced to commit, and
    only then are the objects overwritten in place.  The in-place writes
    are *not* atomic — if a crash interrupts them, recovery finds the
    committed flush-transaction record on the stable log and re-applies
    it (see the analysis pass in :mod:`repro.core.recovery`), which is
    how real systems make this mechanism crash-safe.

    The objects must be frozen from the moment their values are logged
    until the in-place writes finish; we account that as one quiesce
    event per flush, matching the paper's System R discussion.
    """

    name = "flush-txn"

    def flush(
        self,
        store: StableStore,
        versions: Mapping[ObjectId, StoredVersion],
        log: FlushTransactionLog,
    ) -> None:
        store.stats.atomic_flushes += 1
        store.stats.quiesce_events += 1
        # Every object's value is transferred twice: once into the log,
        # then again in place — the double write the C3 comparison
        # charges this mechanism for.
        store.stats.flush_double_writes += len(versions)
        log.append_flush_transaction(versions)
        log.force()
        # In-place overwrites; torn writes here are repaired by recovery
        # replaying the committed flush transaction.
        store.write_many(versions, atomic=False)


class LogStructuredInstall(AtomicFlushMechanism):
    """Atomicity for free on a log-structured store.

    When the store is itself an append-only log
    (:class:`~repro.storage.logstore.LogStructuredStableStore`), a
    multi-object flush lands as **one batch frame under one CRC**: the
    whole set becomes readable exactly when the frame's checksum
    verifies, so a crash anywhere inside the append leaves a torn frame
    that the rebuild scan discards in full.  No shadow copies, no
    pointer swing, no value double-write, no quiesce — the C3 costs the
    paper charges the traditional mechanisms for simply have no place
    to occur.

    Usable only with a store whose ``write_many(atomic=True)`` is
    genuinely a single-device-write install (the log-structured
    backend); pairing it with an in-place store would silently assert
    atomicity the device does not provide.
    """

    name = "log-structured"

    def flush(
        self,
        store: StableStore,
        versions: Mapping[ObjectId, StoredVersion],
        log: FlushTransactionLog,
    ) -> None:
        store.stats.atomic_flushes += 1
        store.write_many(versions, atomic=True)
