"""Shared on-disk framing for the durable storage backends.

Every durable backend in :mod:`repro.storage` writes checksummed frames
— ``magic || [length][crc32] || pickle bytes`` — mirroring the WAL's
frame format: :class:`~repro.storage.file_store.FileStableStore` frames
one object version per file, and
:class:`~repro.storage.logstore.LogStructuredStableStore` appends
record frames to segment files.  The framing is the detection layer: a
torn or bit-rotted frame fails its length/checksum test instead of
silently yielding garbage, which is what lets recovery quarantine
damage and replay it from the log.

The module also provides the **restore-pending marker** shared by the
durable backends (:class:`DurableMediaMarker`): the redo-scan start a
media restore committed to, persisted as a marker file so it survives a
cold process restart — a recovery that crashed between its media
restore and the completion of the widened redo must re-widen on the
next attempt rather than narrowly replaying over the stale restored
version (see ``StableStore.media_redo_pending``).
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import zlib
from typing import Any, Optional, Tuple

from repro.common.errors import CorruptObjectError
from repro.common.identifiers import NULL_SI, StateId
from repro.common.retry import retry_transient

MAGIC = b"ROBJ1\n"
HEADER = struct.Struct("<II")  # payload length, crc32

MARKER_NAME = "media_redo_pending.marker"
#: Value field stored in the marker frame (the vSI slot carries the
#: pending redo-start StateId).
MARKER_TAG = "media-redo-pending"


def fsync_dir(path: str) -> None:
    """fsync a directory so renames/unlinks inside it are durable.

    Platforms that cannot open directories for fsync (some filesystems
    refuse) are tolerated: the rename itself still happened, and the
    simulator's correctness does not depend on the host's metadata
    journaling — this is the real-deployment hardening.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def frame(value: Any, vsi: StateId) -> bytes:
    """Serialize one ``(value, vSI)`` pair as a checksummed frame."""
    payload = pickle.dumps((value, vsi))
    return MAGIC + HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def unframe(data: bytes, origin: str) -> Tuple[Any, StateId]:
    """Parse a frame, raising :class:`CorruptObjectError` on any damage."""
    if not data.startswith(MAGIC):
        raise CorruptObjectError(f"{origin}: bad magic (torn or foreign file)")
    body = data[len(MAGIC) :]
    if len(body) < HEADER.size:
        raise CorruptObjectError(f"{origin}: truncated header")
    length, checksum = HEADER.unpack_from(body, 0)
    payload = body[HEADER.size : HEADER.size + length]
    if len(payload) < length:
        raise CorruptObjectError(f"{origin}: truncated payload (torn write)")
    if zlib.crc32(payload) != checksum:
        raise CorruptObjectError(f"{origin}: checksum mismatch (bit rot)")
    try:
        value, vsi = pickle.loads(payload)
    except Exception as exc:
        raise CorruptObjectError(f"{origin}: undecodable payload: {exc}")
    return value, vsi


def write_file_durably(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp-file + fsync + atomic rename.

    The classic dance: either the full new contents land under ``path``
    or the previous contents survive — never a torn mixture.  The
    containing directory is fsynced so the rename itself is durable.
    """
    directory = os.path.dirname(path)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        fsync_dir(directory)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


class DurableMediaMarker:
    """Mixin: a ``media_redo_pending`` marker persisted under ``root``.

    Durable backends mix this over :class:`~repro.storage.stable_store.
    StableStore` so the restore-pending marker survives cold process
    restarts.  The host class must call :meth:`_init_marker` once its
    ``root`` directory exists and its ``stats`` ledger is assigned.
    """

    def _init_marker(self, root: str) -> None:
        self._marker_path = os.path.join(root, MARKER_NAME)
        self._marker_root = root
        self._media_pending: Optional[StateId] = self._load_marker()

    @property
    def media_redo_pending(self) -> Optional[StateId]:
        """The persisted restore-pending marker (see the base class).

        Unlike the in-memory store's attribute, this survives a cold
        process restart: a recovery that crashed between its media
        restore and the completion of the widened redo leaves the
        marker file on disk, so the next process's recovery re-widens
        instead of narrowly replaying over the stale restored version.
        """
        return self._media_pending

    @media_redo_pending.setter
    def media_redo_pending(self, value: Optional[StateId]) -> None:
        if value == self._media_pending:
            return
        self._media_pending = value
        if value is None:
            retry_transient(
                self._unlink_marker,
                stats=self.stats,
                what="clear media-redo marker",
            )
        else:
            retry_transient(
                lambda: self._write_marker(value),
                stats=self.stats,
                what="write media-redo marker",
            )

    def _load_marker(self) -> Optional[StateId]:
        if not os.path.exists(self._marker_path):
            return None
        with open(self._marker_path, "rb") as handle:
            data = handle.read()
        try:
            tag, pending = unframe(data, "media-redo-pending marker")
        except CorruptObjectError:
            # A torn marker write still proves a media restore was in
            # flight; widen maximally (replay the whole retained log) —
            # the safe direction.
            self.stats.checksum_failures += 1
            return NULL_SI + 1
        if tag != MARKER_TAG or not isinstance(pending, int):
            return NULL_SI + 1
        return pending

    def _write_marker(self, pending: StateId) -> None:
        write_file_durably(self._marker_path, frame(MARKER_TAG, pending))

    def _unlink_marker(self) -> None:
        if os.path.exists(self._marker_path):
            os.unlink(self._marker_path)
            fsync_dir(self._marker_root)
