"""Fuzzy backups for media recovery (Section 1, ref [10]).

The paper notes that a backup must itself remain recoverable: because a
fuzzy backup copies objects asynchronously with normal execution, the
copy can violate the flush order that the cache manager honoured for the
stable store.  The companion paper [10] solves this in full; here we
provide the substrate hook — an incremental object-at-a-time backup with
a recorded *backup-start lSI* — so media recovery can be exercised:
restore the backup, then run redo recovery over the log suffix from the
backup-start point.

Replaying the whole suffix "repeats history" onto the backup image and
repairs any flush-order violations the fuzzy copy introduced, provided
the log has not been truncated past the backup-start lSI.  That proviso
is enforced by the log manager's truncation check.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.common.identifiers import ObjectId, StateId
from repro.storage.stable_store import StableStore, StoredVersion


class FuzzyBackup:
    """An object-at-a-time backup of a :class:`StableStore`.

    Usage::

        backup = FuzzyBackup(start_lsi=log.stable_end_lsi())
        for obj in store.object_ids():      # interleave with execution
            backup.copy_object(store, obj)
        backup.finish()

    The copy runs while normal execution continues, so the image is
    fuzzy: different objects reflect different moments.  ``start_lsi``
    records where the redo scan must begin when the backup is restored.
    """

    def __init__(self, start_lsi: StateId) -> None:
        self.start_lsi = start_lsi
        self._image: Dict[ObjectId, StoredVersion] = {}
        self._finished = False

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has sealed the image."""
        return self._finished

    def copy_object(self, store: StableStore, obj: ObjectId) -> None:
        """Copy one object's current stable version into the backup."""
        if self._finished:
            raise ValueError("backup already finished")
        if store.contains(obj):
            self._image[obj] = store.peek(obj)

    def copy_all(
        self, store: StableStore, objects: Optional[Iterable[ObjectId]] = None
    ) -> None:
        """Copy ``objects`` (default: everything currently stored)."""
        ids: List[ObjectId] = (
            list(objects) if objects is not None else store.object_ids()
        )
        for obj in ids:
            self.copy_object(store, obj)

    def finish(self) -> None:
        """Seal the backup image."""
        self._finished = True

    def restore_into(self, store: StableStore) -> None:
        """Replace the store's contents with the backup image.

        The caller must follow this with a redo recovery pass starting
        at ``start_lsi`` to bring the image to a recoverable state.
        """
        if not self._finished:
            raise ValueError("cannot restore an unfinished backup")
        store.restore_versions(self._image)

    def restore_object(self, store: StableStore, obj: ObjectId) -> None:
        """Restore one object from the image (absent in image = remove).

        This is the quarantine fallback: a stored version that failed
        its checksum is replaced by the (older) backed-up version, and a
        media-style redo pass from ``start_lsi`` repeats history onto
        it.  As with a full restore, replaying the suffix is what makes
        the result correct.
        """
        if not self._finished:
            raise ValueError("cannot restore from an unfinished backup")
        store.restore_version(obj, self._image.get(obj))

    def __len__(self) -> int:
        return len(self._image)
