"""The stable store: the crash-surviving object database.

The store maps :class:`~repro.common.identifiers.ObjectId` to a
:class:`StoredVersion` — the object's value together with its vSI, the
state identifier of the last operation whose effect the stored version
reflects.  Storing the vSI with the object is what makes SI-based REDO
tests possible (Section 5: "One SI, denoted the vSI, is stored with each
object").

Crash semantics
---------------
A crash never damages the store itself; whatever versions were written
before the crash remain.  What a crash *can* do is interrupt a
multi-object write issued without an atomicity mechanism, leaving only a
prefix of the set written — a torn flush.  The store supports that
through :meth:`StableStore.write_many` with ``atomic=False`` plus a
crash hook, which experiment E7 uses to demonstrate why write graphs and
atomic-flush machinery exist at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.common.identifiers import NULL_SI, ObjectId, StateId
from repro.storage.stats import IOStats


@dataclass(frozen=True)
class StoredVersion:
    """One object version on stable storage: a value and its vSI."""

    value: Any
    vsi: StateId


class StableStore:
    """Crash-surviving map from object id to :class:`StoredVersion`.

    Parameters
    ----------
    stats:
        Shared I/O ledger; every read and write is counted there.
    """

    #: Restore-pending marker: the redo-scan start a media restore
    #: committed to, kept on the *stable* side so it survives the
    #: crash of the recovery that performed the restore.  A
    #: backup-restored version is old; until one recovery completes
    #: its widened redo over it, every recovery attempt must widen
    #: again — otherwise a narrow restart would read the stale
    #: version and derive garbage.  Set by the quarantine scrub,
    #: cleared when recovery adopts its outcome.  A class-level default
    #: (rather than an ``__init__`` assignment) so file-backed
    #: subclasses can shadow it with a property that persists the
    #: marker on disk for true cold restarts.
    media_redo_pending: Optional[StateId] = None

    def __init__(self, stats: Optional[IOStats] = None) -> None:
        self.stats = stats if stats is not None else IOStats()
        self._versions: Dict[ObjectId, StoredVersion] = {}
        #: Called between the individual writes of a non-atomic
        #: multi-object write; a crash-injection harness raises from
        #: here to tear the flush.
        self.mid_write_hook: Optional[Callable[[ObjectId], None]] = None

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def contains(self, obj: ObjectId) -> bool:
        """Return True if the store holds a version of ``obj``."""
        return obj in self._versions

    def read(self, obj: ObjectId) -> StoredVersion:
        """Read ``obj`` from the store, counting one device read.

        Objects never written read as an absent value with ``NULL_SI``;
        recoverable domains treat "absent" as a legal initial state (a
        file that does not exist yet, an unformatted page).
        """
        self.stats.object_reads += 1
        return self._versions.get(obj, StoredVersion(None, NULL_SI))

    def peek(self, obj: ObjectId) -> StoredVersion:
        """Read without cost accounting (used by verifiers, not systems)."""
        return self._versions.get(obj, StoredVersion(None, NULL_SI))

    def vsi_of(self, obj: ObjectId) -> StateId:
        """Return the stored vSI of ``obj`` (``NULL_SI`` if absent)."""
        return self._versions.get(obj, StoredVersion(None, NULL_SI)).vsi

    def object_ids(self) -> List[ObjectId]:
        """All object ids currently present in the store."""
        return list(self._versions)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def write(self, obj: ObjectId, value: Any, vsi: StateId) -> None:
        """Write one object version in place (one device write)."""
        self.stats.object_writes += 1
        self._versions[obj] = StoredVersion(value, vsi)

    def write_many(
        self,
        versions: Mapping[ObjectId, StoredVersion],
        atomic: bool,
        count: bool = True,
    ) -> None:
        """Write several objects.

        With ``atomic=True`` the whole set lands or none of it — the
        caller is asserting it used a real atomicity mechanism (the
        mechanisms in :mod:`repro.storage.atomic` call this).  With
        ``atomic=False`` the writes are issued one at a time and the
        ``mid_write_hook`` runs between them, so a crash injected there
        tears the set.

        ``count=False`` suppresses per-object I/O accounting for
        mechanisms that already charged the data transfer elsewhere
        (shadow paging counts shadow writes + the pointer swing; the
        logical placement is free).
        """
        if atomic:
            for obj, version in versions.items():
                if count:
                    self.stats.object_writes += 1
                self._versions[obj] = version
            return
        for obj, version in versions.items():
            if self.mid_write_hook is not None:
                self.mid_write_hook(obj)
            if count:
                self.stats.object_writes += 1
            self._versions[obj] = version

    def delete(self, obj: ObjectId) -> None:
        """Remove an object from the store (a reclaimed file or page)."""
        self._versions.pop(obj, None)

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def scrub(self) -> List[ObjectId]:
        """Verify stored versions; return the objects that failed.

        The in-memory base store has no independent integrity record, so
        nothing can be detected here — subclasses that carry per-object
        checksums (the fault-injecting store, the file store's CRC32
        framing) override this.  Recovery calls it before the redo pass
        so corruption is quarantined rather than replayed over.
        """
        return []

    def quarantine(self, obj: ObjectId) -> None:
        """Take a failed version out of service (no I/O accounting).

        The version is removed so readers see "absent" rather than
        garbage; media-style recovery then reinstates the object from a
        backup image and/or log replay.
        """
        self._versions.pop(obj, None)

    def restore_version(
        self, obj: ObjectId, version: Optional[StoredVersion]
    ) -> None:
        """Media-recovery restore of one object (``None`` removes it)."""
        if version is None:
            self._versions.pop(obj, None)
        else:
            self._versions[obj] = version

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def copy_versions(self) -> Dict[ObjectId, StoredVersion]:
        """Snapshot of all versions (used by fuzzy backup and verifiers)."""
        return dict(self._versions)

    def restore_versions(
        self, versions: Mapping[ObjectId, StoredVersion]
    ) -> None:
        """Replace the entire contents (media recovery restore path)."""
        self._versions = dict(versions)

    def items(self) -> Iterable[Tuple[ObjectId, StoredVersion]]:
        """Iterate over ``(object id, stored version)`` pairs."""
        return self._versions.items()

    def __len__(self) -> int:
        return len(self._versions)
