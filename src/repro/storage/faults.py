"""Faulty-storage simulation: seeded fault schedules over numbered I/O.

The crash harness (:mod:`repro.kernel.crash`) models *clean* crashes:
volatile state vanishes at an op or flush boundary and stable storage is
pristine.  Real storage misbehaves in richer ways — a write fails once
and then succeeds, a write tears inside one object, a page bit-rots
silently, an fsync fails or (worse) lies — and recovery has to stay
correct in exactly that regime.  This module provides the adversary:

* every device touchpoint (object read/write/delete, log force, file
  persist) is a **numbered I/O point** — the store and log wrappers call
  :meth:`FaultModel.fire` at each one;
* a :class:`FaultModel` decides, from an explicit schedule (sweep mode)
  or a seeded per-point draw (fuzz mode), whether that point faults and
  how;
* points are numbered within a **phase family**: the workload's own I/O
  is the ``"forward"`` phase, and the I/O recovery performs (redo-pass
  reads, flush-transaction re-applies) is the ``"recovery"`` phase —
  :meth:`FaultModel.enter_phase` switches families, so a schedule can
  target "the k-th I/O *of recovery itself*" independently of how the
  forward run died.  Recovery-phase numbering is continuous across
  restarted recovery attempts: a spec at recovery point *k* fires in
  whichever attempt reaches it, exactly once;
* :class:`~repro.storage.faultwrap.FaultyStore` wraps the in-memory
  stable store with the model, damaging stored versions for
  torn/corrupt faults and verifying a per-object CRC32 on every read so
  the damage is *detected*, never silently returned.  It lives in
  :mod:`repro.storage.faultwrap` with the other fault-injecting
  backends (one store-agnostic choreography for all of them) and is
  re-exported here for compatibility.

Fault vocabulary (the classic storage-fault taxonomy):

=============  =====================================================
TRANSIENT      the I/O raises :class:`TransientStorageError`; a retry
               (bounded, see :mod:`repro.common.retry`) succeeds.
TORN           a write lands partially — the stored bytes are a
               damaged variant of the intended value.
CORRUPT        silent bit rot: an already-stored version is damaged
               after the fact, checksum left stale.
FSYNC_FAIL     a log force raises transiently (alias of TRANSIENT at
               log points; named for schedules that target the WAL).
FSYNC_LIE      the force reports success but the records are not
               durable — a subsequent crash loses them.
SLOW           the I/O succeeds after a modelled delay (counted, not
               slept).
CRASH          the machine dies at the I/O point, cleanly: no damage
               lands, :class:`FaultCrash` is raised.  The kind that
               lets a schedule say "crash recovery at its 3rd read".
=============  =====================================================

Determinism is the point: a schedule is fully described by either its
spec list or its ``(seed, rates)`` pair, so every failing torture run is
reproducible from one integer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.common.errors import (
    SimulatedCrash,
    TransientStorageError,
)
from repro.common.rng import make_rng
from repro.storage.stats import IOStats


class FaultCrash(SimulatedCrash):
    """Raised when a fault spec demands a crash at its I/O point."""


class FaultKind(enum.Enum):
    """The storage misbehaviours the model can inject."""

    TRANSIENT = "io-error"
    TORN = "torn"
    CORRUPT = "corrupt"
    FSYNC_FAIL = "fsync-fail"
    FSYNC_LIE = "fsync-lie"
    SLOW = "slow"
    CRASH = "crash"


#: Kinds that raise a retryable error instead of damaging state.
_TRANSIENT_KINDS = frozenset({FaultKind.TRANSIENT, FaultKind.FSYNC_FAIL})


#: The phase family a spec (or a model) numbers its points in.
FORWARD_PHASE = "forward"
RECOVERY_PHASE = "recovery"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what happens at which numbered I/O point."""

    point: int
    kind: FaultKind
    #: For transient kinds: how many consecutive attempts fail before
    #: the I/O succeeds.  Retry budgets above this recover transparently.
    times: int = 1
    #: Raise :class:`FaultCrash` right after the damage lands — the most
    #: adversarial moment to lose the machine.
    crash: bool = False
    #: Which point family the spec's ``point`` counts in: ``"forward"``
    #: (the workload's own I/O, the default) or ``"recovery"`` (the I/O
    #: performed by recovery itself).
    phase: str = FORWARD_PHASE

    def describe(self) -> str:
        """Compact schedule notation, e.g. ``torn@17!`` (``!`` = crash);
        recovery-phase specs carry an ``r`` prefix (``crash@r3``)."""
        tail = f"x{self.times}" if self.times != 1 else ""
        bang = "!" if self.crash else ""
        prefix = "r" if self.phase == RECOVERY_PHASE else ""
        return f"{self.kind.value}@{prefix}{self.point}{tail}{bang}"


@dataclass
class FuzzRates:
    """Per-I/O-point fault probabilities for fuzz mode."""

    transient: float = 0.02
    torn: float = 0.01
    corrupt: float = 0.01
    fsync_lie: float = 0.0
    #: Probability of a clean process crash at the point (no damage).
    #: Zero by default so forward-only campaigns are unchanged; the
    #: recovery-resilience campaigns raise it to crash mid-recovery.
    crash: float = 0.0
    #: Probability that a damaging (torn/corrupt) fault also crashes.
    crash_given_fault: float = 0.5
    #: Max consecutive failures for one transient fault (kept under the
    #: retry budget so transients recover transparently).
    max_times: int = 2


class FaultModel:
    """Decides, per numbered I/O point, whether and how to fault.

    Two construction modes:

    * ``FaultModel(specs=[FaultSpec(...)])`` — explicit schedule, used
      by the sweep harness (one fault at one known point);
    * ``FaultModel.fuzz(seed, rates)`` — seeded independent draws at
      every point, used by the fuzz harness.  The same seed always
      yields the same schedule.

    A model with neither specs nor rates is a pure **counting** model:
    it numbers the I/O points of a workload without injecting anything,
    which is how the sweep harness learns the fault-point space.

    The model is consulted through :meth:`fire`; ``armed`` gates it so a
    harness can switch faults off during recovery and verification.
    """

    def __init__(
        self,
        specs: Iterable[FaultSpec] = (),
        *,
        armed: bool = True,
    ) -> None:
        self._specs: Dict[Tuple[str, int], FaultSpec] = {}
        for spec in specs:
            key = (spec.phase, spec.point)
            if key in self._specs:
                raise ValueError(
                    f"duplicate fault point {spec.point} in phase "
                    f"{spec.phase!r}"
                )
            self._specs[key] = spec
        self._rng = None
        self._rates: Optional[FuzzRates] = None
        self.armed = armed
        #: Current phase family; fire() numbers points within it.
        self.phase = FORWARD_PHASE
        #: Per-phase next point number to be consumed.
        self._next_points: Dict[str, int] = {}
        #: Remaining consecutive failures of an in-flight transient
        #: fault; retries of the same I/O do not consume new points.
        self._transient_remaining = 0
        #: Every fault actually applied, in order — the run's fault
        #: trace, used for reproducibility checks and failure reports.
        self.fired: List[FaultSpec] = []

    @property
    def next_point(self) -> int:
        """Next point number to be consumed in the *current* phase."""
        return self._next_points.get(self.phase, 0)

    def points_in(self, phase: str) -> int:
        """Points consumed so far in ``phase`` (its next point number)."""
        return self._next_points.get(phase, 0)

    def enter_phase(self, phase: str) -> None:
        """Switch the point family subsequent fires are numbered in.

        The family's counter is *not* reset: re-entering a phase resumes
        its numbering, which is what makes nested-recovery schedules
        well defined (a restarted recovery continues the recovery-phase
        numbering rather than re-firing already-consumed specs).
        """
        self.phase = phase

    @classmethod
    def fuzz(cls, seed: int, rates: Optional[FuzzRates] = None) -> "FaultModel":
        """A model drawing faults independently at every point."""
        model = cls()
        model._rng = make_rng(seed)
        model._rates = rates if rates is not None else FuzzRates()
        return model

    # ------------------------------------------------------------------
    # the consultation protocol
    # ------------------------------------------------------------------
    def fire(
        self,
        site: str,
        detail: str = "",
        *,
        can: FrozenSet[FaultKind] = frozenset(),
        stats: Optional[IOStats] = None,
    ) -> Optional[FaultSpec]:
        """Consume one I/O point; fault it per the schedule.

        ``can`` lists the damage kinds meaningful at this site (a read
        cannot tear, an in-memory force cannot bit-rot); transient kinds
        are meaningful everywhere and are raised from here as
        :class:`TransientStorageError`.  Damage kinds in ``can`` are
        returned for the caller to apply; scheduled kinds *not* in
        ``can`` are benign no-ops (the sweep grid includes them so every
        point × kind cell runs).

        Retries of a failed I/O re-enter here while a transient fault is
        still burning down its ``times`` budget; those attempts do not
        consume new point numbers, so fault-point numbering is identical
        between a counting run and any faulted run.
        """
        if not self.armed:
            return None
        if self._transient_remaining > 0:
            self._transient_remaining -= 1
            if stats is not None:
                stats.faults_injected += 1
            raise TransientStorageError(
                f"injected transient fault (retry) at {site} {detail}"
            )
        point = self._next_points.get(self.phase, 0)
        self._next_points[self.phase] = point + 1
        spec = self._decide(point, site)
        if spec is None:
            return None
        if spec.kind is FaultKind.CRASH:
            # A clean machine death at this I/O point: nothing lands,
            # nothing is damaged — the process is simply gone.
            self.fired.append(spec)
            if stats is not None:
                stats.faults_injected += 1
            raise FaultCrash(
                f"injected {spec.describe()} at {site} {detail}"
            )
        if spec.kind in _TRANSIENT_KINDS:
            self._transient_remaining = spec.times - 1
            self.fired.append(spec)
            if stats is not None:
                stats.faults_injected += 1
            raise TransientStorageError(
                f"injected {spec.describe()} at {site} {detail}"
            )
        if spec.kind is FaultKind.SLOW:
            # Slow I/O is accounted, not slept: the simulator has no
            # clock, and the interesting property is that slowness is
            # *harmless* to correctness.
            self.fired.append(spec)
            if stats is not None:
                stats.faults_injected += 1
                stats.bump("slow_ios")
            return None
        if spec.kind not in can:
            return None
        self.fired.append(spec)
        if stats is not None:
            stats.faults_injected += 1
        return spec

    def _decide(self, point: int, site: str) -> Optional[FaultSpec]:
        if self._rates is not None:
            return self._draw(point)
        return self._specs.get((self.phase, point))

    def _draw(self, point: int) -> Optional[FaultSpec]:
        rates = self._rates
        rng = self._rng
        roll = rng.random()
        edge = rates.transient
        if roll < edge:
            return FaultSpec(
                point,
                FaultKind.TRANSIENT,
                times=rng.randint(1, max(1, rates.max_times)),
                phase=self.phase,
            )
        edge += rates.torn
        if roll < edge:
            crash = rng.random() < rates.crash_given_fault
            return FaultSpec(
                point, FaultKind.TORN, crash=crash, phase=self.phase
            )
        edge += rates.corrupt
        if roll < edge:
            crash = rng.random() < rates.crash_given_fault
            return FaultSpec(
                point, FaultKind.CORRUPT, crash=crash, phase=self.phase
            )
        edge += rates.fsync_lie
        if roll < edge:
            return FaultSpec(point, FaultKind.FSYNC_LIE, phase=self.phase)
        edge += rates.crash
        if roll < edge:
            return FaultSpec(point, FaultKind.CRASH, phase=self.phase)
        return None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def trace(self) -> List[str]:
        """The applied faults in schedule notation."""
        return [spec.describe() for spec in self.fired]

    @staticmethod
    def crash_if_demanded(spec: Optional[FaultSpec]) -> None:
        """Raise :class:`FaultCrash` when the (applied) spec asks for it."""
        if spec is not None and spec.crash:
            raise FaultCrash(f"crash demanded by {spec.describe()}")




# ----------------------------------------------------------------------
# compatibility: the fault-injecting stores moved to
# repro.storage.faultwrap (one store-agnostic wrapper for every
# backend).  Lazy re-export avoids a module cycle: faultwrap imports
# the model machinery from here.
# ----------------------------------------------------------------------
_MOVED = {
    "FaultyStore": "FaultyStore",
    "_checksum": "version_checksum",
    "_damaged_value": "damaged_value",
}


def __getattr__(name: str):
    if name in _MOVED:
        from repro.storage import faultwrap

        return getattr(faultwrap, _MOVED[name])
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
