"""Faulty-storage simulation: seeded fault schedules over numbered I/O.

The crash harness (:mod:`repro.kernel.crash`) models *clean* crashes:
volatile state vanishes at an op or flush boundary and stable storage is
pristine.  Real storage misbehaves in richer ways — a write fails once
and then succeeds, a write tears inside one object, a page bit-rots
silently, an fsync fails or (worse) lies — and recovery has to stay
correct in exactly that regime.  This module provides the adversary:

* every device touchpoint (object read/write/delete, log force, file
  persist) is a **numbered I/O point** — the store and log wrappers call
  :meth:`FaultModel.fire` at each one;
* a :class:`FaultModel` decides, from an explicit schedule (sweep mode)
  or a seeded per-point draw (fuzz mode), whether that point faults and
  how;
* points are numbered within a **phase family**: the workload's own I/O
  is the ``"forward"`` phase, and the I/O recovery performs (redo-pass
  reads, flush-transaction re-applies) is the ``"recovery"`` phase —
  :meth:`FaultModel.enter_phase` switches families, so a schedule can
  target "the k-th I/O *of recovery itself*" independently of how the
  forward run died.  Recovery-phase numbering is continuous across
  restarted recovery attempts: a spec at recovery point *k* fires in
  whichever attempt reaches it, exactly once;
* :class:`FaultyStore` wraps the in-memory stable store with the model,
  damaging stored versions for torn/corrupt faults and verifying a
  per-object CRC32 on every read so the damage is *detected*, never
  silently returned.

Fault vocabulary (the classic storage-fault taxonomy):

=============  =====================================================
TRANSIENT      the I/O raises :class:`TransientStorageError`; a retry
               (bounded, see :mod:`repro.common.retry`) succeeds.
TORN           a write lands partially — the stored bytes are a
               damaged variant of the intended value.
CORRUPT        silent bit rot: an already-stored version is damaged
               after the fact, checksum left stale.
FSYNC_FAIL     a log force raises transiently (alias of TRANSIENT at
               log points; named for schedules that target the WAL).
FSYNC_LIE      the force reports success but the records are not
               durable — a subsequent crash loses them.
SLOW           the I/O succeeds after a modelled delay (counted, not
               slept).
CRASH          the machine dies at the I/O point, cleanly: no damage
               lands, :class:`FaultCrash` is raised.  The kind that
               lets a schedule say "crash recovery at its 3rd read".
=============  =====================================================

Determinism is the point: a schedule is fully described by either its
spec list or its ``(seed, rates)`` pair, so every failing torture run is
reproducible from one integer.
"""

from __future__ import annotations

import enum
import pickle
import zlib
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.common.errors import (
    CorruptObjectError,
    SimulatedCrash,
    TransientStorageError,
)
from repro.common.identifiers import ObjectId, StateId
from repro.common.rng import make_rng
from repro.storage.stable_store import StableStore, StoredVersion
from repro.storage.stats import IOStats


class FaultCrash(SimulatedCrash):
    """Raised when a fault spec demands a crash at its I/O point."""


class FaultKind(enum.Enum):
    """The storage misbehaviours the model can inject."""

    TRANSIENT = "io-error"
    TORN = "torn"
    CORRUPT = "corrupt"
    FSYNC_FAIL = "fsync-fail"
    FSYNC_LIE = "fsync-lie"
    SLOW = "slow"
    CRASH = "crash"


#: Kinds that raise a retryable error instead of damaging state.
_TRANSIENT_KINDS = frozenset({FaultKind.TRANSIENT, FaultKind.FSYNC_FAIL})


#: The phase family a spec (or a model) numbers its points in.
FORWARD_PHASE = "forward"
RECOVERY_PHASE = "recovery"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what happens at which numbered I/O point."""

    point: int
    kind: FaultKind
    #: For transient kinds: how many consecutive attempts fail before
    #: the I/O succeeds.  Retry budgets above this recover transparently.
    times: int = 1
    #: Raise :class:`FaultCrash` right after the damage lands — the most
    #: adversarial moment to lose the machine.
    crash: bool = False
    #: Which point family the spec's ``point`` counts in: ``"forward"``
    #: (the workload's own I/O, the default) or ``"recovery"`` (the I/O
    #: performed by recovery itself).
    phase: str = FORWARD_PHASE

    def describe(self) -> str:
        """Compact schedule notation, e.g. ``torn@17!`` (``!`` = crash);
        recovery-phase specs carry an ``r`` prefix (``crash@r3``)."""
        tail = f"x{self.times}" if self.times != 1 else ""
        bang = "!" if self.crash else ""
        prefix = "r" if self.phase == RECOVERY_PHASE else ""
        return f"{self.kind.value}@{prefix}{self.point}{tail}{bang}"


@dataclass
class FuzzRates:
    """Per-I/O-point fault probabilities for fuzz mode."""

    transient: float = 0.02
    torn: float = 0.01
    corrupt: float = 0.01
    fsync_lie: float = 0.0
    #: Probability of a clean process crash at the point (no damage).
    #: Zero by default so forward-only campaigns are unchanged; the
    #: recovery-resilience campaigns raise it to crash mid-recovery.
    crash: float = 0.0
    #: Probability that a damaging (torn/corrupt) fault also crashes.
    crash_given_fault: float = 0.5
    #: Max consecutive failures for one transient fault (kept under the
    #: retry budget so transients recover transparently).
    max_times: int = 2


class FaultModel:
    """Decides, per numbered I/O point, whether and how to fault.

    Two construction modes:

    * ``FaultModel(specs=[FaultSpec(...)])`` — explicit schedule, used
      by the sweep harness (one fault at one known point);
    * ``FaultModel.fuzz(seed, rates)`` — seeded independent draws at
      every point, used by the fuzz harness.  The same seed always
      yields the same schedule.

    A model with neither specs nor rates is a pure **counting** model:
    it numbers the I/O points of a workload without injecting anything,
    which is how the sweep harness learns the fault-point space.

    The model is consulted through :meth:`fire`; ``armed`` gates it so a
    harness can switch faults off during recovery and verification.
    """

    def __init__(
        self,
        specs: Iterable[FaultSpec] = (),
        *,
        armed: bool = True,
    ) -> None:
        self._specs: Dict[Tuple[str, int], FaultSpec] = {}
        for spec in specs:
            key = (spec.phase, spec.point)
            if key in self._specs:
                raise ValueError(
                    f"duplicate fault point {spec.point} in phase "
                    f"{spec.phase!r}"
                )
            self._specs[key] = spec
        self._rng = None
        self._rates: Optional[FuzzRates] = None
        self.armed = armed
        #: Current phase family; fire() numbers points within it.
        self.phase = FORWARD_PHASE
        #: Per-phase next point number to be consumed.
        self._next_points: Dict[str, int] = {}
        #: Remaining consecutive failures of an in-flight transient
        #: fault; retries of the same I/O do not consume new points.
        self._transient_remaining = 0
        #: Every fault actually applied, in order — the run's fault
        #: trace, used for reproducibility checks and failure reports.
        self.fired: List[FaultSpec] = []

    @property
    def next_point(self) -> int:
        """Next point number to be consumed in the *current* phase."""
        return self._next_points.get(self.phase, 0)

    def points_in(self, phase: str) -> int:
        """Points consumed so far in ``phase`` (its next point number)."""
        return self._next_points.get(phase, 0)

    def enter_phase(self, phase: str) -> None:
        """Switch the point family subsequent fires are numbered in.

        The family's counter is *not* reset: re-entering a phase resumes
        its numbering, which is what makes nested-recovery schedules
        well defined (a restarted recovery continues the recovery-phase
        numbering rather than re-firing already-consumed specs).
        """
        self.phase = phase

    @classmethod
    def fuzz(cls, seed: int, rates: Optional[FuzzRates] = None) -> "FaultModel":
        """A model drawing faults independently at every point."""
        model = cls()
        model._rng = make_rng(seed)
        model._rates = rates if rates is not None else FuzzRates()
        return model

    # ------------------------------------------------------------------
    # the consultation protocol
    # ------------------------------------------------------------------
    def fire(
        self,
        site: str,
        detail: str = "",
        *,
        can: FrozenSet[FaultKind] = frozenset(),
        stats: Optional[IOStats] = None,
    ) -> Optional[FaultSpec]:
        """Consume one I/O point; fault it per the schedule.

        ``can`` lists the damage kinds meaningful at this site (a read
        cannot tear, an in-memory force cannot bit-rot); transient kinds
        are meaningful everywhere and are raised from here as
        :class:`TransientStorageError`.  Damage kinds in ``can`` are
        returned for the caller to apply; scheduled kinds *not* in
        ``can`` are benign no-ops (the sweep grid includes them so every
        point × kind cell runs).

        Retries of a failed I/O re-enter here while a transient fault is
        still burning down its ``times`` budget; those attempts do not
        consume new point numbers, so fault-point numbering is identical
        between a counting run and any faulted run.
        """
        if not self.armed:
            return None
        if self._transient_remaining > 0:
            self._transient_remaining -= 1
            if stats is not None:
                stats.faults_injected += 1
            raise TransientStorageError(
                f"injected transient fault (retry) at {site} {detail}"
            )
        point = self._next_points.get(self.phase, 0)
        self._next_points[self.phase] = point + 1
        spec = self._decide(point, site)
        if spec is None:
            return None
        if spec.kind is FaultKind.CRASH:
            # A clean machine death at this I/O point: nothing lands,
            # nothing is damaged — the process is simply gone.
            self.fired.append(spec)
            if stats is not None:
                stats.faults_injected += 1
            raise FaultCrash(
                f"injected {spec.describe()} at {site} {detail}"
            )
        if spec.kind in _TRANSIENT_KINDS:
            self._transient_remaining = spec.times - 1
            self.fired.append(spec)
            if stats is not None:
                stats.faults_injected += 1
            raise TransientStorageError(
                f"injected {spec.describe()} at {site} {detail}"
            )
        if spec.kind is FaultKind.SLOW:
            # Slow I/O is accounted, not slept: the simulator has no
            # clock, and the interesting property is that slowness is
            # *harmless* to correctness.
            self.fired.append(spec)
            if stats is not None:
                stats.faults_injected += 1
                stats.bump("slow_ios")
            return None
        if spec.kind not in can:
            return None
        self.fired.append(spec)
        if stats is not None:
            stats.faults_injected += 1
        return spec

    def _decide(self, point: int, site: str) -> Optional[FaultSpec]:
        if self._rates is not None:
            return self._draw(point)
        return self._specs.get((self.phase, point))

    def _draw(self, point: int) -> Optional[FaultSpec]:
        rates = self._rates
        rng = self._rng
        roll = rng.random()
        edge = rates.transient
        if roll < edge:
            return FaultSpec(
                point,
                FaultKind.TRANSIENT,
                times=rng.randint(1, max(1, rates.max_times)),
                phase=self.phase,
            )
        edge += rates.torn
        if roll < edge:
            crash = rng.random() < rates.crash_given_fault
            return FaultSpec(
                point, FaultKind.TORN, crash=crash, phase=self.phase
            )
        edge += rates.corrupt
        if roll < edge:
            crash = rng.random() < rates.crash_given_fault
            return FaultSpec(
                point, FaultKind.CORRUPT, crash=crash, phase=self.phase
            )
        edge += rates.fsync_lie
        if roll < edge:
            return FaultSpec(point, FaultKind.FSYNC_LIE, phase=self.phase)
        edge += rates.crash
        if roll < edge:
            return FaultSpec(point, FaultKind.CRASH, phase=self.phase)
        return None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def trace(self) -> List[str]:
        """The applied faults in schedule notation."""
        return [spec.describe() for spec in self.fired]

    @staticmethod
    def crash_if_demanded(spec: Optional[FaultSpec]) -> None:
        """Raise :class:`FaultCrash` when the (applied) spec asks for it."""
        if spec is not None and spec.crash:
            raise FaultCrash(f"crash demanded by {spec.describe()}")


# ----------------------------------------------------------------------
# damage representation
# ----------------------------------------------------------------------
def _checksum(version: StoredVersion) -> int:
    """Integrity checksum of a stored version (value + vSI)."""
    return zlib.crc32(pickle.dumps((version.value, version.vsi)))


def _damaged_value(value: Any, kind: FaultKind, point: int) -> bytes:
    """A deterministic damaged variant of ``value``.

    Torn writes keep a recognizable prefix of the intended bytes (the
    part that landed); corruption flips a bit of the serialized form.
    Either way the result fails the checksum of the intended version.
    """
    raw = pickle.dumps(value)
    if kind is FaultKind.TORN:
        return b"\x00TORN\x00" + raw[: max(1, len(raw) // 2)]
    flip = point % max(1, len(raw))
    return raw[:flip] + bytes([raw[flip] ^ 0x40]) + raw[flip + 1 :]


class FaultyStore(StableStore):
    """A stable store whose device is described by a :class:`FaultModel`.

    Every read, write and delete consults the model.  The store keeps a
    CRC32 per object (the in-memory analogue of the file store's framed
    checksums): torn and corrupt faults damage the stored version while
    leaving the checksum describing the *intended* version, so
    :meth:`read` detects the damage and raises
    :class:`CorruptObjectError`, and :meth:`scrub` finds it before a
    redo pass can replay over garbage.
    """

    def __init__(
        self, model: FaultModel, stats: Optional[IOStats] = None
    ) -> None:
        super().__init__(stats)
        self.model = model
        self._crcs: Dict[ObjectId, int] = {}

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read(self, obj: ObjectId) -> StoredVersion:
        spec = self.model.fire(
            "store.read",
            obj,
            can=frozenset({FaultKind.CORRUPT}),
            stats=self.stats,
        )
        if spec is not None and obj in self._versions:
            # Bit rot discovered by the read that touches it.
            good = self._versions[obj]
            self._versions[obj] = StoredVersion(
                _damaged_value(good.value, spec.kind, spec.point), good.vsi
            )
        version = super().read(obj)
        self._verify(obj, version)
        return version

    def _verify(self, obj: ObjectId, version: StoredVersion) -> None:
        expected = self._crcs.get(obj)
        if expected is None:
            return
        if _checksum(version) != expected:
            self.stats.checksum_failures += 1
            raise CorruptObjectError(
                f"stored version of {obj!r} failed its checksum"
            )

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def write(self, obj: ObjectId, value: Any, vsi: StateId) -> None:
        self._faulty_put(obj, StoredVersion(value, vsi), count=True)

    def write_many(
        self,
        versions: Mapping[ObjectId, StoredVersion],
        atomic: bool,
        count: bool = True,
    ) -> None:
        # Each object write is one device I/O whether or not the set is
        # installed atomically — an atomicity mechanism orders failure
        # visibility, it does not remove the device operations.
        for obj, version in versions.items():
            if not atomic and self.mid_write_hook is not None:
                self.mid_write_hook(obj)
            self._faulty_put(obj, version, count=count)

    def _faulty_put(
        self, obj: ObjectId, version: StoredVersion, count: bool
    ) -> None:
        spec = self.model.fire(
            "store.write",
            obj,
            can=frozenset({FaultKind.TORN, FaultKind.CORRUPT}),
            stats=self.stats,
        )
        if count:
            self.stats.object_writes += 1
        good_crc = _checksum(version)
        if spec is None:
            self._versions[obj] = version
            self._crcs[obj] = good_crc
            return
        # Torn: garbage landed mid-write.  Corrupt: the write landed,
        # then the medium rotted it.  Either way the checksum describes
        # the *intended* version, so integrity passes catch the damage.
        self._versions[obj] = StoredVersion(
            _damaged_value(version.value, spec.kind, spec.point), version.vsi
        )
        self._crcs[obj] = good_crc
        self.model.crash_if_demanded(spec)

    def delete(self, obj: ObjectId) -> None:
        self.model.fire("store.delete", obj, stats=self.stats)
        super().delete(obj)
        self._crcs.pop(obj, None)

    # ------------------------------------------------------------------
    # integrity / restore (recovery paths: never faulted)
    # ------------------------------------------------------------------
    def scrub(self) -> List[ObjectId]:
        bad: List[ObjectId] = []
        for obj, version in self._versions.items():
            expected = self._crcs.get(obj)
            if expected is not None and _checksum(version) != expected:
                self.stats.checksum_failures += 1
                bad.append(obj)
        return bad

    def quarantine(self, obj: ObjectId) -> None:
        super().quarantine(obj)
        self._crcs.pop(obj, None)

    def restore_version(
        self, obj: ObjectId, version: Optional[StoredVersion]
    ) -> None:
        super().restore_version(obj, version)
        if version is None:
            self._crcs.pop(obj, None)
        else:
            self._crcs[obj] = _checksum(version)

    def restore_versions(
        self, versions: Mapping[ObjectId, StoredVersion]
    ) -> None:
        super().restore_versions(versions)
        self._crcs = {
            obj: _checksum(version) for obj, version in versions.items()
        }
