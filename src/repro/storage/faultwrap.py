"""The store-agnostic fault wrapper: one choreography, every backend.

Historically the fault-injecting stores duplicated their core logic:
:class:`FaultyStore` (in :mod:`repro.storage.faults`) and
``FaultyFileStore`` (in ``repro.persist.faulty``) each hand-rolled the
same *fire → branch on damage kind → maybe crash* dance against a
:class:`~repro.storage.faults.FaultModel`.  Adding a third backend
would have meant a third copy.  This module folds the choreography into
:class:`DeviceFaultInjector`, a mixin over any
:class:`~repro.storage.stable_store.StableStore` subclass:

* the mixin owns the protocol — consult the model exactly once per
  device mutation, translate the returned spec into one of three
  outcomes (``intact`` / ``torn`` / ``rot``), honour the spec's
  post-damage crash demand;
* the backend owns the physics — *how* a torn or rotted write lands is
  the only thing each faulty store implements (damaged in-memory value,
  half an object file, half a segment append).

Because the mixin consults the model through the same
:meth:`~repro.storage.faults.FaultModel.fire` calls the hand-rolled
versions made, fault-point **numbering is preserved exactly**: a
schedule recorded against the old classes fires at the same points
against these.

The concrete wrappers all live here:

* :class:`FaultyStore` — the in-memory store (damaged versions, CRC
  side map, detection on read);
* :class:`FaultyFileStore` — the one-file-per-object store (damage
  lands on real file bytes);
* :class:`FaultyLogStructuredStore` — the log-structured store (damage
  lands on real segment bytes: torn appends, rotted record frames).

``repro.storage.faults`` and ``repro.persist.faulty`` re-export the
first two for compatibility.
"""

from __future__ import annotations

import os
import pickle
import zlib
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional

from repro.common.errors import CorruptObjectError
from repro.common.identifiers import ObjectId, StateId
from repro.storage.faults import FaultKind, FaultModel, FaultSpec
from repro.storage.file_store import FileStableStore, _encode
from repro.storage.framing import HEADER, MAGIC
from repro.storage.logstore import LogStructuredStableStore
from repro.storage.stable_store import StableStore, StoredVersion
from repro.storage.stats import IOStats

#: Damage kinds meaningful at a device write site (a read cannot tear).
WRITE_DAMAGE: FrozenSet[FaultKind] = frozenset(
    {FaultKind.TORN, FaultKind.CORRUPT}
)


# ----------------------------------------------------------------------
# damage representation (shared by every wrapper)
# ----------------------------------------------------------------------
def version_checksum(version: StoredVersion) -> int:
    """Integrity checksum of a stored version (value + vSI)."""
    return zlib.crc32(pickle.dumps((version.value, version.vsi)))


def damaged_value(value: Any, kind: FaultKind, point: int) -> bytes:
    """A deterministic damaged variant of ``value``.

    Torn writes keep a recognizable prefix of the intended bytes (the
    part that landed); corruption flips a bit of the serialized form.
    Either way the result fails the checksum of the intended version.
    """
    raw = pickle.dumps(value)
    if kind is FaultKind.TORN:
        return b"\x00TORN\x00" + raw[: max(1, len(raw) // 2)]
    flip = point % max(1, len(raw))
    return raw[:flip] + bytes([raw[flip] ^ 0x40]) + raw[flip + 1 :]


def torn_prefix(data: bytes) -> bytes:
    """The prefix of ``data`` that lands when a device write tears."""
    return data[: max(1, len(data) // 2)]


def overwrite_raw(path: str, data: bytes) -> None:
    """Land raw bytes at ``path`` directly — no temp/rename protection.

    This is how torn damage reaches the platter: the write that tore
    bypassed whatever atomicity dance the store normally performs.
    """
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())


def flip_byte_in_file(path: str, offset: int) -> None:
    """Flip one bit (``^ 0x40``) of the byte at ``offset`` in ``path``."""
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0x40]))
        handle.flush()
        os.fsync(handle.fileno())


class DeviceFaultInjector:
    """Mixin: the fault choreography every faulty backend shares.

    The host class must provide ``self.model`` (a :class:`FaultModel`)
    and ``self.stats`` (an :class:`~repro.storage.stats.IOStats`), and
    set the site names its points are labelled with.  Site strings do
    not affect fault-point numbering (points are numbered by fire
    order within a phase), only trace readability.
    """

    #: Site labels for the model's fault trace.
    WRITE_SITE = "store.write"
    DELETE_SITE = "store.delete"

    model: FaultModel
    stats: IOStats

    def _faulted_device_write(
        self,
        detail: str,
        *,
        intact: Callable[[], None],
        torn: Callable[[FaultSpec], None],
        rot: Callable[[FaultSpec], None],
        after_fire: Optional[Callable[[], None]] = None,
    ) -> Optional[FaultSpec]:
        """One device write under the model.

        Fires exactly one I/O point, then applies the outcome:
        ``intact()`` when no damage is scheduled, ``torn(spec)`` when
        the write lands partially, ``rot(spec)`` when it lands whole
        and the medium then corrupts it.  ``after_fire`` runs after a
        non-raising fire in every branch — accounting that must happen
        iff the I/O was actually attempted (transient faults and clean
        crashes raise from the fire itself).  Ends by honouring the
        spec's post-damage crash demand.
        """
        spec = self.model.fire(
            self.WRITE_SITE, detail, can=WRITE_DAMAGE, stats=self.stats
        )
        if after_fire is not None:
            after_fire()
        if spec is None:
            intact()
            return None
        if spec.kind is FaultKind.TORN:
            torn(spec)
        else:
            rot(spec)
        self.model.crash_if_demanded(spec)
        return spec

    def _faulted_device_delete(self, detail: str) -> None:
        """Fire the delete point (transient/crash only — no damage)."""
        self.model.fire(self.DELETE_SITE, detail, stats=self.stats)


class FaultyStore(DeviceFaultInjector, StableStore):
    """A stable store whose device is described by a :class:`FaultModel`.

    Every read, write and delete consults the model.  The store keeps a
    CRC32 per object (the in-memory analogue of the file store's framed
    checksums): torn and corrupt faults damage the stored version while
    leaving the checksum describing the *intended* version, so
    :meth:`read` detects the damage and raises
    :class:`CorruptObjectError`, and :meth:`scrub` finds it before a
    redo pass can replay over garbage.
    """

    READ_SITE = "store.read"

    def __init__(
        self, model: FaultModel, stats: Optional[IOStats] = None
    ) -> None:
        super().__init__(stats)
        self.model = model
        self._crcs: Dict[ObjectId, int] = {}

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read(self, obj: ObjectId) -> StoredVersion:
        spec = self.model.fire(
            self.READ_SITE,
            obj,
            can=frozenset({FaultKind.CORRUPT}),
            stats=self.stats,
        )
        if spec is not None and obj in self._versions:
            # Bit rot discovered by the read that touches it.
            good = self._versions[obj]
            self._versions[obj] = StoredVersion(
                damaged_value(good.value, spec.kind, spec.point), good.vsi
            )
        version = super().read(obj)
        self._verify(obj, version)
        return version

    def _verify(self, obj: ObjectId, version: StoredVersion) -> None:
        expected = self._crcs.get(obj)
        if expected is None:
            return
        if version_checksum(version) != expected:
            self.stats.checksum_failures += 1
            raise CorruptObjectError(
                f"stored version of {obj!r} failed its checksum"
            )

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def write(self, obj: ObjectId, value: Any, vsi: StateId) -> None:
        self._faulty_put(obj, StoredVersion(value, vsi), count=True)

    def write_many(
        self,
        versions: Mapping[ObjectId, StoredVersion],
        atomic: bool,
        count: bool = True,
    ) -> None:
        # Each object write is one device I/O whether or not the set is
        # installed atomically — an atomicity mechanism orders failure
        # visibility, it does not remove the device operations.
        for obj, version in versions.items():
            if not atomic and self.mid_write_hook is not None:
                self.mid_write_hook(obj)
            self._faulty_put(obj, version, count=count)

    def _faulty_put(
        self, obj: ObjectId, version: StoredVersion, count: bool
    ) -> None:
        good_crc = version_checksum(version)

        def put_intact() -> None:
            self._versions[obj] = version
            self._crcs[obj] = good_crc

        def put_damaged(spec: FaultSpec) -> None:
            # Torn: garbage landed mid-write.  Corrupt: the write
            # landed, then the medium rotted it.  Either way the
            # checksum describes the *intended* version, so integrity
            # passes catch the damage.
            self._versions[obj] = StoredVersion(
                damaged_value(version.value, spec.kind, spec.point),
                version.vsi,
            )
            self._crcs[obj] = good_crc

        def bump() -> None:
            if count:
                self.stats.object_writes += 1

        self._faulted_device_write(
            obj,
            intact=put_intact,
            torn=put_damaged,
            rot=put_damaged,
            after_fire=bump,
        )

    def delete(self, obj: ObjectId) -> None:
        self._faulted_device_delete(obj)
        super().delete(obj)
        self._crcs.pop(obj, None)

    # ------------------------------------------------------------------
    # integrity / restore (recovery paths: never faulted)
    # ------------------------------------------------------------------
    def scrub(self) -> List[ObjectId]:
        bad: List[ObjectId] = []
        for obj, version in self._versions.items():
            expected = self._crcs.get(obj)
            if expected is not None and version_checksum(version) != expected:
                self.stats.checksum_failures += 1
                bad.append(obj)
        return bad

    def quarantine(self, obj: ObjectId) -> None:
        super().quarantine(obj)
        self._crcs.pop(obj, None)

    def restore_version(
        self, obj: ObjectId, version: Optional[StoredVersion]
    ) -> None:
        super().restore_version(obj, version)
        if version is None:
            self._crcs.pop(obj, None)
        else:
            self._crcs[obj] = version_checksum(version)

    def restore_versions(
        self, versions: Mapping[ObjectId, StoredVersion]
    ) -> None:
        super().restore_versions(versions)
        self._crcs = {
            obj: version_checksum(version)
            for obj, version in versions.items()
        }


class FaultyFileStore(DeviceFaultInjector, FileStableStore):
    """A FileStableStore whose device obeys a :class:`FaultModel`.

    Damage lands on *real file bytes* while the in-memory map keeps the
    intended version, exactly like a page cache over a failing device:
    the damage is invisible until something re-reads the platter, which
    is what :meth:`FileStableStore.scrub` does.
    """

    WRITE_SITE = "file-store.write"
    DELETE_SITE = "file-store.delete"

    def __init__(
        self, root: str, model: FaultModel, stats: Optional[IOStats] = None
    ) -> None:
        self.model = model
        super().__init__(root, stats)

    def _write_frame(self, obj: ObjectId, frame: bytes) -> None:
        path = os.path.join(self._dir, _encode(obj))

        def intact() -> None:
            FileStableStore._write_frame(self, obj, frame)

        def torn(spec: FaultSpec) -> None:
            # The rename landed but only a prefix of the bytes did —
            # the one failure the temp+rename dance cannot rule out on
            # a device that acknowledges early.
            overwrite_raw(path, torn_prefix(frame))

        def rot(spec: FaultSpec) -> None:
            # The write completed, then the medium rotted: flip one
            # payload bit of the stored frame, checksum left stale.
            intact()
            prefix = len(MAGIC) + HEADER.size
            size = os.path.getsize(path)
            flip_byte_in_file(
                path, prefix + spec.point % max(1, size - prefix)
            )

        self._faulted_device_write(obj, intact=intact, torn=torn, rot=rot)

    def _unlink(self, obj: ObjectId) -> None:
        self._faulted_device_delete(obj)
        super()._unlink(obj)


class FaultyLogStructuredStore(DeviceFaultInjector, LogStructuredStableStore):
    """A LogStructuredStableStore whose device obeys a :class:`FaultModel`.

    Damage lands on *real segment bytes*: a torn append leaves half a
    record frame at the segment tail (detected by the CRC scan on
    rebuild and by :meth:`scrub`), and bit rot flips a payload byte of
    the record that was just appended.  The in-memory index and version
    cache keep the intended state — damage surfaces only when the
    segment bytes are re-read.
    """

    WRITE_SITE = "log-store.append"
    DELETE_SITE = "log-store.delete"

    def __init__(
        self,
        root: str,
        model: FaultModel,
        stats: Optional[IOStats] = None,
        **kwargs: Any,
    ) -> None:
        self.model = model
        super().__init__(root, stats, **kwargs)

    def _append_device(self, path: str, data: bytes, offset: int) -> None:
        def intact() -> None:
            LogStructuredStableStore._append_device(self, path, data, offset)

        def torn(spec: FaultSpec) -> None:
            LogStructuredStableStore._append_device(
                self, path, torn_prefix(data), offset
            )

        def rot(spec: FaultSpec) -> None:
            intact()
            prefix = len(MAGIC) + HEADER.size
            flip_byte_in_file(
                path,
                offset + prefix + spec.point % max(1, len(data) - prefix),
            )

        self._faulted_device_write(
            os.path.basename(path), intact=intact, torn=torn, rot=rot
        )
