"""The log-structured stable store: the log *is* the database.

LogBase-style storage (see PAPERS.md): instead of rewriting objects in
place, every mutation is **appended** to the tail of a segment file as
a CRC-framed record, and an in-memory index maps each object to the
``(segment, offset)`` of its latest record.  Reads are served from the
in-memory version cache (rebuilt, like the index, by scanning the
segments in id order at open); the segments are the durable truth.

Why this backend exists: the paper's C3 comparison charges the
cache-manager path for *identity writes* and *flush-transaction double
writes* — costs that exist only because objects are rewritten in place.
Here nothing is ever written in place, so:

* a multi-object flush is **one batch frame under one CRC** — atomic by
  construction (:class:`~repro.storage.atomic.LogStructuredInstall`),
  no shadows, no double writes, no quiesce;
* identity writes have nothing to dissolve — there is no in-place
  granule to protect.

The price is **compaction**: superseded records accumulate as dead
bytes, and when the dead ratio crosses a threshold the store copies
every live version forward into a fresh segment and retires the old
files.  Compaction is crash-safe by segment-id ordering alone:

1. the copy lands in a segment numbered *after* every existing segment,
   so replay order (segments in id order, later records win) is
   unchanged whether or not the old files survive;
2. old segments are unlinked only after the copy is fully fsynced and
   the in-memory index has swung to the new locations — a crash at any
   earlier point leaves the old segments authoritative (the copy's torn
   tail is discarded by the rebuild scan, and duplicate whole records
   are harmless because the copy holds exactly the versions the old
   segments replay to);
3. new appends after compaction go to a segment numbered after the
   copy, so they always win over it.

Damage handling mirrors the other durable backend
(:class:`~repro.storage.file_store.FileStableStore`): every record is
CRC-framed, :meth:`scrub` re-reads each indexed record from the device
and reports objects whose frames fail, and the persistent
``media_redo_pending`` marker survives cold restarts mid-media-redo.
One hazard is unique to shared files: damage *inside* a segment can
destroy the newest record of an object whose older record still parses,
silently regressing the rebuilt version.  The rebuild scan therefore
**widens maximally** (``media_redo_pending = NULL_SI + 1``) whenever it
detects any damaged frame, so the next recovery replays the whole
retained log over whatever the scan produced rather than trusting
narrow vSI pruning over a possibly-regressed version.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.common.errors import CorruptObjectError
from repro.common.identifiers import NULL_SI, ObjectId, StateId
from repro.common.retry import retry_transient
from repro.storage import framing
from repro.storage.framing import DurableMediaMarker, fsync_dir
from repro.storage.stable_store import StableStore, StoredVersion
from repro.storage.stats import IOStats

_SEGMENT_RE = re.compile(r"^seg-(\d{8})\.seg$")

#: Record payload tags (the first element of every record tuple).
_PUT = "put"
_DEL = "del"
_BATCH = "batch"


def _segment_name(seg_id: int) -> str:
    return f"seg-{seg_id:08d}.seg"


@dataclass
class _Loc:
    """Where an object's authoritative record lives."""

    seg_id: int
    offset: int
    length: int
    #: Bytes of the frame charged to this object for live-ratio
    #: accounting (the whole frame for a put, a 1/n share for a batch).
    share: int


@dataclass
class _Segment:
    seg_id: int
    path: str
    #: Bytes appended so far (intended size; re-read from the device
    #: where it matters, so fault-torn appends cannot corrupt it).
    size: int = 0
    #: Bytes belonging to currently-authoritative records.
    live: int = 0


class LogStructuredStableStore(DurableMediaMarker, StableStore):
    """A StableStore that is an append-only log under ``root/segments``.

    Parameters
    ----------
    root:
        Database directory (shared with the WAL and marker files).
    stats:
        Shared I/O ledger.
    segment_bytes:
        Roll the active segment once it grows past this size.
    compact_ratio:
        Trigger compaction when the dead-byte ratio across all segments
        reaches this fraction (0 disables ratio-based triggering only
        if ``auto_compact`` is off).
    compact_min_bytes:
        Never auto-compact below this total size — tiny stores churn.
    auto_compact:
        Check the threshold after every mutating call; :meth:`compact`
        can always be invoked explicitly.
    """

    def __init__(
        self,
        root: str,
        stats: Optional[IOStats] = None,
        *,
        segment_bytes: int = 64 * 1024,
        compact_ratio: float = 0.5,
        compact_min_bytes: int = 32 * 1024,
        auto_compact: bool = True,
    ) -> None:
        super().__init__(stats)
        self.root = root
        self.segment_bytes = segment_bytes
        self.compact_ratio = compact_ratio
        self.compact_min_bytes = compact_min_bytes
        self.auto_compact = auto_compact
        self._dir = os.path.join(root, "segments")
        os.makedirs(self._dir, exist_ok=True)
        self._index: Dict[ObjectId, _Loc] = {}
        self._segments: Dict[int, _Segment] = {}
        self._next_id = 1
        self._active: Optional[_Segment] = None
        self._compacting = False
        #: Objects quarantined but not yet reported through scrub().
        self._pending_quarantine: Dict[ObjectId, str] = {}
        #: Test hook: called at compaction stages ("copied", "indexed",
        #: "retired"); a crash-injection harness raises from here.
        self.compaction_hook: Optional[Callable[[str], None]] = None
        self._init_marker(root)
        damaged = self._rebuild()
        if damaged:
            # Any damaged frame may have been the newest record of an
            # object whose older record still parsed — the rebuilt
            # version can be silently stale.  Widen maximally so the
            # next recovery replays the whole retained log over it.
            self.media_redo_pending = NULL_SI + 1

    # ------------------------------------------------------------------
    # rebuild: scan segments in id order, later records win
    # ------------------------------------------------------------------
    def _segment_ids_on_disk(self) -> List[int]:
        ids = []
        for name in os.listdir(self._dir):
            match = _SEGMENT_RE.match(name)
            if match:
                ids.append(int(match.group(1)))
        return sorted(ids)

    def _rebuild(self) -> bool:
        damaged = False
        ids = self._segment_ids_on_disk()
        for position, seg_id in enumerate(ids):
            last = position == len(ids) - 1
            damaged |= self._scan_segment(seg_id, repair_tail=last)
        self._next_id = (ids[-1] + 1) if ids else 1
        if ids:
            active = self._segments.get(ids[-1])
            if active is not None and active.size < self.segment_bytes:
                self._active = active
        return damaged

    def _scan_segment(self, seg_id: int, repair_tail: bool) -> bool:
        """Replay one segment into the index; return True on damage.

        A bad frame at the very tail of the *last* segment is the
        ordinary crash-mid-append case and is truncated away (like the
        WAL's torn-tail repair).  A bad frame anywhere else is real
        damage: the scan resynchronizes at the next frame magic and
        keeps going, salvaging everything that still parses.
        """
        path = os.path.join(self._dir, _segment_name(seg_id))
        with open(path, "rb") as handle:
            data = handle.read()
        segment = _Segment(seg_id, path, size=len(data))
        self._segments[seg_id] = segment
        damaged = False
        offset = 0
        while offset < len(data):
            try:
                frame_len, payload, vsi = self._parse_frame_at(data, offset)
            except CorruptObjectError:
                self.stats.checksum_failures += 1
                resync = data.find(framing.MAGIC, offset + 1)
                if resync == -1:
                    if repair_tail:
                        # Torn tail: truncate the partial frame away so
                        # future appends start at a clean boundary.
                        with open(path, "r+b") as handle:
                            handle.truncate(offset)
                            handle.flush()
                            os.fsync(handle.fileno())
                        segment.size = offset
                    damaged = True
                    break
                damaged = True
                offset = resync
                continue
            self._replay_record(seg_id, offset, frame_len, payload, vsi)
            offset += frame_len
        return damaged

    @staticmethod
    def _parse_frame_at(
        data: bytes, offset: int
    ) -> Tuple[int, Any, StateId]:
        """Parse one frame starting at ``offset``; return its length."""
        header_end = offset + len(framing.MAGIC) + framing.HEADER.size
        if header_end > len(data):
            raise CorruptObjectError("segment: truncated frame header")
        if not data.startswith(framing.MAGIC, offset):
            raise CorruptObjectError("segment: bad frame magic")
        length = framing.HEADER.unpack_from(
            data, offset + len(framing.MAGIC)
        )[0]
        frame_len = len(framing.MAGIC) + framing.HEADER.size + length
        payload, vsi = framing.unframe(
            data[offset : offset + frame_len], "segment record"
        )
        return frame_len, payload, vsi

    def _replay_record(
        self,
        seg_id: int,
        offset: int,
        frame_len: int,
        payload: Any,
        vsi: StateId,
    ) -> None:
        if not isinstance(payload, tuple) or not payload:
            return  # foreign record: ignore (forward compatibility)
        tag = payload[0]
        if tag == _PUT:
            _, obj, value = payload
            self._versions[obj] = StoredVersion(value, vsi)
            self._point_index(obj, _Loc(seg_id, offset, frame_len, frame_len))
        elif tag == _DEL:
            obj = payload[1]
            self._versions.pop(obj, None)
            self._drop_index(obj)
        elif tag == _BATCH:
            items = payload[1]
            share = frame_len // max(1, len(items))
            for obj, value, item_vsi in items:
                self._versions[obj] = StoredVersion(value, item_vsi)
                self._point_index(obj, _Loc(seg_id, offset, frame_len, share))

    # ------------------------------------------------------------------
    # index / live-byte accounting
    # ------------------------------------------------------------------
    def _point_index(self, obj: ObjectId, loc: _Loc) -> None:
        self._drop_index(obj)
        self._index[obj] = loc
        segment = self._segments.get(loc.seg_id)
        if segment is not None:
            segment.live += loc.share

    def _drop_index(self, obj: ObjectId) -> None:
        old = self._index.pop(obj, None)
        if old is not None:
            segment = self._segments.get(old.seg_id)
            if segment is not None:
                segment.live -= old.share

    def dead_ratio(self) -> float:
        """Fraction of segment bytes not owned by a live record."""
        total = sum(s.size for s in self._segments.values())
        if total == 0:
            return 0.0
        live = sum(s.live for s in self._segments.values())
        return 1.0 - live / total

    def total_bytes(self) -> int:
        """Bytes across all segment files (live + dead)."""
        return sum(s.size for s in self._segments.values())

    def segment_count(self) -> int:
        return len(self._segments)

    # ------------------------------------------------------------------
    # append path
    # ------------------------------------------------------------------
    def _active_segment(self) -> _Segment:
        if self._active is None or self._active.size >= self.segment_bytes:
            seg_id = self._next_id
            self._next_id += 1
            segment = _Segment(
                seg_id, os.path.join(self._dir, _segment_name(seg_id))
            )
            self._segments[seg_id] = segment
            self._active = segment
        return self._active

    def _append_payload(self, payload: Any, vsi: StateId) -> Tuple[int, int, int]:
        """Durably append one record; return ``(seg_id, offset, length)``."""
        frame = framing.frame(payload, vsi)
        return retry_transient(
            lambda: self._append_once(frame),
            stats=self.stats,
            what="append segment record",
        )

    def _append_once(self, frame: bytes) -> Tuple[int, int, int]:
        segment = self._active_segment()
        # Re-read the real size so a previously-torn append (fault
        # injection) cannot skew subsequent offsets.
        offset = (
            os.path.getsize(segment.path)
            if os.path.exists(segment.path)
            else 0
        )
        self._append_device(segment.path, frame, offset)
        segment.size = offset + len(frame)
        return segment.seg_id, offset, len(frame)

    def _append_device(self, path: str, data: bytes, offset: int) -> None:
        """The device touchpoint: append raw bytes and fsync.

        Overridden by the fault-injecting subclass; ``offset`` is where
        the bytes are expected to land (for damage positioning).
        """
        existed = os.path.exists(path)
        with open(path, "ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        if not existed:
            fsync_dir(self._dir)

    def _append_put(self, obj: ObjectId, version: StoredVersion) -> None:
        seg_id, offset, length = self._append_payload(
            (_PUT, obj, version.value), version.vsi
        )
        self._point_index(obj, _Loc(seg_id, offset, length, length))

    def _append_tombstone(self, obj: ObjectId) -> None:
        self._append_payload((_DEL, obj), NULL_SI)
        self._drop_index(obj)

    # ------------------------------------------------------------------
    # StableStore writes
    # ------------------------------------------------------------------
    def write(self, obj: ObjectId, value: Any, vsi: StateId) -> None:
        super().write(obj, value, vsi)
        self._append_put(obj, StoredVersion(value, vsi))
        self._maybe_compact()

    def write_many(
        self,
        versions: Mapping[ObjectId, StoredVersion],
        atomic: bool,
        count: bool = True,
    ) -> None:
        if atomic:
            # One batch frame under one CRC: the whole set becomes
            # readable exactly when the frame verifies — this is the
            # natural atomic install of a log-structured store.
            StableStore.write_many(self, versions, atomic, count)
            items = [
                (obj, version.value, version.vsi)
                for obj, version in versions.items()
            ]
            seg_id, offset, length = self._append_payload(
                (_BATCH, items), NULL_SI
            )
            share = length // max(1, len(items))
            for obj, _, _ in items:
                self._point_index(obj, _Loc(seg_id, offset, length, share))
            self._maybe_compact()
            return
        # Non-atomic: append each record at the moment of its in-memory
        # write, so an injected crash between writes leaves the log and
        # memory torn identically.
        for obj, version in versions.items():
            if self.mid_write_hook is not None:
                self.mid_write_hook(obj)
            if count:
                self.stats.object_writes += 1
            self._versions[obj] = version
            self._append_put(obj, version)
        self._maybe_compact()

    def delete(self, obj: ObjectId) -> None:
        known = obj in self._versions or obj in self._index
        super().delete(obj)
        if known:
            self._append_tombstone(obj)
            self._maybe_compact()

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        if not self.auto_compact or self._compacting:
            return
        if self.total_bytes() < self.compact_min_bytes:
            return
        if self.dead_ratio() >= self.compact_ratio:
            self.compact()

    def compact(self) -> int:
        """Copy every live version forward; retire all older segments.

        Returns the number of versions copied.  Crash-safe at every
        point — see the module docstring for the id-ordering argument.
        """
        if self._compacting or not self._segments:
            return 0
        self._compacting = True
        try:
            return self._compact_inner()
        finally:
            self._compacting = False

    def _compact_inner(self) -> int:
        old_segments = dict(self._segments)
        # The copy segment sorts after every existing segment; the next
        # active segment sorts after the copy, so appends that follow
        # compaction always win over copied records.
        copy_id = self._next_id
        self._next_id += 1
        copy_seg = _Segment(
            copy_id, os.path.join(self._dir, _segment_name(copy_id))
        )
        self._segments[copy_id] = copy_seg
        self._active = None  # next append allocates a fresh segment
        new_locs: Dict[ObjectId, _Loc] = {}
        copied = 0
        for obj in sorted(self._index):
            version = self._versions[obj]
            frame = framing.frame((_PUT, obj, version.value), version.vsi)
            offset = copy_seg.size
            retry_transient(
                lambda f=frame, o=offset: self._append_device(
                    copy_seg.path, f, o
                ),
                stats=self.stats,
                what="compaction copy",
            )
            copy_seg.size = offset + len(frame)
            new_locs[obj] = _Loc(copy_id, offset, len(frame), len(frame))
            copied += 1
            self.stats.compaction_copies += 1
        if copied == 0:
            # Nothing live: every old segment is pure dead weight.
            if os.path.exists(copy_seg.path):
                os.unlink(copy_seg.path)
            self._segments.pop(copy_id, None)
        self._hook("copied")
        # Index swap: from here on, reads of the device (scrub) go to
        # the copy.  Old segments are now entirely dead — but still on
        # disk, so a crash before retirement replays identically.
        if copied > 0:
            for obj, loc in new_locs.items():
                self._index[obj] = loc
            copy_seg.live = copy_seg.size
        self._hook("indexed")
        for seg_id, segment in old_segments.items():
            self._segments.pop(seg_id, None)
            if os.path.exists(segment.path):
                os.unlink(segment.path)
        fsync_dir(self._dir)
        self.stats.bump("compactions")
        self._hook("retired")
        return copied

    def _hook(self, stage: str) -> None:
        if self.compaction_hook is not None:
            self.compaction_hook(stage)

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def scrub(self) -> List[ObjectId]:
        """Re-read every indexed record from the device; report failures.

        Batch frames are verified once and fail every object that
        shares them.  Includes objects whose damage was discovered at
        rebuild but not yet reported.
        """
        bad = list(self._pending_quarantine)
        frame_ok: Dict[Tuple[int, int], bool] = {}
        for obj in sorted(self._index):
            loc = self._index[obj]
            key = (loc.seg_id, loc.offset)
            ok = frame_ok.get(key)
            if ok is None:
                ok = self._verify_record(loc)
                frame_ok[key] = ok
            if not ok:
                self.stats.checksum_failures += 1
                if obj not in bad:
                    bad.append(obj)
        return bad

    def _verify_record(self, loc: _Loc) -> bool:
        segment = self._segments.get(loc.seg_id)
        if segment is None or not os.path.exists(segment.path):
            return False
        with open(segment.path, "rb") as handle:
            handle.seek(loc.offset)
            data = handle.read(loc.length)
        try:
            framing.unframe(data, "segment record")
        except CorruptObjectError:
            return False
        return True

    def quarantine(self, obj: ObjectId) -> None:
        super().quarantine(obj)
        self._pending_quarantine.pop(obj, None)
        # The record stays in its segment as dead bytes; dropping the
        # index entry is what takes it out of service.
        self._drop_index(obj)

    def restore_version(
        self, obj: ObjectId, version: Optional[StoredVersion]
    ) -> None:
        super().restore_version(obj, version)
        if version is None:
            if obj in self._index:
                self._append_tombstone(obj)
        else:
            self._append_put(obj, version)

    def restore_versions(
        self, versions: Mapping[ObjectId, StoredVersion]
    ) -> None:
        """Media-recovery restore: replace the whole log."""
        for seg_id in self._segment_ids_on_disk():
            os.unlink(os.path.join(self._dir, _segment_name(seg_id)))
        fsync_dir(self._dir)
        self._segments = {}
        self._index = {}
        self._active = None
        StableStore.restore_versions(self, versions)
        for obj in sorted(versions):
            self._append_put(obj, versions[obj])
