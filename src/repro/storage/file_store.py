"""File-backed stable store: one file per object, crash-atomic writes.

Each object version ``(value, vSI)`` is written to
``<root>/objects/<encoded-id>.obj`` as a checksummed frame —
``magic || [length][crc32] || pickle bytes``, mirroring the WAL's frame
format — via the classic temp-file + fsync + atomic-rename dance, so a
single-object write either fully lands or fully doesn't — exactly the
atomicity granule the paper's model assumes.  Multi-object writes
issued with ``atomic=False`` go one rename at a time and can genuinely
tear across a process crash.

The framing is the detection layer: a torn or bit-rotted object file
fails its length/checksum test on load and is **quarantined** (moved to
``<root>/quarantine/``) instead of raising a bare unpickling error or
silently returning garbage; recovery then replays the object from the
log (see ``RecoverableSystem.recover``'s quarantine fallback).

Durability detail that the original rename dance missed: ``os.replace``
and ``os.unlink`` mutate the *directory*, and a metadata-losing crash
can undo them unless the directory itself is fsynced — so every rename
and unlink here is followed by :func:`~repro.storage.framing.fsync_dir`.

Object ids are percent-encoded into file names (ids contain ``:`` and
may contain ``/``).

This is the canonical home of :class:`FileStableStore`; it historically
lived at ``repro.persist.file_store``, which remains as a deprecation
shim.
"""

from __future__ import annotations

import os
import urllib.parse
from typing import Any, Dict, List, Optional

from repro.common.errors import CorruptObjectError
from repro.common.identifiers import ObjectId, StateId
from repro.common.retry import retry_transient
from repro.storage import framing
from repro.storage.framing import DurableMediaMarker, fsync_dir
from repro.storage.stable_store import StableStore, StoredVersion
from repro.storage.stats import IOStats

_SUFFIX = ".obj"
# Compatibility aliases: the frame format moved to repro.storage.framing
# (it is shared with the log-structured backend); older code imported
# these names from this module.
_MAGIC = framing.MAGIC
_HEADER = framing.HEADER
_MARKER_NAME = framing.MARKER_NAME
_MARKER_TAG = framing.MARKER_TAG
_frame = framing.frame
_unframe = framing.unframe
_fsync_dir = framing.fsync_dir


def _encode(obj: ObjectId) -> str:
    return urllib.parse.quote(obj, safe="") + _SUFFIX


def _decode(filename: str) -> ObjectId:
    return urllib.parse.unquote(filename[: -len(_SUFFIX)])


class FileStableStore(DurableMediaMarker, StableStore):
    """A StableStore whose contents live under ``root/objects``.

    The in-memory version map acts as a read cache over the files; the
    files are the durable truth and are reloaded on construction.
    Corrupt files discovered at load time are quarantined immediately
    and surfaced through :meth:`scrub` so the recovery path replays
    them from the log.
    """

    def __init__(self, root: str, stats: Optional[IOStats] = None) -> None:
        super().__init__(stats)
        self.root = root
        self._dir = os.path.join(root, "objects")
        self._quarantine_dir = os.path.join(root, "quarantine")
        os.makedirs(self._dir, exist_ok=True)
        #: Objects quarantined but not yet reported through scrub():
        #: obj -> reason.  Load-time detections land here.
        self._pending_quarantine: Dict[ObjectId, str] = {}
        self._load()
        self._init_marker(root)

    def _load(self) -> None:
        for name in sorted(os.listdir(self._dir)):
            if not name.endswith(_SUFFIX):
                continue
            obj = _decode(name)
            path = os.path.join(self._dir, name)
            with open(path, "rb") as handle:
                data = handle.read()
            try:
                value, vsi = framing.unframe(data, f"object file {name}")
            except CorruptObjectError as exc:
                self.stats.checksum_failures += 1
                self._quarantine_file(name)
                self._pending_quarantine[obj] = str(exc)
                continue
            # Populate the base map directly: loading is not an I/O
            # event of the simulated workload.
            self._versions[obj] = StoredVersion(value, vsi)

    def _quarantine_file(self, name: str) -> None:
        os.makedirs(self._quarantine_dir, exist_ok=True)
        source = os.path.join(self._dir, name)
        if os.path.exists(source):
            os.replace(source, os.path.join(self._quarantine_dir, name))
            fsync_dir(self._quarantine_dir)
            fsync_dir(self._dir)

    # ------------------------------------------------------------------
    # durable write path
    # ------------------------------------------------------------------
    def _persist(self, obj: ObjectId, version: StoredVersion) -> None:
        frame = framing.frame(version.value, version.vsi)
        retry_transient(
            lambda: self._write_frame(obj, frame),
            stats=self.stats,
            what=f"persist {obj!r}",
        )

    def _write_frame(self, obj: ObjectId, frame: bytes) -> None:
        """One durable object-file replacement (the device touchpoint).

        Overridden by the fault-injecting file store; transient failures
        raised from here are re-driven whole by :meth:`_persist`.
        """
        final_path = os.path.join(self._dir, _encode(obj))
        framing.write_file_durably(final_path, frame)

    def write(self, obj: ObjectId, value: Any, vsi: StateId) -> None:
        super().write(obj, value, vsi)
        self._persist(obj, StoredVersion(value, vsi))

    def write_many(self, versions, atomic: bool, count: bool = True) -> None:
        if atomic:
            # The caller used a real atomicity mechanism (our file
            # granule is per object; a true multi-file atomic install
            # would stage + manifest-swing, which the shadow mechanism
            # models), so order does not matter.
            StableStore.write_many(self, versions, atomic, count)
            for obj, version in versions.items():
                self._persist(obj, version)
            return
        # Non-atomic: persist each object file at the moment of its
        # in-memory write, so an injected crash between writes leaves
        # disk and memory torn identically — real tearing semantics.
        for obj, version in versions.items():
            if self.mid_write_hook is not None:
                self.mid_write_hook(obj)
            if count:
                self.stats.object_writes += 1
            self._versions[obj] = version
            self._persist(obj, version)

    def delete(self, obj: ObjectId) -> None:
        super().delete(obj)
        retry_transient(
            lambda: self._unlink(obj),
            stats=self.stats,
            what=f"unlink {obj!r}",
        )

    def _unlink(self, obj: ObjectId) -> None:
        path = os.path.join(self._dir, _encode(obj))
        if os.path.exists(path):
            os.unlink(path)
            fsync_dir(self._dir)

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def scrub(self) -> List[ObjectId]:
        """Re-verify every object file; return all failing objects.

        Includes objects already quarantined at load time (their replay
        is still owed) plus any damage that landed after load — e.g. a
        fault-injected torn write whose in-memory copy looks fine.
        """
        bad = list(self._pending_quarantine)
        for name in sorted(os.listdir(self._dir)):
            if not name.endswith(_SUFFIX):
                continue
            path = os.path.join(self._dir, name)
            with open(path, "rb") as handle:
                data = handle.read()
            try:
                framing.unframe(data, f"object file {name}")
            except CorruptObjectError:
                self.stats.checksum_failures += 1
                obj = _decode(name)
                if obj not in bad:
                    bad.append(obj)
        return bad

    def quarantine(self, obj: ObjectId) -> None:
        super().quarantine(obj)
        self._pending_quarantine.pop(obj, None)
        self._quarantine_file(_encode(obj))

    def restore_version(
        self, obj: ObjectId, version: Optional[StoredVersion]
    ) -> None:
        super().restore_version(obj, version)
        if version is None:
            self._unlink(obj)
        else:
            self._persist(obj, version)

    def restore_versions(self, versions) -> None:
        """Media-recovery restore: replace the directory contents."""
        for name in os.listdir(self._dir):
            if name.endswith(_SUFFIX):
                os.unlink(os.path.join(self._dir, name))
        fsync_dir(self._dir)
        StableStore.restore_versions(self, versions)
        for obj, version in versions.items():
            self._persist(obj, version)
