"""I/O and logging statistics.

The paper's Section 4 cost comparison is stated in exactly these units:
object writes, object values written to the log, log forces, and system
quiesce events.  A single :class:`IOStats` instance is shared by the
stable store, the log manager, and the cache manager of one system so
that the benchmark harness reads one coherent ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class IOStats:
    """Mutable counters for one simulated system.

    Attributes
    ----------
    object_writes:
        Object values written in place to the stable store (one per
        object per flush).
    object_reads:
        Object values read from the stable store into the cache.
    shadow_writes:
        Object values written to shadow locations (shadow paging).
    pointer_swings:
        Atomic pointer installs performed by the shadow mechanism.
    log_records:
        Records appended to the (volatile) log.
    log_bytes:
        Modelled bytes appended to the log, per the size model.
    log_value_bytes:
        The subset of ``log_bytes`` that is data *values* (the part
        logical logging avoids writing).
    log_forces:
        Times the volatile log buffer was forced to the stable log.
    log_force_saves:
        Force requests satisfied for free because an earlier
        group-commit force widened to the whole buffer and carried the
        requested prefix with it.
    quiesce_events:
        Times the system had to pause normal execution (flush
        transactions freeze the objects they copy; System R quiesced).
    flush_double_writes:
        Object values written *twice* by the flush-transaction
        mechanism — once to the log, then again in place.  A cost that
        exists only because objects are rewritten in place; the
        log-structured backend's batch frames eliminate it.
    compaction_copies:
        Live object versions copied forward by log-structured segment
        compaction (the background reclamation cost of never writing
        in place).
    atomic_flushes:
        Multi-object atomic flush operations performed.
    identity_writes:
        Cache-manager-initiated identity write operations injected.
    flushes:
        Node installations performed by the cache manager.
    redo_executed / redo_skipped / redo_voided:
        Recovery-pass outcome counters.
    log_records_scanned:
        Log records examined during the redo pass.
    faults_injected:
        Storage faults fired by an attached fault model (transient
        errors, torn writes, corruption, lying fsyncs).
    fault_retries:
        Transient faults absorbed by a hardened write path's bounded
        retry loop.
    checksum_failures:
        Stored versions whose integrity (CRC) test failed on read or
        during a pre-recovery scrub.
    quarantines:
        Corrupt stored versions quarantined (removed from service)
        before recovery replayed them from a backup image or the log.
    media_recoveries:
        Recovery runs that fell back to media-style replay because of
        quarantined versions.
    recovery_attempts:
        Recovery attempts started by the recovery supervisor (one per
        ``recover()`` call it drives, converged or not).
    recovery_restarts:
        Recovery attempts that died mid-run (a crash fault inside
        recovery's own I/O) and were restarted from scratch by the
        supervisor.
    """

    object_writes: int = 0
    object_reads: int = 0
    shadow_writes: int = 0
    pointer_swings: int = 0
    log_records: int = 0
    log_bytes: int = 0
    log_value_bytes: int = 0
    log_forces: int = 0
    log_force_saves: int = 0
    quiesce_events: int = 0
    flush_double_writes: int = 0
    compaction_copies: int = 0
    atomic_flushes: int = 0
    identity_writes: int = 0
    flushes: int = 0
    redo_executed: int = 0
    redo_skipped: int = 0
    redo_voided: int = 0
    log_records_scanned: int = 0
    faults_injected: int = 0
    fault_retries: int = 0
    checksum_failures: int = 0
    quarantines: int = 0
    media_recoveries: int = 0
    recovery_attempts: int = 0
    recovery_restarts: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> Dict[str, int]:
        """Return the counters as a plain dict (``extra`` flattened in)."""
        out = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "extra"
        }
        out.update(self.extra)
        return out

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Return counter deltas relative to an earlier :meth:`snapshot`."""
        now = self.snapshot()
        return {key: now.get(key, 0) - earlier.get(key, 0) for key in now}

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment an ad-hoc counter kept in ``extra``."""
        self.extra[name] = self.extra.get(name, 0) + amount

    def absorb(self, other: "IOStats") -> None:
        """Add another ledger's counts into this one.

        Used when a system adopts a store or log that already
        accumulated counters before the shared ledger existed — e.g. a
        file-backed store that quarantined corrupt frames while loading
        the directory.  Without this, those early counts would be
        silently dropped when the component's ``stats`` is replaced.
        """
        for f in fields(self):
            if f.name == "extra":
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value

    def total_device_writes(self) -> int:
        """All object-value writes that hit the simulated device.

        This is the Section 4 comparison unit: in-place writes, shadow
        writes and pointer swings all cost device I/Os.
        """
        return self.object_writes + self.shadow_writes + self.pointer_swings
