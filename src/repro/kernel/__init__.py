"""The recoverable system kernel.

:class:`~repro.kernel.system.RecoverableSystem` is the public facade: it
wires the stable store, the WAL, the cache manager and the recovery
manager into one object that domains and experiments drive.  The kernel
also provides crash injection (:mod:`~repro.kernel.crash`), the
oracle-based recoverability verifier (:mod:`~repro.kernel.verify`), and
the restartable recovery supervisor with its escalation ladder
(:mod:`~repro.kernel.supervisor`).
"""

from repro.kernel.system import RecoverableSystem, SystemConfig, SystemHealth
from repro.kernel.crash import CrashInjector, CrashNow
from repro.kernel.verify import verify_recovered, VerificationError
from repro.kernel.backup_manager import BackupManager
from repro.kernel.supervisor import (
    AttemptRecord,
    FailureReport,
    RecoverySupervisor,
    SupervisorConfig,
)
from repro.kernel.torture import (
    TortureConfig,
    TortureHarness,
    TortureOutcome,
    TortureReport,
)

__all__ = [
    "RecoverableSystem",
    "SystemConfig",
    "SystemHealth",
    "CrashInjector",
    "CrashNow",
    "verify_recovered",
    "VerificationError",
    "BackupManager",
    "AttemptRecord",
    "FailureReport",
    "RecoverySupervisor",
    "SupervisorConfig",
    "TortureConfig",
    "TortureHarness",
    "TortureOutcome",
    "TortureReport",
]
