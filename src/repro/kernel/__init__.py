"""The recoverable system kernel.

:class:`~repro.kernel.system.RecoverableSystem` is the public facade: it
wires the stable store, the WAL, the cache manager and the recovery
manager into one object that domains and experiments drive.  The kernel
also provides crash injection (:mod:`~repro.kernel.crash`) and the
oracle-based recoverability verifier (:mod:`~repro.kernel.verify`).
"""

from repro.kernel.system import RecoverableSystem, SystemConfig
from repro.kernel.crash import CrashInjector, CrashNow
from repro.kernel.verify import verify_recovered, VerificationError
from repro.kernel.backup_manager import BackupManager
from repro.kernel.torture import (
    TortureConfig,
    TortureHarness,
    TortureOutcome,
    TortureReport,
)

__all__ = [
    "RecoverableSystem",
    "SystemConfig",
    "CrashInjector",
    "CrashNow",
    "verify_recovered",
    "VerificationError",
    "BackupManager",
    "TortureConfig",
    "TortureHarness",
    "TortureOutcome",
    "TortureReport",
]
