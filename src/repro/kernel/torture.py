"""Recovery torture harness: crash-and-recover under injected faults.

The crash matrix (E7) establishes that recovery survives *clean*
crashes at every operation boundary.  The torture harness establishes
the stronger claim this PR is about: recovery survives a **misbehaving
device** — transient I/O errors, torn intra-object writes, silent
corruption — injected at every numbered I/O point of a workload, in two
modes:

* **sweep** — a counting run first numbers the workload's I/O points,
  then one run per (point × fault kind) cell injects exactly that fault
  there and crash-recovers.  Exhaustive over the fault-point space.
* **fuzz** — ``runs`` seeded schedules draw faults independently at
  every point (:meth:`FaultModel.fuzz`); each failing run is fully
  reproducible from its single integer seed.

Every run ends the same way: disarm the model, ``crash()``,
``recover(quarantine_backup=...)`` (a backup taken at workload start
pins the log and backs the quarantine path), then assert both oracles —
:func:`~repro.kernel.verify.verify_recovered` (recovered state equals
the crash-free oracle on the durable history) and
:func:`~repro.core.invariants.check_explainable` (the stable state is
explainable, Theorem 3's consequence).

Interleaved forces and purges are driven by a dedicated rng seeded only
by the workload seed, so the I/O point numbering of a faulted run lines
up exactly with its counting run.

**Torture v2** extends the campaign to recovery's own I/O (the paper's
Theorem 2 idempotence, adversarially): :meth:`~TortureHarness.
recovery_points` numbers the ``"recovery"``-phase fault points with a
counting run, :meth:`~TortureHarness.sweep_recovery` injects every
must-survive kind at every one of them (including pure ``CRASH`` points
and nested-crash schedules that kill a recovery that is itself a
restart), and :meth:`~TortureHarness.fuzz_recovery` draws faults across
*both* phases.  Recovery in v2 is driven by the
:class:`~repro.kernel.supervisor.RecoverySupervisor` — the assertion is
that the escalation ladder converges to the verified state
(``SystemHealth.HEALTHY``) no matter where recovery itself is killed.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cache.config import CacheConfig
from repro.common.errors import (
    CorruptObjectError,
    SimulatedCrash,
    TransientStorageError,
)
from repro.common.rng import make_rng
from repro.core.invariants import check_explainable, stable_values_of
from repro.kernel.backup_manager import BackupManager
from repro.kernel.supervisor import (
    FailureReport,
    RecoverySupervisor,
    SupervisorConfig,
)
from repro.kernel.system import (
    RecoverableSystem,
    SystemConfig,
    SystemHealth,
)
from repro.kernel.verify import verify_recovered
from repro.obs.metrics import MetricsRegistry
from repro.storage.faults import (
    RECOVERY_PHASE,
    FaultKind,
    FaultModel,
    FaultSpec,
    FuzzRates,
)
from repro.storage.registry import make_store, resolve_backend
from repro.wal.faulty_log import FaultyLog
from repro.workloads import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    register_workload_functions,
)

#: The fault kinds every configuration must survive at every I/O point.
#: FSYNC_LIE is deliberately absent: an undetected lying fsync breaks
#: any WAL system's durability contract (see the strawman test).
SWEEP_KINDS = (FaultKind.TORN, FaultKind.TRANSIENT, FaultKind.CORRUPT)

#: The kinds the recovery-phase sweep (Torture v2) injects at every
#: recovery I/O point.  CRASH joins the list because "the machine dies
#: at recovery's k-th I/O" is exactly the restartability claim.
RECOVERY_SWEEP_KINDS = (
    FaultKind.CRASH,
    FaultKind.TORN,
    FaultKind.TRANSIENT,
    FaultKind.CORRUPT,
)

#: IOStats fields the report aggregates across runs.
_COUNTERS = (
    "faults_injected",
    "fault_retries",
    "checksum_failures",
    "quarantines",
    "media_recoveries",
    "recovery_attempts",
    "recovery_restarts",
)


@dataclass
class TortureConfig:
    """Workload shape and cache configuration for torture runs."""

    objects: int = 5
    operations: int = 20
    object_size: int = 64
    p_delete: float = 0.1
    #: Probability of a log force / purge after each operation (drawn
    #: from the interleave rng, identical across runs of one harness).
    p_force: float = 0.4
    p_purge: float = 0.3
    workload_seed: int = 0
    #: Stable-store backend under torture, resolved through
    #: :func:`repro.storage.make_store` with the run's fault model
    #: attached.  Durable backends get a fresh scratch directory per
    #: run (removed when the run's verdict is in), so the campaign
    #: tortures the real on-disk read/write/scrub paths.
    store_backend: str = "memory"
    #: Fresh cache config per run (configs hold stateful mechanisms).
    cache_factory: Callable[[], CacheConfig] = CacheConfig
    #: Torture v2: the supervisor's attempt budget per run.  Generous by
    #: default — nested-crash schedules legitimately burn several
    #: attempts before the last scheduled crash point is consumed.
    supervisor_attempts: int = 24


@dataclass
class TortureOutcome:
    """One crash-recover-verify run under one fault schedule."""

    description: str
    ok: bool
    error: str = ""
    #: Faults actually applied, in schedule notation.
    trace: List[str] = field(default_factory=list)
    #: Fuzz runs: the seed that reproduces this schedule.
    seed: Optional[int] = None
    #: Torture v2: recovery attempts the supervisor used.
    attempts: int = 0
    #: Torture v2: the supervisor's structured report when the run
    #: failed (None for passing runs, to keep reports lean).
    failure_report: Optional[FailureReport] = None


@dataclass
class TortureReport:
    """Aggregate result of a sweep or fuzz campaign."""

    mode: str
    outcomes: List[TortureOutcome] = field(default_factory=list)
    #: Size of the fault-point space (sweep mode).
    points: int = 0
    #: Summed IOStats counters across all runs.
    totals: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def failures(self) -> List[TortureOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def summary(self) -> str:
        """One status line, e.g. for the CLI."""
        failed = len(self.failures())
        status = "OK" if failed == 0 else f"{failed} FAILED"
        return (
            f"torture {self.mode}: {len(self.outcomes)} runs over "
            f"{self.points} fault points — {status}"
        )


class TortureHarness:
    """Drives fault-injected workloads through crash and recovery."""

    def __init__(
        self,
        config: Optional[TortureConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else TortureConfig()
        self._totals: Dict[str, int] = {}
        #: Scratch directories backing durable-store runs; reclaimed
        #: after each run's verdict (the store dies with the run).
        self._scratch_roots: List[str] = []
        #: Optional shared registry: every system the campaign builds
        #: attaches it, so spans and histograms accumulate across runs.
        self.obs = metrics

    # ------------------------------------------------------------------
    # one run
    # ------------------------------------------------------------------
    def _build_store(self, model: FaultModel):
        backend = self.config.store_backend
        root = None
        if resolve_backend(backend).requires_root:
            root = tempfile.mkdtemp(prefix="repro-torture-")
            self._scratch_roots.append(root)
        return make_store(backend, root, model=model)

    def _reclaim_scratch(self) -> None:
        while self._scratch_roots:
            shutil.rmtree(self._scratch_roots.pop(), ignore_errors=True)

    def _build_system(self, model: FaultModel) -> RecoverableSystem:
        system = RecoverableSystem(
            SystemConfig(cache=self.config.cache_factory()),
            store=self._build_store(model),
            log=FaultyLog(model),
        )
        register_workload_functions(system.registry)
        if self.obs is not None:
            system.attach_metrics(self.obs)
        return system

    def _drive(self, system: RecoverableSystem) -> None:
        """Run the workload until it completes or the machine dies.

        The three machine-death shapes: an injected crash
        (:class:`SimulatedCrash`), a detected-corrupt read surfacing
        through the cache (:class:`CorruptObjectError` — a real system
        would fail the operation and enter recovery), and a transient
        fault outliving the retry budget.
        """
        cfg = self.config
        workload = LogicalWorkload(
            LogicalWorkloadConfig(
                objects=cfg.objects,
                operations=cfg.operations,
                object_size=cfg.object_size,
                p_delete=cfg.p_delete,
            ),
            seed=cfg.workload_seed,
        )
        interleave = make_rng(f"torture-interleave:{cfg.workload_seed}")
        try:
            for op in workload.operations():
                system.execute(op)
                if interleave.random() < cfg.p_force:
                    system.log.force()
                if interleave.random() < cfg.p_purge:
                    system.purge()
        except (SimulatedCrash, CorruptObjectError, TransientStorageError):
            pass

    def _one_run(self, model: FaultModel, description: str) -> TortureOutcome:
        system = self._build_system(model)
        # Backup at workload start: pins the whole log (truncation
        # protection) and backs the quarantine path, so any corrupted
        # object can be reinstated by full-window replay.
        backup = BackupManager(system).take_backup()
        self._drive(system)
        # Recovery runs against an honest device: the machine that
        # recovers is not the one whose controller was dying.  (Faults
        # *during* recovery are a separate, follow-on campaign.)
        model.armed = False
        outcome = TortureOutcome(description, True, trace=model.trace())
        try:
            system.crash()
            system.recover(quarantine_backup=backup)
            verify_recovered(system)
            check_explainable(
                system.history,
                set(system.cache.uninstalled_operations()),
                stable_values_of(system.store),
                system.oracle(),
            )
        except Exception as exc:  # noqa: BLE001 - verdict, not control flow
            outcome.ok = False
            outcome.error = f"{type(exc).__name__}: {exc}"
        self._accumulate(system)
        self._reclaim_scratch()
        return outcome

    def _accumulate(self, system: RecoverableSystem) -> None:
        for name in _COUNTERS:
            value = getattr(system.stats, name)
            self._totals[name] = self._totals.get(name, 0) + value
            # Campaign-level counters: per-run IOStats die with each
            # system, so the shared registry carries the running sums.
            if self.obs is not None and value:
                self.obs.count(f"torture.{name}", value)

    # ------------------------------------------------------------------
    # campaigns
    # ------------------------------------------------------------------
    def count_points(self) -> int:
        """Number the workload's I/O points with a pure counting model."""
        model = FaultModel()
        system = self._build_system(model)
        self._drive(system)
        self._reclaim_scratch()
        return model.next_point

    def sweep(self) -> TortureReport:
        """Every I/O point × every must-survive fault kind, one run each.

        Torn writes are paired with an immediate crash (the most
        adversarial moment to lose the machine); corruption is silent
        (detected by a later read or the pre-recovery scrub); transient
        faults burn two attempts and must be invisible.
        """
        self._totals = {}
        points = self.count_points()
        report = TortureReport(mode="sweep", points=points)
        for point in range(points):
            for kind in SWEEP_KINDS:
                if kind is FaultKind.TRANSIENT:
                    spec = FaultSpec(point, kind, times=2)
                elif kind is FaultKind.TORN:
                    spec = FaultSpec(point, kind, crash=True)
                else:
                    spec = FaultSpec(point, kind)
                report.outcomes.append(
                    self._one_run(FaultModel([spec]), spec.describe())
                )
        report.totals = dict(self._totals)
        return report

    def fuzz(
        self,
        runs: int,
        seed: int = 0,
        rates: Optional[FuzzRates] = None,
    ) -> TortureReport:
        """``runs`` independent seeded fault schedules.

        Run ``i`` uses seed ``seed + i``; a failing run's outcome
        carries that seed, and ``fuzz(runs=1, seed=that_seed)``
        replays the identical schedule.
        """
        self._totals = {}
        report = TortureReport(mode="fuzz", points=self.count_points())
        for index in range(runs):
            run_seed = seed + index
            model = FaultModel.fuzz(run_seed, rates)
            outcome = self._one_run(model, f"fuzz seed={run_seed}")
            outcome.seed = run_seed
            report.outcomes.append(outcome)
        report.totals = dict(self._totals)
        return report

    # ------------------------------------------------------------------
    # Torture v2: faults during recovery itself
    # ------------------------------------------------------------------
    def recovery_points(self) -> int:
        """Number recovery's own I/O points with a counting run.

        The workload runs clean, the machine crashes, and a single
        clean recovery is performed with the model switched to the
        ``"recovery"`` phase — its reads and re-apply writes consume
        recovery-phase points without injecting anything.
        """
        model = FaultModel()
        system = self._build_system(model)
        backup = BackupManager(system).take_backup()
        self._drive(system)
        system.crash()
        model.enter_phase(RECOVERY_PHASE)
        system.recover(quarantine_backup=backup)
        self._reclaim_scratch()
        return model.points_in(RECOVERY_PHASE)

    def _one_recovery_run(
        self, model: FaultModel, description: str
    ) -> TortureOutcome:
        """Drive the workload, crash, then recover under supervision.

        Unlike :meth:`_one_run`, the model stays **armed** through
        recovery: the supervisor must climb the escalation ladder to
        convergence.  The run passes when the ladder lands in
        ``HEALTHY`` and both oracles agree — including after nested
        mid-recovery crashes (recovery-phase numbering is continuous
        across restarts, so one schedule can kill several successive
        attempts).
        """
        system = self._build_system(model)
        backup = BackupManager(system).take_backup()
        self._drive(system)
        system.crash()
        model.enter_phase(RECOVERY_PHASE)
        supervisor = RecoverySupervisor(
            system,
            backup=backup,
            config=SupervisorConfig(
                max_attempts=self.config.supervisor_attempts
            ),
        )
        report = supervisor.run()
        model.armed = False
        outcome = TortureOutcome(
            description,
            True,
            trace=model.trace(),
            attempts=report.attempts_used,
        )
        try:
            if report.final_health is not SystemHealth.HEALTHY:
                raise AssertionError(
                    f"escalation ladder did not converge: {report.summary()}"
                )
            verify_recovered(system)
            check_explainable(
                system.history,
                set(system.cache.uninstalled_operations()),
                stable_values_of(system.store),
                system.oracle(),
            )
        except Exception as exc:  # noqa: BLE001 - verdict, not control flow
            outcome.ok = False
            outcome.error = f"{type(exc).__name__}: {exc}"
            outcome.failure_report = report
        self._accumulate(system)
        self._reclaim_scratch()
        return outcome

    def sweep_recovery(self) -> TortureReport:
        """Every recovery-phase I/O point × every v2 fault kind.

        CRASH is the restartability probe (the machine dies cleanly at
        that recovery I/O); TORN pairs damage with an immediate crash;
        CORRUPT is silent (caught by the supervisor's post-convergence
        scrub when recovery itself wrote the garbage); TRANSIENT must be
        absorbed invisibly by recovery's retry-hardened I/O.  A handful
        of **nested** schedules then place three crash points so the
        second and third kill recoveries that are themselves restarts.
        """
        self._totals = {}
        points = self.recovery_points()
        report = TortureReport(mode="sweep-recovery", points=points)
        for point in range(points):
            for kind in RECOVERY_SWEEP_KINDS:
                if kind is FaultKind.TRANSIENT:
                    spec = FaultSpec(
                        point, kind, times=2, phase=RECOVERY_PHASE
                    )
                elif kind is FaultKind.TORN:
                    spec = FaultSpec(
                        point, kind, crash=True, phase=RECOVERY_PHASE
                    )
                else:
                    spec = FaultSpec(point, kind, phase=RECOVERY_PHASE)
                report.outcomes.append(
                    self._one_recovery_run(
                        FaultModel([spec]), spec.describe()
                    )
                )
        stride = max(1, points // 2)
        for start in range(min(points, 3)):
            specs = [
                FaultSpec(
                    start + i * stride,
                    FaultKind.CRASH,
                    phase=RECOVERY_PHASE,
                )
                for i in range(3)
            ]
            description = "nested:" + "+".join(
                spec.describe() for spec in specs
            )
            report.outcomes.append(
                self._one_recovery_run(FaultModel(specs), description)
            )
        report.totals = dict(self._totals)
        return report

    def fuzz_recovery(
        self,
        runs: int,
        seed: int = 0,
        rates: Optional[FuzzRates] = None,
    ) -> TortureReport:
        """Seeded fault schedules spanning *both* phases.

        The model stays armed from the first workload I/O through the
        last supervised recovery attempt, so one schedule can corrupt
        the forward run, crash the first recovery, and tear a re-apply
        write of the second.  Default rates keep per-attempt kill
        probability low enough that the default attempt budget's
        failure odds are negligible (~1e-7 per run).
        """
        self._totals = {}
        report = TortureReport(
            mode="fuzz-recovery", points=self.recovery_points()
        )
        if rates is None:
            rates = FuzzRates(torn=0.005, corrupt=0.005, crash=0.01)
        for index in range(runs):
            run_seed = seed + index
            model = FaultModel.fuzz(run_seed, rates)
            outcome = self._one_recovery_run(
                model, f"fuzz-recovery seed={run_seed}"
            )
            outcome.seed = run_seed
            report.outcomes.append(outcome)
        report.totals = dict(self._totals)
        return report
