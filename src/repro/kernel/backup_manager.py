"""Backup scheduling and media recovery for a RecoverableSystem.

The paper (Section 1) notes that media recovery needs the backup itself
to remain recoverable, and that fuzzy backups — taken while execution
continues — can violate the flush order the cache manager honoured for
the stable store.  The full logical-operation treatment is the
companion paper [10]; this manager provides the working substrate:

* **fuzzy backups** copied object-at-a-time, optionally with workload
  execution interleaved between copy steps;
* a **redo window**: the backup's ``start_lsi`` is the minimum of the
  dirty-object table's rSIs at backup start (uninstalled effects are
  not in the stable image either) and the next log position, so media
  recovery replays everything the image might be missing;
* **truncation protection**: while a backup is retained, the log
  manager refuses to reclaim its redo window, so restore+replay always
  has the records it needs;
* **restore**: replace the store with the image and run media-mode
  recovery (vSI test from the window start — see
  :meth:`repro.core.recovery.RecoveryManager.run`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.identifiers import ObjectId, StateId
from repro.core.recovery import RecoveryReport
from repro.kernel.system import RecoverableSystem
from repro.storage.backup import FuzzyBackup


class BackupManager:
    """Takes, retains and restores fuzzy backups of one system."""

    def __init__(self, system: RecoverableSystem) -> None:
        self.system = system
        self._retained: List[FuzzyBackup] = []
        self._tokens: Dict[int, int] = {}  # id(backup) -> protection token

    # ------------------------------------------------------------------
    # taking backups
    # ------------------------------------------------------------------
    def take_backup(
        self,
        interleave: Optional[Callable[[int, ObjectId], None]] = None,
    ) -> FuzzyBackup:
        """Copy every stable object into a new backup.

        ``interleave(step, obj)`` runs *between* object copies, so tests
        and demos can execute operations concurrently with the copy —
        that concurrency is what makes the backup fuzzy.
        """
        system = self.system
        start = self._redo_window_start()
        backup = FuzzyBackup(start_lsi=start)
        token = system.log.add_protection(start)
        try:
            for step, obj in enumerate(list(system.store.object_ids())):
                backup.copy_object(system.store, obj)
                if interleave is not None:
                    interleave(step, obj)
            backup.finish()
        except BaseException:
            system.log.remove_protection(token)
            raise
        self._retained.append(backup)
        self._tokens[id(backup)] = token
        return backup

    def _redo_window_start(self) -> StateId:
        """Where replay onto a backup started now must begin.

        Dirty (uninstalled) effects are in neither the store nor the
        image, so the window opens at the dirty table's minimum rSI; a
        fully-clean system only needs the records from here on.
        """
        system = self.system
        next_lsi = system.log.stable_end_lsi() + 1
        dirty_start = system.cache.dirty_table.min_rsi()
        if dirty_start is None:
            return next_lsi
        return min(dirty_start, next_lsi)

    # ------------------------------------------------------------------
    # retention
    # ------------------------------------------------------------------
    def retained(self) -> List[FuzzyBackup]:
        """Backups currently retained (oldest first)."""
        return list(self._retained)

    def discard(self, backup: FuzzyBackup) -> None:
        """Drop a backup and release its truncation protection."""
        if backup in self._retained:
            self._retained.remove(backup)
        token = self._tokens.pop(id(backup), None)
        if token is not None:
            self.system.log.remove_protection(token)

    def discard_older_than_latest(self) -> int:
        """Keep only the newest backup; returns how many were dropped."""
        dropped = 0
        while len(self._retained) > 1:
            self.discard(self._retained[0])
            dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # media recovery
    # ------------------------------------------------------------------
    def restore_latest(self) -> RecoveryReport:
        """Media recovery: restore the newest backup and replay.

        The system is crashed (volatile state gone, simulating the
        media failure taking the machine down), the store is replaced
        by the backup image, and media-mode redo recovery replays the
        retained log suffix from the backup's window start.
        """
        if not self._retained:
            raise ValueError("no backup retained")
        backup = self._retained[-1]
        self.system.crash()
        backup.restore_into(self.system.store)
        return self.system.recover(media_redo_start=backup.start_lsi)
