"""RecoverableSystem: the wired-together recoverable database.

A system owns one stable store, one log manager, one cache manager and a
function registry, and exposes the lifecycle the paper describes:

* ``execute(op)`` during normal operation (WAL + write-graph
  maintenance);
* ``purge()`` / ``flush_all()`` / ``checkpoint()`` cache management;
* ``crash()`` — volatile state (cache + log buffer) is lost;
* ``recover()`` — analysis + redo per the configured REDO test, then
  adoption of the redone operations into a fresh cache manager so that
  post-recovery flushing obeys the same write-graph rules as normal
  execution (Section 5's closing point).

A :class:`SystemHealth` state machine tracks the escalation ladder
(HEALTHY / RECOVERING / DEGRADED / FAILED): :meth:`crash` enters
RECOVERING, a converged :meth:`recover` returns to HEALTHY, and the
recovery supervisor (:mod:`repro.kernel.supervisor`) may instead land
the system in degraded read-only mode or declare it failed when its
escalation budgets run out.

The system also maintains the submitted history so verifiers can
compare recovered state with the oracle over the *stable* history (the
operations whose records survived on the stable log — operations whose
records were still in the volatile buffer at the crash never happened,
durably speaking).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set

from repro.cache.cache_manager import CacheManager
from repro.cache.config import CacheConfig
from repro.common.errors import DegradedModeError, SimulatedCrash
from repro.common.identifiers import NULL_SI, ObjectId, StateId
from repro.core.functions import FunctionRegistry, default_registry
from repro.core.history import History
from repro.core.operation import Operation
from repro.core.oracle import Oracle
from repro.core.recovery import RecoveryManager, RecoveryReport
from repro.core.redo import GeneralizedRedoTest, RedoTest
from repro.obs.metrics import MetricsRegistry, NULL_OBS
from repro.storage.backup import FuzzyBackup
from repro.storage.stable_store import StableStore
from repro.storage.stats import IOStats
from repro.wal.log_manager import LogManager


class SystemHealth(enum.Enum):
    """The system's position on the escalation ladder.

    * ``HEALTHY`` — normal operation; all reads and writes allowed.
    * ``RECOVERING`` — crashed, recovery not (successfully) finished;
      reads and writes raise until :meth:`RecoverableSystem.recover`
      converges (the supervisor drives retries here).
    * ``DEGRADED`` — recovery converged for every recoverable object
      but some objects were *lost* (quarantined with neither a backup
      version nor a log-reachable derivation).  Reads of surviving
      objects succeed; reads of lost objects and **all** writes raise
      :class:`~repro.common.errors.DegradedModeError`.
    * ``FAILED`` — the supervisor exhausted its budgets without
      converging; nothing is trustworthy and every access raises.
    """

    HEALTHY = "healthy"
    RECOVERING = "recovering"
    DEGRADED = "degraded"
    FAILED = "failed"


@dataclass
class SystemConfig:
    """Configuration for one RecoverableSystem."""

    cache: CacheConfig = field(default_factory=CacheConfig)
    redo_test: RedoTest = field(default_factory=GeneralizedRedoTest)
    #: Automatic checkpointing: write a checkpoint record (and truncate
    #: the installed log prefix) whenever this many log bytes have
    #: accumulated since the last checkpoint.  None = manual only.
    checkpoint_every_bytes: Optional[int] = None
    #: Whether automatic checkpoints truncate the log.
    truncate_on_checkpoint: bool = True
    #: Group-commit WAL: prefix forces that must touch the device widen
    #: to the whole log buffer so adjacent force requests in an install
    #: batch share one stable-log write (see LogManager.force_through).
    group_commit: bool = False
    #: Timer-driven group commit: force the log buffer every this many
    #: milliseconds as well as on piggyback requests, coalescing forces
    #: *across* install batches.  Implies :attr:`group_commit`.  The
    #: timer thread starts with the system and stops at :meth:`close`.
    group_commit_interval_ms: Optional[float] = None
    #: Stable-store backend built when no explicit ``store`` is passed
    #: to the system, resolved through :func:`repro.storage.make_store`
    #: (``"memory"``, ``"file"``, ``"logstore"``).  None keeps the
    #: classic default, the in-memory simulated store.
    store_backend: Optional[str] = None
    #: Database directory for durable ``store_backend`` values; ignored
    #: by the in-memory backend.
    store_root: Optional[str] = None

    def fresh_cache_config(self) -> CacheConfig:
        """Cache config for the post-recovery cache manager."""
        return self.cache


class RecoverableSystem:
    """A complete simulated recoverable system."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        registry: Optional[FunctionRegistry] = None,
        store: Optional[StableStore] = None,
        log: Optional[LogManager] = None,
    ) -> None:
        self.config = config if config is not None else SystemConfig()
        self.registry = (
            registry if registry is not None else default_registry()
        )
        self.stats = IOStats()
        # Adopt pre-existing ledgers rather than discarding them: a
        # file-backed store may already have quarantined corrupt frames
        # while loading its directory, and those counts must survive
        # the switch to the shared ledger.
        if store is None and self.config.store_backend is not None:
            # Backend selected by name (the make_store registry): the
            # config owns the policy, the system owns the instance.
            from repro.storage.registry import make_store

            store = make_store(
                self.config.store_backend, self.config.store_root
            )
        adopted = []
        for component in (store, log):
            if component is None:
                continue
            prior = getattr(component, "stats", None)
            if prior is not None and not any(prior is p for p in adopted):
                self.stats.absorb(prior)
                adopted.append(prior)
            component.stats = self.stats
        self.store = store if store is not None else StableStore(self.stats)
        self.log = log if log is not None else LogManager(self.stats)
        if self.config.group_commit:
            self.log.group_commit = True
        if self.config.group_commit_interval_ms is not None:
            # A timer force always takes the whole buffer, so the widened
            # group-commit accounting is the accurate one.
            self.log.group_commit = True
            self.log.start_group_commit_timer(
                self.config.group_commit_interval_ms / 1000.0
            )
        self.cache = CacheManager(
            self.store, self.log, self.registry, self.config.cache, self.stats
        )
        self.history = History()
        self._crashed = False
        self._lost_lsis: set = set()
        self.last_report: Optional[RecoveryReport] = None
        #: The supervisor's structured verdict from the most recent
        #: supervised recovery (set by callers that drive one, e.g.
        #: ``PersistentSystem.open(supervisor_config=...)``).
        self.last_failure_report = None
        self._tracer = None
        #: The system's observability hub.  NULL_OBS (a no-op null
        #: object) until :meth:`attach_metrics` installs a registry;
        #: re-wired into every fresh cache manager across crash/recover.
        self.obs = NULL_OBS
        self._checkpoint_marker = 0
        #: Escalation-ladder position (see :class:`SystemHealth`).
        #: Writes go through the ``health`` property so every transition
        #: is emitted (and lands in an attached flight recorder).
        self._health = SystemHealth.HEALTHY
        #: Objects declared lost by the supervisor when entering
        #: DEGRADED; reads of these raise until an operator intervenes.
        self.lost_objects: Set[ObjectId] = set()
        #: Objects quarantined by the most recent recover() attempt,
        #: mapped to the vSI their (damaged) stored version claimed —
        #: the supervisor compares post-recovery vSIs against these to
        #: classify each quarantined object as restored or lost.
        self.last_quarantined: Dict[ObjectId, StateId] = {}

    def attach_metrics(
        self, registry: Optional[MetricsRegistry] = None
    ) -> MetricsRegistry:
        """Attach (or create) the system's metrics registry.

        The registry absorbs the existing counter ledgers as collectors
        (``io.*`` from :class:`~repro.storage.stats.IOStats`,
        ``engine.*`` from the live write-graph engine's ``stats()``) and
        is wired into the log manager, cache manager and engine so hot
        paths record latencies into it.  Survives crash/recover.
        """
        if registry is None:
            registry = MetricsRegistry()
        self.obs = registry
        registry.add_collector("io", self.stats.snapshot)
        registry.add_collector("engine", lambda: dict(self.engine.stats()))
        self._wire_obs()
        return registry

    def _wire_obs(self) -> None:
        """Point the current component set at the system registry."""
        self.log.obs = self.obs
        self.cache.set_obs(self.obs)

    def attach_tracer(self, tracer=None):
        """Attach (or create) an event tracer; survives crash/recover.

        The tracer is a *sink* on the system's metrics registry (one is
        created on demand): events such as ``execute``/``install``/
        ``evict`` flow through ``registry.emit`` to every subscriber.
        Returns the tracer so callers can inspect
        :attr:`repro.analysis.trace.Tracer.events`.
        """
        if tracer is None:
            from repro.analysis.trace import Tracer

            tracer = Tracer()
        if not self.obs.enabled:
            self.attach_metrics()
        self._tracer = tracer
        self.obs.subscribe(tracer)
        return tracer

    @property
    def health(self) -> SystemHealth:
        """Escalation-ladder position (see :class:`SystemHealth`)."""
        return self._health

    @health.setter
    def health(self, value: SystemHealth) -> None:
        previous = self._health
        self._health = value
        if value is not previous:
            # NULL_OBS makes this free when no registry is attached;
            # with one attached, the transition reaches every sink —
            # including the flight recorder, which self-dumps on FAILED.
            self.obs.emit(
                "health.transition",
                **{"from": previous.value, "to": value.value},
            )

    # ------------------------------------------------------------------
    # normal operation
    # ------------------------------------------------------------------
    def execute(self, op: Operation) -> Dict[ObjectId, Any]:
        """Submit one operation in conflict order."""
        if self._crashed:
            raise RuntimeError("system is crashed; call recover() first")
        if self.health is SystemHealth.DEGRADED:
            raise DegradedModeError(
                f"system is degraded (lost objects: "
                f"{sorted(map(str, self.lost_objects))}); writes are "
                f"disabled until the lost objects are restored"
            )
        if self.health is SystemHealth.FAILED:
            raise RuntimeError("system is FAILED; recovery did not converge")
        # Execute first: a failing operation must leave neither a log
        # record nor a history entry.
        try:
            writes = self.cache.execute(op)
        except SimulatedCrash:
            # An injected crash fired *inside* execution (a flush driven
            # by capacity pressure, a faulted device write) after the
            # operation was already logged.  The record may even have
            # been forced by that flush's WAL step, so the operation's
            # durability is decided at crash() like any other — it must
            # be on the history for the verifier's oracle to agree.
            if op.lsi > NULL_SI:
                self.history.append(op)
            raise
        self.history.append(op)
        self._maybe_auto_checkpoint()
        return writes

    def _maybe_auto_checkpoint(self) -> None:
        threshold = self.config.checkpoint_every_bytes
        if threshold is None:
            return
        accumulated = self.stats.log_bytes - self._checkpoint_marker
        if accumulated >= threshold:
            self.checkpoint(truncate=self.config.truncate_on_checkpoint)
            self._checkpoint_marker = self.stats.log_bytes

    def read(self, obj: ObjectId) -> Any:
        """Read the current value of ``obj`` (through the cache).

        In DEGRADED health, reads of surviving objects still succeed —
        that is the point of degraded read-only mode — while reads of
        the lost objects raise, loudly, instead of returning a silently
        wrong ``None``.
        """
        if self._crashed:
            raise RuntimeError("system is crashed; call recover() first")
        if self.health is SystemHealth.FAILED:
            raise RuntimeError("system is FAILED; recovery did not converge")
        if self.health is SystemHealth.DEGRADED and obj in self.lost_objects:
            raise DegradedModeError(
                f"{obj!r} was lost (no backup version, no log-reachable "
                f"derivation); its value is unavailable in degraded mode"
            )
        return self.cache.read_object(obj)

    def peek(self, obj: ObjectId) -> Any:
        """Read without I/O accounting; works even while crashed (it
        inspects whatever survives)."""
        return self.cache.peek_object(obj)

    def purge(self) -> bool:
        """Install one write-graph node (PurgeCache)."""
        return self.cache.purge()

    @property
    def engine(self):
        """The cache manager's live write-graph engine (rW or W)."""
        return self.cache.engine

    def flush_all(self) -> int:
        """Install every uninstalled operation."""
        return self.cache.flush_all()

    def checkpoint(self, truncate: bool = False) -> StateId:
        """Write a checkpoint record; optionally truncate the log."""
        return self.cache.checkpoint(truncate=truncate)

    # ------------------------------------------------------------------
    # crash and recovery
    # ------------------------------------------------------------------
    def crash(self) -> List[Operation]:
        """Lose all volatile state; returns the durably-lost operations.

        The cache and the volatile log buffer are discarded.  Operations
        whose records had not reached the stable log are removed from
        the history — durably, they never happened.
        """
        lost_lsis = set(self.log.buffered_lsis())
        self.log.crash()
        lost = [op for op in self.history if op.lsi in lost_lsis]
        self._lost_lsis = lost_lsis
        self.cache = CacheManager(
            self.store,
            self.log,
            self.registry,
            self.config.fresh_cache_config(),
            self.stats,
        )
        self.cache.set_obs(self.obs)
        self._crashed = True
        self.health = SystemHealth.RECOVERING
        return lost

    def recover(
        self,
        media_redo_start: Optional[StateId] = None,
        quarantine_backup: Optional["FuzzyBackup"] = None,
    ) -> RecoveryReport:
        """Run analysis + redo and adopt the outcome.

        ``media_redo_start`` enables media-recovery mode after a backup
        restore: the redo scan starts at the backup-start lSI with the
        per-object vSI test (see RecoveryManager.run).

        Before either pass runs, the stable store is scrubbed: stored
        versions that fail their integrity check (torn writes, bit rot)
        are **quarantined** rather than replayed over, and recovery
        falls back to media mode for the whole store — corrupt objects
        are reinstated from ``quarantine_backup``'s image when one is
        supplied (absent objects replay from scratch), and the redo
        scan widens to the backup window (or the retained log's start)
        so repeat-history repairs the quarantined objects while the vSI
        test bypasses the intact ones.

        The widened window is recorded on the stable store
        (``media_redo_pending``) until a recovery completes: a restored
        version is *old*, so if the widened redo is itself interrupted
        by a crash, the restarted recovery re-widens rather than
        narrowly replaying over the stale version.
        """
        self.health = SystemHealth.RECOVERING
        self.last_quarantined = {}
        # A prior attempt's media restore that never finished its
        # widened redo: the restored versions are still old, so this
        # attempt must widen too (restartability across the restore).
        pending = getattr(self.store, "media_redo_pending", None)
        if pending is not None:
            media_redo_start = (
                pending
                if media_redo_start is None
                else min(media_redo_start, pending)
            )
        with self.obs.span("recovery.scrub", phase="recovery") as scrub_span:
            media_redo_start = self._quarantine_scrub(
                media_redo_start, quarantine_backup
            )
            scrub_span.tag(
                quarantined=sorted(map(str, self.last_quarantined))
            )
        if media_redo_start is not None:
            self.store.media_redo_pending = media_redo_start
        manager = RecoveryManager(
            self.log,
            self.store,
            self.registry,
            self.config.redo_test,
            self.stats,
        )
        with self.obs.span(
            "recovery.redo",
            phase="recovery",
            media=media_redo_start is not None,
        ) as redo_span:
            outcome = manager.run(media_redo_start=media_redo_start)
            redo_span.tag(redone=len(outcome.redone_ops))
        # Drop the operations whose records died in the volatile log
        # buffer — durably, they never happened.  The surviving history
        # deliberately includes operations truncated off the log: they
        # are installed, and the verification oracle needs them to
        # compute expected values.  On a *cold open* (no in-process
        # history, e.g. a persistent database directory) the stable log
        # is all we have.
        if len(self.history) == 0 and outcome.stable_ops:
            survivors = list(outcome.stable_ops)
        else:
            survivors = [
                op for op in self.history if op.lsi not in self._lost_lsis
            ]
        self.history = History()
        for op in survivors:
            self.history.append(op)
        with self.obs.span("recovery.adopt", phase="recovery"):
            self.cache = CacheManager(
                self.store,
                self.log,
                self.registry,
                self.config.fresh_cache_config(),
                self.stats,
            )
            self.cache.set_obs(self.obs)
            self.cache.adopt_recovery(outcome.volatile, outcome.redone_ops)
        self._crashed = False
        self.health = SystemHealth.HEALTHY
        self.lost_objects = set()
        self.store.media_redo_pending = None
        self.last_report = outcome.report
        return outcome.report

    def _quarantine_scrub(
        self,
        media_redo_start: Optional[StateId],
        backup: Optional["FuzzyBackup"],
    ) -> Optional[StateId]:
        """Quarantine checksum-failing versions; widen the redo window.

        Returns the (possibly lowered) ``media_redo_start``.  With no
        corruption detected this is a no-op and recovery proceeds in
        whatever mode the caller asked for.
        """
        corrupt = self.store.scrub()
        if not corrupt:
            return media_redo_start
        for obj in corrupt:
            # Record the vSI the damaged version claimed: damage keeps
            # the intended vSI, so "did something at least this recent
            # come back?" is exactly the restored-vs-lost question the
            # supervisor asks after redo.
            self.last_quarantined[obj] = self.store.vsi_of(obj)
            self.store.quarantine(obj)
            self.stats.quarantines += 1
            if backup is not None:
                backup.restore_object(self.store, obj)
        if backup is not None:
            fallback = backup.start_lsi
        else:
            # Best effort without an image: replay the whole retained
            # log.  Sufficient whenever the quarantined objects' full
            # derivation is still on the log (torture harnesses pin the
            # log via backup protection to guarantee it).
            fallback = self.log.stable_start_lsi()
        self.stats.media_recoveries += 1
        if media_redo_start is None:
            return fallback
        return min(media_redo_start, fallback)

    # ------------------------------------------------------------------
    # escalation ladder (driven by the recovery supervisor)
    # ------------------------------------------------------------------
    def enter_degraded(self, lost: Iterable[ObjectId]) -> None:
        """Enter degraded read-only mode, naming the lost objects.

        Recovery converged for everything it could redo, but the listed
        objects are gone (quarantined with no backup version and no
        log-reachable derivation).  Surviving objects stay readable;
        writes — which would let new state depend on the holes — raise
        :class:`~repro.common.errors.DegradedModeError`.
        """
        self.lost_objects = set(lost)
        self.health = SystemHealth.DEGRADED

    def mark_failed(self) -> None:
        """Declare recovery non-convergent: every access now raises."""
        self.health = SystemHealth.FAILED

    def close(self) -> None:
        """Release background resources (the group-commit timer).

        Idempotent; the system remains usable afterwards (forces fall
        back to the piggyback path).  Long-lived owners — the serving
        daemon, benchmark harnesses — call this on shutdown so the
        timer thread never outlives its system.
        """
        self.log.stop_group_commit_timer()

    # ------------------------------------------------------------------
    # verification support
    # ------------------------------------------------------------------
    def oracle(self, initial: Optional[Dict[ObjectId, Any]] = None) -> Oracle:
        """An oracle bound to this system's function registry."""
        return Oracle(self.registry, initial)

    def stable_values(self) -> Dict[ObjectId, Any]:
        """Raw stable-store values (verifiers only; no accounting)."""
        return {obj: version.value for obj, version in self.store.items()}
