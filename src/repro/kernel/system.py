"""RecoverableSystem: the wired-together recoverable database.

A system owns one stable store, one log manager, one cache manager and a
function registry, and exposes the lifecycle the paper describes:

* ``execute(op)`` during normal operation (WAL + write-graph
  maintenance);
* ``purge()`` / ``flush_all()`` / ``checkpoint()`` cache management;
* ``crash()`` — volatile state (cache + log buffer) is lost;
* ``recover()`` — analysis + redo per the configured REDO test, then
  adoption of the redone operations into a fresh cache manager so that
  post-recovery flushing obeys the same write-graph rules as normal
  execution (Section 5's closing point).

The system also maintains the submitted history so verifiers can
compare recovered state with the oracle over the *stable* history (the
operations whose records survived on the stable log — operations whose
records were still in the volatile buffer at the crash never happened,
durably speaking).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cache.cache_manager import CacheManager
from repro.cache.config import CacheConfig
from repro.common.identifiers import ObjectId, StateId
from repro.core.functions import FunctionRegistry, default_registry
from repro.core.history import History
from repro.core.operation import Operation
from repro.core.oracle import Oracle
from repro.core.recovery import RecoveryManager, RecoveryReport
from repro.core.redo import GeneralizedRedoTest, RedoTest
from repro.storage.stable_store import StableStore
from repro.storage.stats import IOStats
from repro.wal.log_manager import LogManager


@dataclass
class SystemConfig:
    """Configuration for one RecoverableSystem."""

    cache: CacheConfig = field(default_factory=CacheConfig)
    redo_test: RedoTest = field(default_factory=GeneralizedRedoTest)
    #: Automatic checkpointing: write a checkpoint record (and truncate
    #: the installed log prefix) whenever this many log bytes have
    #: accumulated since the last checkpoint.  None = manual only.
    checkpoint_every_bytes: Optional[int] = None
    #: Whether automatic checkpoints truncate the log.
    truncate_on_checkpoint: bool = True

    def fresh_cache_config(self) -> CacheConfig:
        """Cache config for the post-recovery cache manager."""
        return self.cache


class RecoverableSystem:
    """A complete simulated recoverable system."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        registry: Optional[FunctionRegistry] = None,
        store: Optional[StableStore] = None,
        log: Optional[LogManager] = None,
    ) -> None:
        self.config = config if config is not None else SystemConfig()
        self.registry = (
            registry if registry is not None else default_registry()
        )
        self.stats = IOStats()
        if store is not None:
            store.stats = self.stats
        if log is not None:
            log.stats = self.stats
        self.store = store if store is not None else StableStore(self.stats)
        self.log = log if log is not None else LogManager(self.stats)
        self.cache = CacheManager(
            self.store, self.log, self.registry, self.config.cache, self.stats
        )
        self.history = History()
        self._crashed = False
        self._lost_lsis: set = set()
        self.last_report: Optional[RecoveryReport] = None
        self._tracer = None
        self._checkpoint_marker = 0

    def attach_tracer(self, tracer=None):
        """Attach (or create) an event tracer; survives crash/recover.

        Returns the tracer so callers can inspect
        :attr:`repro.analysis.trace.Tracer.events`.
        """
        if tracer is None:
            from repro.analysis.trace import Tracer

            tracer = Tracer()
        self._tracer = tracer
        self.cache.tracer = tracer
        return tracer

    # ------------------------------------------------------------------
    # normal operation
    # ------------------------------------------------------------------
    def execute(self, op: Operation) -> Dict[ObjectId, Any]:
        """Submit one operation in conflict order."""
        if self._crashed:
            raise RuntimeError("system is crashed; call recover() first")
        # Execute first: a failing operation must leave neither a log
        # record nor a history entry.
        writes = self.cache.execute(op)
        self.history.append(op)
        self._maybe_auto_checkpoint()
        return writes

    def _maybe_auto_checkpoint(self) -> None:
        threshold = self.config.checkpoint_every_bytes
        if threshold is None:
            return
        accumulated = self.stats.log_bytes - self._checkpoint_marker
        if accumulated >= threshold:
            self.checkpoint(truncate=self.config.truncate_on_checkpoint)
            self._checkpoint_marker = self.stats.log_bytes

    def read(self, obj: ObjectId) -> Any:
        """Read the current value of ``obj`` (through the cache)."""
        if self._crashed:
            raise RuntimeError("system is crashed; call recover() first")
        return self.cache.read_object(obj)

    def peek(self, obj: ObjectId) -> Any:
        """Read without I/O accounting; works even while crashed (it
        inspects whatever survives)."""
        return self.cache.peek_object(obj)

    def purge(self) -> bool:
        """Install one write-graph node (PurgeCache)."""
        return self.cache.purge()

    def flush_all(self) -> int:
        """Install every uninstalled operation."""
        return self.cache.flush_all()

    def checkpoint(self, truncate: bool = False) -> StateId:
        """Write a checkpoint record; optionally truncate the log."""
        return self.cache.checkpoint(truncate=truncate)

    # ------------------------------------------------------------------
    # crash and recovery
    # ------------------------------------------------------------------
    def crash(self) -> List[Operation]:
        """Lose all volatile state; returns the durably-lost operations.

        The cache and the volatile log buffer are discarded.  Operations
        whose records had not reached the stable log are removed from
        the history — durably, they never happened.
        """
        lost_lsis = set(self.log.buffered_lsis())
        self.log.crash()
        lost = [op for op in self.history if op.lsi in lost_lsis]
        self._lost_lsis = lost_lsis
        self.cache = CacheManager(
            self.store,
            self.log,
            self.registry,
            self.config.fresh_cache_config(),
            self.stats,
        )
        self.cache.tracer = self._tracer
        self._crashed = True
        return lost

    def recover(
        self, media_redo_start: Optional[StateId] = None
    ) -> RecoveryReport:
        """Run analysis + redo and adopt the outcome.

        ``media_redo_start`` enables media-recovery mode after a backup
        restore: the redo scan starts at the backup-start lSI with the
        per-object vSI test (see RecoveryManager.run).
        """
        manager = RecoveryManager(
            self.log,
            self.store,
            self.registry,
            self.config.redo_test,
            self.stats,
        )
        outcome = manager.run(media_redo_start=media_redo_start)
        # Drop the operations whose records died in the volatile log
        # buffer — durably, they never happened.  The surviving history
        # deliberately includes operations truncated off the log: they
        # are installed, and the verification oracle needs them to
        # compute expected values.  On a *cold open* (no in-process
        # history, e.g. a persistent database directory) the stable log
        # is all we have.
        if len(self.history) == 0 and outcome.stable_ops:
            survivors = list(outcome.stable_ops)
        else:
            survivors = [
                op for op in self.history if op.lsi not in self._lost_lsis
            ]
        self.history = History()
        for op in survivors:
            self.history.append(op)
        self.cache = CacheManager(
            self.store,
            self.log,
            self.registry,
            self.config.fresh_cache_config(),
            self.stats,
        )
        self.cache.adopt_recovery(outcome.volatile, outcome.redone_ops)
        self.cache.tracer = self._tracer
        self._crashed = False
        self.last_report = outcome.report
        return outcome.report

    # ------------------------------------------------------------------
    # verification support
    # ------------------------------------------------------------------
    def oracle(self, initial: Optional[Dict[ObjectId, Any]] = None) -> Oracle:
        """An oracle bound to this system's function registry."""
        return Oracle(self.registry, initial)

    def stable_values(self) -> Dict[ObjectId, Any]:
        """Raw stable-store values (verifiers only; no accounting)."""
        return {obj: version.value for obj, version in self.store.items()}
