"""Restartable recovery supervision: the escalation ladder.

Recovery itself is idempotent (Theorem 2; :mod:`repro.core.recovery`'s
restartability note), but something still has to *drive* it when the
device keeps misbehaving while recovery runs: re-call ``recover()``
after a mid-recovery crash, decide when a corrupt read warrants
quarantine plus media restore, and — when objects are genuinely
unrecoverable — stop retrying and land the system somewhere safe
instead of looping forever.  That driver is the
:class:`RecoverySupervisor`, and its policy is an explicit escalation
ladder with budgets:

1. **bounded retry / restart** — a transient fault or an injected crash
   inside recovery is answered by running recovery again from scratch,
   with the same exponential backoff (jitter + max-delay cap, injectable
   sleep) the hardened write paths use (:mod:`repro.common.retry`);
2. **quarantine + media restore** — a checksum failure surfacing during
   recovery is left for the next attempt's pre-recovery scrub, which
   quarantines the damaged version and reinstates it from the backup
   image (when media restore is allowed) before widening the redo scan;
3. **degraded read-only mode** — when recovery converges but some
   quarantined objects never came back (no backup version, no
   log-reachable derivation), the system enters
   :attr:`~repro.kernel.system.SystemHealth.DEGRADED`: surviving
   objects stay readable, writes raise
   :class:`~repro.common.errors.DegradedModeError`;
4. **failed** — attempts or deadline exhausted without convergence.

Every run produces a structured :class:`FailureReport` — the
per-attempt fault trace, each escalation decision, the objects lost and
restored, and how much of the attempt/deadline budget was consumed —
renderable via :func:`repro.analysis.logstats.failure_summary` and
surfaced by ``python -m repro torture``.

Lost-vs-restored classification uses the vSIs the damaged versions
*claimed*: torn/corrupt damage preserves the intended vSI, so after a
converged recovery an object is restored iff its current version is at
least that recent (``cache.vsi_of(obj) >= claimed``) — a later version
can only come from repeating history, and an older one (or none) means
the derivation was out of reach.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.errors import (
    CorruptObjectError,
    SimulatedCrash,
    TransientStorageError,
)
from repro.common.identifiers import ObjectId, StateId
from repro.common.retry import DEFAULT_MAX_DELAY, backoff_delay
from repro.kernel.system import RecoverableSystem, SystemHealth
from repro.storage.backup import FuzzyBackup


@dataclass
class SupervisorConfig:
    """Budgets and policy knobs for one supervised recovery."""

    #: Total recovery attempts before declaring FAILED.
    max_attempts: int = 16
    #: Backoff between attempts (0.0 = no sleeping, the harness default).
    base_delay: float = 0.0
    max_delay: float = DEFAULT_MAX_DELAY
    jitter: float = 0.0
    #: Injectable sleep/clock so harnesses never block on real time.
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic
    rng: Optional[random.Random] = None
    #: Wall-clock budget in seconds (None = attempts budget only).
    deadline: Optional[float] = None
    #: Rung 2: reinstate quarantined objects from the backup image.
    #: Disabled by the degraded-mode campaigns to force object loss.
    allow_media_restore: bool = True
    #: Rung 3: accept object loss and serve reads.  When False, loss
    #: escalates straight to FAILED.
    allow_degraded: bool = True


@dataclass
class AttemptRecord:
    """What one recovery attempt did and how the supervisor answered."""

    index: int
    #: "converged" | "crashed" | "transient" | "corrupt" | "latent-damage"
    outcome: str
    #: The ladder rung taken next: "none" | "restart" | "retry" |
    #: "quarantine+media-restore" | "re-recover" | "degrade" | "fail"
    escalation: str
    error: str = ""
    #: Faults injected during this attempt, in schedule notation.
    faults: List[str] = field(default_factory=list)
    #: Objects this attempt's scrub quarantined.
    quarantined: List[ObjectId] = field(default_factory=list)


@dataclass
class FailureReport:
    """Structured outcome of one supervised recovery."""

    attempts: List[AttemptRecord] = field(default_factory=list)
    final_health: SystemHealth = SystemHealth.RECOVERING
    converged: bool = False
    objects_lost: List[ObjectId] = field(default_factory=list)
    objects_restored: List[ObjectId] = field(default_factory=list)
    max_attempts: int = 0
    deadline: Optional[float] = None
    elapsed: float = 0.0

    @property
    def attempts_used(self) -> int:
        return len(self.attempts)

    def fault_trace(self) -> List[str]:
        """All faults across all attempts, in order."""
        return [f for record in self.attempts for f in record.faults]

    def summary(self) -> str:
        """One status line, e.g. for the CLI."""
        state = self.final_health.value
        tail = ""
        if self.objects_lost:
            tail = f", lost {sorted(map(str, self.objects_lost))}"
        return (
            f"recovery {'converged' if self.converged else 'did not converge'}"
            f" in {self.attempts_used}/{self.max_attempts} attempts"
            f" ({len(self.fault_trace())} faults) -> {state}{tail}"
        )


class RecoverySupervisor:
    """Drives ``recover()`` to convergence (or a safe stop) on one system.

    The supervisor owns no recovery logic: each rung either re-enters
    :meth:`RecoverableSystem.recover` (whose pre-pass scrub performs
    quarantine and media restore) or moves the system's
    :class:`~repro.kernel.system.SystemHealth`.  Crucially it also
    re-scrubs *after* a nominally-converged attempt: a torn re-apply
    write during recovery that did not crash leaves latent stable
    damage, and converging on top of that would hand back a system
    whose next scrub finds garbage.
    """

    def __init__(
        self,
        system: RecoverableSystem,
        backup: Optional[FuzzyBackup] = None,
        config: Optional[SupervisorConfig] = None,
    ) -> None:
        self.system = system
        self.backup = backup
        self.config = config if config is not None else SupervisorConfig()
        #: Optional distributed-trace context: when a serving crash with
        #: a live request trace triggers the ladder, the watchdog sets
        #: this so recovery attempts appear in the request's trace tree.
        self.trace = None

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(self) -> FailureReport:
        """Recover until converged, degraded, or out of budget."""
        cfg = self.config
        system = self.system
        start = cfg.clock()
        report = FailureReport(
            max_attempts=cfg.max_attempts, deadline=cfg.deadline
        )
        #: obj -> vSI its damaged version claimed, merged across attempts.
        claimed: Dict[ObjectId, StateId] = {}
        restore_backup = self.backup if cfg.allow_media_restore else None

        for attempt in range(cfg.max_attempts):
            if (
                cfg.deadline is not None
                and cfg.clock() - start > cfg.deadline
            ):
                break
            system.stats.recovery_attempts += 1
            obs = system.obs
            if obs.enabled:
                obs.count("recovery.attempts")
            fault_mark = self._fault_mark()
            # One span per recovery attempt: tagged with the phase, the
            # fault points that fired during the attempt, and the
            # outcome/escalation the supervisor chose.
            trace_tags = (
                self.trace.child().tags() if self.trace is not None else {}
            )
            with obs.span(
                "recovery.attempt", attempt=attempt, phase="recovery",
                **trace_tags
            ) as span:
                try:
                    # Merge quarantine observations from *every* attempt,
                    # converged or not: an object quarantined by a run
                    # that later crashed stays quarantined in the store,
                    # and a fresh scrub will not see it again.
                    try:
                        system.recover(quarantine_backup=restore_backup)
                    finally:
                        claimed.update(system.last_quarantined)
                except SimulatedCrash as exc:
                    system.stats.recovery_restarts += 1
                    report.attempts.append(
                        self._record(
                            attempt, "crashed", "restart", exc, fault_mark,
                            span,
                        )
                    )
                    self._pause(attempt)
                    continue
                except TransientStorageError as exc:
                    report.attempts.append(
                        self._record(
                            attempt, "transient", "retry", exc, fault_mark,
                            span,
                        )
                    )
                    self._pause(attempt)
                    continue
                except CorruptObjectError as exc:
                    # The damage is stable; the next attempt's
                    # pre-recovery scrub quarantines it and (if allowed)
                    # restores from the backup image before widening the
                    # redo scan.
                    report.attempts.append(
                        self._record(
                            attempt,
                            "corrupt",
                            "quarantine+media-restore",
                            exc,
                            fault_mark,
                            span,
                        )
                    )
                    self._pause(attempt)
                    continue

                latent = system.store.scrub()
                if latent:
                    # Torn recovery writes that did not crash: stable
                    # damage exists under a cache that looks converged.
                    # Crash the volatile state and recover again — the
                    # scrub rung will quarantine what we just found.
                    record = self._record(
                        attempt, "latent-damage", "re-recover", None,
                        fault_mark, span,
                    )
                    record.error = (
                        f"post-recovery scrub found damage: "
                        f"{sorted(map(str, latent))}"
                    )
                    report.attempts.append(record)
                    system.crash()
                    self._pause(attempt)
                    continue

                return self._finish_obs(
                    self._converge(
                        report, attempt, claimed, fault_mark, start, span
                    )
                )

        # Budgets exhausted without convergence.
        system.mark_failed()
        report.final_health = system.health
        report.elapsed = cfg.clock() - start
        system.last_failure_report = report
        return self._finish_obs(report)

    # ------------------------------------------------------------------
    # rungs
    # ------------------------------------------------------------------
    def _converge(
        self,
        report: FailureReport,
        attempt: int,
        claimed: Dict[ObjectId, StateId],
        fault_mark: int,
        start: float,
        span=None,
    ) -> FailureReport:
        system = self.system
        lost = sorted(
            obj
            for obj, vsi in claimed.items()
            if system.cache.vsi_of(obj) < vsi
        )
        restored = sorted(obj for obj in claimed if obj not in lost)
        record = self._record(
            attempt, "converged", "none", None, fault_mark, span
        )
        if lost:
            if self.config.allow_degraded:
                record.escalation = "degrade"
                system.enter_degraded(lost)
            else:
                record.escalation = "fail"
                system.mark_failed()
        if span is not None:
            span.tag(
                escalation=record.escalation,
                lost=len(lost),
                restored=len(restored),
            )
        report.attempts.append(record)
        report.converged = True
        report.objects_lost = list(lost)
        report.objects_restored = list(restored)
        report.final_health = system.health
        report.elapsed = self.config.clock() - start
        system.last_failure_report = report
        return report

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _fault_mark(self) -> int:
        model = getattr(self.system.store, "model", None)
        return len(model.fired) if model is not None else 0

    def _record(
        self,
        index: int,
        outcome: str,
        escalation: str,
        exc: Optional[BaseException],
        fault_mark: int,
        span=None,
    ) -> AttemptRecord:
        model = getattr(self.system.store, "model", None)
        faults = (
            [spec.describe() for spec in model.fired[fault_mark:]]
            if model is not None
            else []
        )
        if span is not None:
            span.tag(
                outcome=outcome,
                escalation=escalation,
                faults=list(faults),
                quarantined=sorted(map(str, self.system.last_quarantined)),
            )
        return AttemptRecord(
            index=index,
            outcome=outcome,
            escalation=escalation,
            error="" if exc is None else f"{type(exc).__name__}: {exc}",
            faults=faults,
            quarantined=sorted(self.system.last_quarantined),
        )

    def _finish_obs(self, report: FailureReport) -> FailureReport:
        """Mirror the FailureReport tallies into the system registry."""
        obs = self.system.obs
        if obs.enabled:
            obs.count("recovery.supervised_runs")
            if report.converged:
                obs.count("recovery.converged_runs")
            obs.count("recovery.objects_lost", len(report.objects_lost))
            obs.count(
                "recovery.objects_restored", len(report.objects_restored)
            )
            obs.gauge("recovery.last_attempts", report.attempts_used)
            obs.gauge("recovery.last_elapsed_s", report.elapsed)
        return report

    def _pause(self, attempt: int) -> None:
        cfg = self.config
        if cfg.base_delay <= 0.0:
            return
        cfg.sleep(
            backoff_delay(
                attempt,
                base_delay=cfg.base_delay,
                max_delay=cfg.max_delay,
                jitter=cfg.jitter,
                rng=cfg.rng,
            )
        )
