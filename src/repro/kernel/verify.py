"""Oracle-based recoverability verification (executable Theorem 2).

After ``crash(); recover()`` the system must agree with the crash-free
oracle on the durable history: for every object, the current value (the
recovered cache over the stable store) equals the value the oracle
computes by replaying the stable history in conflict order.  Deleted
objects must read as absent.

This is the strong form of Theorem 2's "Recover(D, I) ... recovers D":
repeat-history redo reproduces the exact pre-crash (durable) state, not
merely an explainable one.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.identifiers import ObjectId
from repro.core.operation import TOMBSTONE
from repro.kernel.system import RecoverableSystem


class VerificationError(AssertionError):
    """Recovered state disagrees with the oracle."""


def verify_recovered(
    system: RecoverableSystem,
    initial: Optional[Dict[ObjectId, Any]] = None,
) -> Dict[ObjectId, Any]:
    """Check the recovered system against the oracle; returns the
    oracle's final state on success, raises VerificationError otherwise.
    """
    oracle = system.oracle(initial)
    final = oracle.replay(list(system.history))
    mismatches: List[str] = []
    for obj, expected in sorted(final.items()):
        actual = system.peek(obj)
        if expected is TOMBSTONE or expected is None:
            if actual is not None:
                mismatches.append(
                    f"{obj!r}: expected deleted/absent, found {actual!r}"
                )
            continue
        if actual != expected:
            mismatches.append(
                f"{obj!r}: expected {expected!r}, found {actual!r}"
            )
    if mismatches:
        raise VerificationError(
            "recovered state disagrees with oracle:\n  "
            + "\n  ".join(mismatches)
        )
    return final
