"""Crash injection.

Experiments need crashes at adversarial moments: after the k-th
operation, after a specific flush, or — for the torn-write
demonstration — *in the middle of* a non-atomic multi-object flush.
:class:`CrashInjector` arms those hooks on a RecoverableSystem and
raises :class:`CrashNow`, which drivers catch and convert into
``system.crash()``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.common.errors import SimulatedCrash
from repro.common.identifiers import ObjectId
from repro.core.operation import Operation
from repro.kernel.system import RecoverableSystem


class CrashNow(SimulatedCrash):
    """Raised by an armed hook at the injected crash point."""


class CrashInjector:
    """Arms crash points on a system and drives workloads through them.

    Typical use::

        injector = CrashInjector(system)
        survived = injector.run_until_crash(ops, crash_after_op=7)
        system.crash()
        system.recover()
    """

    def __init__(self, system: RecoverableSystem) -> None:
        self.system = system

    # ------------------------------------------------------------------
    # mid-flush tearing
    # ------------------------------------------------------------------
    def arm_mid_flush_crash(self, after_writes: int = 1) -> None:
        """Crash after ``after_writes`` writes of the next non-atomic
        multi-object flush (tears the flush set)."""
        remaining = {"count": after_writes}

        def hook(obj: ObjectId) -> None:
            if remaining["count"] == 0:
                raise CrashNow(f"torn before writing {obj!r}")
            remaining["count"] -= 1

        self.system.store.mid_write_hook = hook

    def disarm(self) -> None:
        """Remove any armed mid-flush hook."""
        self.system.store.mid_write_hook = None

    # ------------------------------------------------------------------
    # driving workloads
    # ------------------------------------------------------------------
    def run_until_crash(
        self,
        ops: Iterable[Operation],
        crash_after_op: Optional[int] = None,
        purge_every: Optional[int] = None,
        on_step: Optional[Callable[[int, Operation], None]] = None,
    ) -> int:
        """Execute ``ops``, optionally purging periodically, until a
        crash point fires or the workload ends.

        Returns the number of operations executed.  ``crash_after_op``
        crashes immediately after the given (0-based) operation index;
        an armed mid-flush hook can crash earlier, from inside a purge.
        A fired crash point leaves the system un-crashed — the caller
        performs ``system.crash()`` so that tests can inspect the
        pre-crash wreckage first.
        """
        executed = 0
        try:
            for index, op in enumerate(ops):
                self.system.execute(op)
                executed += 1
                if on_step is not None:
                    on_step(index, op)
                if purge_every and (index + 1) % purge_every == 0:
                    self.system.purge()
                if crash_after_op is not None and index >= crash_after_op:
                    raise CrashNow(f"after operation index {index}")
        except CrashNow:
            pass
        finally:
            self.disarm()
        return executed
