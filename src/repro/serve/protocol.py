"""Wire protocol: length-prefixed JSON frames over a stream socket.

One frame is a 4-byte little-endian unsigned length followed by that
many bytes of UTF-8 JSON.  Requests and responses are JSON objects:

Request::

    {"id": 7, "kind": "put", "obj": "user:42",
     "value": {"__bytes__": "<base64>"}, "deadline_ms": 250}

Response (success)::

    {"id": 7, "ok": true, "lsi": 19, "health": "healthy", ...}

Response (rejection)::

    {"id": 7, "ok": false,
     "error": {"code": "BACKPRESSURE",
               "message": "admission queue full (64 waiting)",
               "retry_after_ms": 40},
     "health": "recovering"}

Byte values travel as ``{"__bytes__": "<base64>"}`` envelopes (JSON has
no bytes type); the tombstone of a deleted object never travels — a
deleted or absent object reads as ``value: null``.  Every response
carries the server's current :class:`~repro.kernel.system.SystemHealth`
value so clients observe health transitions without polling
``/healthz``.

Requests may carry an optional ``"trace"`` field —
``{"id": "<trace id>", "span": "<parent span id>"}`` — minted by an
instrumented :class:`~repro.serve.client.DaemonClient`.  The field is
advisory: :func:`request_trace` parses it tolerantly (absent or
malformed from an old client → ``None``) and the server threads it
through its stage spans so ``python -m repro trace`` can reconstruct
the request's causal tree across processes.

The framing is symmetric (client and server use the same
:func:`send_frame` / :func:`recv_frame`), and deliberately boring: the
interesting machinery — admission, deadlines, the escalation ladder —
lives above it.
"""

from __future__ import annotations

import base64
import json
import socket
import struct
from typing import Any, Dict, Optional

from repro.obs.tracing import TRACE_FIELD, TraceContext
from repro.serve.errors import ProtocolError

#: Frame header: payload length, little-endian u32.
_LEN = struct.Struct("<I")

#: Refuse frames above this size (16 MiB): a corrupt length prefix must
#: not make a reader allocate gigabytes.
MAX_FRAME = 16 * 1024 * 1024

#: Request kinds the server understands.  ``promote`` is answered only
#: by a witness daemon (a plain primary rejects it with BAD_REQUEST) —
#: it is the operator-driven failover trigger.
REQUEST_KINDS = frozenset(
    {"ping", "get", "put", "delete", "apply", "health", "stats", "promote"}
)

#: Chaos-engineering kinds the *sharded* daemon accepts when started
#: with ``--allow-chaos`` (harness/CI use only): kill one shard worker
#: in place, and revive it through supervised recovery.
CHAOS_KINDS = frozenset({"kill_shard", "revive_shard"})

#: Replication kinds, exchanged on the primary's normal listener but
#: routed around the admission queue: a witness opens a connection and
#: sends ``repl_subscribe`` (carrying its durable watermark + epoch);
#: the primary pushes ``repl_batch`` frames down that connection and
#: the witness answers each with ``repl_ack`` (its new durable
#: watermark).  See :mod:`repro.replica.wire`.
REPLICATION_KINDS = frozenset({"repl_subscribe", "repl_ack"})

#: Stable rejection codes (mirrored by :mod:`repro.serve.errors`).
#: ``FENCED`` means the responder's replication epoch outranks the
#: caller's — a promoted witness refusing a zombie primary, or a fenced
#: old primary refusing writes it may no longer ack.
ERROR_CODES = frozenset(
    {
        "PROTOCOL",
        "BAD_REQUEST",
        "BACKPRESSURE",
        "DEADLINE",
        "UNAVAILABLE",
        "SHUTTING_DOWN",
        "DEGRADED",
        "FAILED",
        "FENCED",
        "INTERNAL",
    }
)


# ----------------------------------------------------------------------
# value envelopes
# ----------------------------------------------------------------------
def encode_value(value: Any) -> Any:
    """JSON-encode a stored value (bytes ride in a base64 envelope)."""
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": base64.b64encode(bytes(value)).decode("ascii")}
    return value


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, dict) and set(value) == {"__bytes__"}:
        try:
            return base64.b64decode(value["__bytes__"])
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad bytes envelope: {exc}") from None
    return value


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Serialize ``message`` and write one frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    sock.sendall(_LEN.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _LEN.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(
            f"incoming frame claims {length} bytes (> MAX_FRAME)"
        )
    payload = _recv_exact(sock, length, eof_ok=False)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def _recv_exact(
    sock: socket.socket, count: int, eof_ok: bool
) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/"
                f"{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# trace context
# ----------------------------------------------------------------------
def request_trace(request: Dict[str, Any]) -> Optional[TraceContext]:
    """The request's trace context, or ``None``.

    Never raises: old clients send no ``trace`` field and hand-rolled
    ones may send garbage; both must serve normally, just untraced.
    """
    return TraceContext.from_wire(request)


# ----------------------------------------------------------------------
# message constructors
# ----------------------------------------------------------------------
def ok_response(request_id: Any, health: str, **fields: Any) -> Dict[str, Any]:
    """A success response echoing the request id."""
    response: Dict[str, Any] = {"id": request_id, "ok": True, "health": health}
    response.update(fields)
    return response


def error_response(
    request_id: Any,
    code: str,
    message: str,
    health: str,
    retry_after_ms: Optional[int] = None,
    shard: Optional[int] = None,
) -> Dict[str, Any]:
    """A structured rejection.

    ``shard`` names the recovery domain the rejection came from, when
    the server is sharded — clients use it to scope backpressure hints
    to the one jammed shard instead of backing off everywhere.
    """
    assert code in ERROR_CODES, code
    error: Dict[str, Any] = {"code": code, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = int(retry_after_ms)
    response = {"id": request_id, "ok": False, "health": health, "error": error}
    if shard is not None:
        response["shard"] = int(shard)
    return response
