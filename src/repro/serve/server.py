"""The serving daemon: a supervised socket front end on one system.

``ServeDaemon`` wraps a :class:`~repro.kernel.system.RecoverableSystem`
behind the length-prefixed JSON protocol of
:mod:`repro.serve.protocol` and turns the escalation-ladder machinery
into an *operable* long-running process:

* **supervised startup** — the listener does not open until the
  :class:`~repro.serve.watchdog.ServingWatchdog` has driven recovery to
  a terminal state, so a daemon restarted over SIGKILL debris serves
  its first request from verified state;
* **health-gated admission** — requests are admitted when HEALTHY,
  queued (bounded backlog) while RECOVERING, answered read-only while
  DEGRADED (writes get a structured ``DEGRADED`` rejection), and
  refused outright when FAILED;
* **single-writer apply loop** — the kernel is not thread-safe, so all
  system access is confined to one apply thread fed by the admission
  queue; reader threads only frame, validate, gate and enqueue.
  Because every acknowledgment is sent *after* the operation's log
  record is forced stable, an acked write is durable by construction —
  the exactly-once visibility invariant the live-fire torture lane
  asserts;
* **deadlines and backpressure** — every request carries a deadline
  budget (``deadline_ms``, defaulted and capped by config); a request
  that expires while queued is answered ``DEADLINE`` without touching
  the system, and a full queue answers ``BACKPRESSURE`` with a
  ``retry_after_ms`` hint the client's backoff honors;
* **mid-serve crash watchdog** — a storage failure surfacing inside
  the apply loop discards volatile state and re-runs the supervisor
  ladder while admission keeps queueing; the in-flight request gets a
  retryable ``UNAVAILABLE`` answer (its durability is decided by the
  WAL, and the daemon only ever acks after a force);
* **graceful shutdown** — ``stop()`` (the SIGTERM path) stops
  admitting, drains the queue, forces the WAL, checkpoints, and closes;
  ``kill()`` models SIGKILL for harnesses: everything stops now and
  whatever the WAL did not force never happened.

The ``/metrics`` + ``/healthz`` HTTP endpoint
(:class:`~repro.obs.http.ObsHTTPServer`) runs alongside the socket
listener so the registry PR 5 built is scrapeable while faults fire.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.replica.sender import ReplicationConfig

from repro.common.errors import (
    CorruptObjectError,
    DegradedModeError,
    ReproError,
    SimulatedCrash,
    TransientStorageError,
)
from repro.core.operation import Operation, OpKind, delete_object
from repro.kernel.system import RecoverableSystem, SystemHealth
from repro.obs.flightrec import FlightRecorder
from repro.obs.http import ObsHTTPServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import TraceContext
from repro.serve import protocol
from repro.serve.errors import FencedError, ServerUnavailableError
from repro.serve.watchdog import ServingWatchdog, WatchdogConfig
from repro.storage.backup import FuzzyBackup

#: Request kinds that mutate state (gated in DEGRADED health).
WRITE_KINDS = frozenset({"put", "delete", "apply"})


@dataclass
class DaemonConfig:
    """Ports, budgets and shutdown policy for one daemon."""

    host: str = "127.0.0.1"
    #: TCP port for the request listener (0 = ephemeral).
    port: int = 0
    #: Port for the /metrics + /healthz HTTP endpoint (0 = ephemeral,
    #: None = no HTTP endpoint).
    http_port: Optional[int] = 0
    #: Bounded admission backlog: arrivals past this get BACKPRESSURE.
    max_queue: int = 64
    #: Deadline budget applied to requests that carry none.
    default_deadline_ms: int = 5_000
    #: Ceiling on client-supplied deadlines.
    max_deadline_ms: int = 60_000
    #: Backoff hint returned with BACKPRESSURE / UNAVAILABLE answers.
    retry_after_ms: int = 50
    #: Graceful shutdown: how long to drain the queue before answering
    #: the stragglers SHUTTING_DOWN.
    drain_deadline_s: float = 10.0
    #: Write a checkpoint during graceful shutdown (HEALTHY only).
    checkpoint_on_shutdown: bool = True
    #: Watchdog/supervisor policy (ladder budgets, restart cap).
    watchdog: WatchdogConfig = field(default_factory=WatchdogConfig)
    #: Flight-recorder persistence path (``flightrec.jsonl`` under the
    #: data dir when run via the CLI; None = in-memory ring only, still
    #: served by ``/debug/flightrec``).
    flightrec_path: Optional[str] = None
    #: Flight-recorder ring capacity (recent events kept).
    flightrec_capacity: int = 2048


@dataclass
class _Work:
    """One admitted request waiting for the apply loop."""

    request: Dict[str, Any]
    conn: "_Connection"
    deadline: float
    enqueued: float
    #: Distributed-trace context minted by the client (None untraced).
    trace: Optional[TraceContext] = None


class _Connection:
    """A client socket plus the lock that serializes frame sends."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.lock = threading.Lock()
        self.alive = True

    def send(self, message: Dict[str, Any]) -> None:
        """Best-effort frame send; a gone peer just marks us dead."""
        with self.lock:
            if not self.alive:
                return
            try:
                protocol.send_frame(self.sock, message)
            except (OSError, protocol.ProtocolError):
                self.alive = False

    def close(self) -> None:
        with self.lock:
            self.alive = False
            try:
                self.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self.sock.close()
            except OSError:
                pass


class ServeDaemon:
    """A long-running, supervised serving loop over one system."""

    def __init__(
        self,
        system: RecoverableSystem,
        config: Optional[DaemonConfig] = None,
        backup: Optional[FuzzyBackup] = None,
        replication: Optional["ReplicationConfig"] = None,
    ) -> None:
        self.system = system
        self.config = config if config is not None else DaemonConfig()
        if not system.obs.enabled:
            system.attach_metrics(MetricsRegistry())
        #: Crash flight recorder: taps the registry's event stream
        #: (health transitions, watchdog restarts, epoch changes) into
        #: a bounded ring persisted at ``flightrec_path``.
        self.flightrec = FlightRecorder(
            self.config.flightrec_path,
            capacity=self.config.flightrec_capacity,
        )
        system.obs.subscribe(self.flightrec)
        self.watchdog = ServingWatchdog(
            system, backup=backup, config=self.config.watchdog
        )
        #: Primary-side replication (None = standalone).  With a sender
        #: attached, every write's ack additionally waits for the
        #: witness's durable receipt — see :mod:`repro.replica.sender`.
        self.replication = None
        if replication is not None:
            from repro.replica.sender import ReplicationSender

            self.replication = ReplicationSender(self, replication)
        self.role = "primary"
        self._queue: "queue.Queue[_Work]" = queue.Queue(
            maxsize=max(1, self.config.max_queue)
        )
        self._listener: Optional[socket.socket] = None
        self._http: Optional[ObsHTTPServer] = None
        self._apply_thread: Optional[threading.Thread] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._readers: List[threading.Thread] = []
        self._conns: List[_Connection] = []
        self._conns_lock = threading.Lock()
        self._draining = threading.Event()
        self._stopping = threading.Event()
        self._apply_idle = threading.Event()
        self._apply_idle.set()
        self._started = False
        self._op_counter = 0
        #: Deadline of the request the apply thread is executing (the
        #: replication wait honors it; single apply thread, no races).
        self._deadline_in_flight: Optional[float] = None
        #: Trace context of the request the apply thread is executing
        #: (same single-thread pattern as the deadline).
        self._trace_in_flight: Optional[TraceContext] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> Optional[int]:
        """Bound request port once started."""
        if self._listener is None:
            return None
        return self._listener.getsockname()[1]

    @property
    def http_port(self) -> Optional[int]:
        """Bound scrape port once started (None when disabled)."""
        return self._http.port if self._http is not None else None

    def start(self) -> "ServeDaemon":
        """Supervised startup, then open the listener and HTTP endpoint.

        Recovery runs **before** the first connection can be accepted:
        a client that manages to connect has, by definition, a server
        whose escalation ladder already landed somewhere terminal.
        """
        if self._started:
            raise RuntimeError("daemon already started")
        self._started = True
        self.flightrec.record(
            "daemon.start",
            {"role": self.role, "health": self.system.health.value},
        )
        self.watchdog.supervised_startup()
        if self.config.http_port is not None:
            self._http = ObsHTTPServer(
                self._metrics_source,
                self._health_payload,
                host=self.config.host,
                port=self.config.http_port,
                ready_provider=self._ready_payload,
                flightrec_provider=lambda: self.flightrec,
            )
            self._http.start()
        listener = socket.create_server(
            (self.config.host, self.config.port), backlog=32
        )
        listener.settimeout(0.1)
        self._listener = listener
        self.flightrec.record(
            "daemon.serving",
            {
                "role": self.role,
                "health": self.system.health.value,
                "port": listener.getsockname()[1],
            },
        )
        self._apply_thread = threading.Thread(
            target=self._apply_loop, name="repro-serve-apply", daemon=True
        )
        self._apply_thread.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self, graceful: bool = True) -> int:
        """Shut down; the SIGTERM path when ``graceful``.

        Graceful order: stop admitting → drain the backlog (bounded by
        ``drain_deadline_s``; stragglers get SHUTTING_DOWN) → force the
        WAL → checkpoint (HEALTHY systems only) → close.  Returns the
        process exit status (0 on a clean drain).
        """
        if not self._started:
            return 0
        self._draining.set()
        if graceful:
            deadline = time.monotonic() + self.config.drain_deadline_s
            while time.monotonic() < deadline:
                if self._queue.empty() and self._apply_idle.is_set():
                    break
                time.sleep(0.01)
        self._stopping.set()
        # Apply and accept loops poll their stop flag; join them before
        # touching the kernel so the final force races nothing.
        for thread in (self._apply_thread, self._accept_thread):
            if thread is not None:
                thread.join(timeout=5.0)
        self._flush_queue("SHUTTING_DOWN", "server is shutting down")
        status = 0
        if graceful and not self.system._crashed:
            try:
                self.system.log.force()
                if (
                    self.config.checkpoint_on_shutdown
                    and self.system.health is SystemHealth.HEALTHY
                ):
                    self.system.checkpoint(truncate=True)
                if self.replication is not None:
                    # Nudge the witness to materialize what it holds;
                    # its receipt is not waited for (we are exiting).
                    self.replication.ship_checkpoint_hint()
            except (ReproError, SimulatedCrash):
                # A device that dies during the final force leaves a
                # cleanly recoverable WAL tail (the torn-tail repair
                # path); the next startup's supervised recovery owns it.
                status = 1
        # Closing the sockets unblocks reader threads parked in recv.
        self._close_everything()
        for thread in list(self._readers):
            thread.join(timeout=5.0)
        self.flightrec.record(
            "daemon.stop",
            {"graceful": graceful, "status": status,
             "health": self.system.health.value},
        )
        self.flightrec.close("sigterm" if graceful else "stop")
        return status

    def kill(self) -> None:
        """Abrupt stop (the SIGKILL model for in-process harnesses).

        No drain, no force, no checkpoint: connections die mid-frame
        and whatever sat in the volatile log buffer is lost.  The
        harness completes the simulation by calling ``system.crash()``
        before handing the storage to a restarted daemon.
        """
        if not self._started:
            return
        self._draining.set()
        self._stopping.set()
        self._close_everything()
        for thread in (self._apply_thread, self._accept_thread):
            if thread is not None:
                thread.join(timeout=5.0)
        for thread in list(self._readers):
            thread.join(timeout=5.0)
        self._flush_queue(None, None)

    def _close_everything(self) -> None:
        if self.replication is not None:
            self.replication.close()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            conn.close()
        if self._http is not None:
            self._http.stop()
            self._http = None

    def _flush_queue(
        self, code: Optional[str], message: Optional[str]
    ) -> None:
        """Answer (or drop, when ``code`` is None) any leftover work."""
        while True:
            try:
                work = self._queue.get_nowait()
            except queue.Empty:
                return
            if code is not None:
                work.conn.send(
                    protocol.error_response(
                        work.request.get("id"),
                        code,
                        message or "",
                        self.system.health.value,
                    )
                )

    # ------------------------------------------------------------------
    # accept + read side
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            listener = self._listener
            if listener is None:
                return
            try:
                sock, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn = _Connection(sock)
            with self._conns_lock:
                self._conns.append(conn)
            thread = threading.Thread(
                target=self._reader_loop,
                args=(conn,),
                name="repro-serve-conn",
                daemon=True,
            )
            thread.start()
            self._readers.append(thread)

    def _reader_loop(self, conn: _Connection) -> None:
        try:
            while not self._stopping.is_set():
                try:
                    request = protocol.recv_frame(conn.sock)
                except protocol.ProtocolError:
                    break
                except OSError:
                    break
                if request is None:
                    break
                self._admit(conn, request)
        finally:
            if self.replication is not None:
                self.replication.detach(conn)
            conn.close()

    def _admit(self, conn: _Connection, request: Dict[str, Any]) -> None:
        """The admission gate: validate, health-gate, enqueue."""
        obs = self.system.obs
        request_id = request.get("id")
        kind = request.get("kind")
        health = self.system.health
        if obs.enabled:
            obs.count("serve.requests")

        def reject(
            code: str, message: str, retry_after_ms: Optional[int] = None
        ) -> None:
            if obs.enabled:
                obs.count(f"serve.rejected.{code.lower()}")
            conn.send(
                protocol.error_response(
                    request_id, code, message, health.value, retry_after_ms
                )
            )

        if kind in protocol.REPLICATION_KINDS:
            # Replication frames route around the admission queue: the
            # subscribe/ack stream must flow while the backlog is
            # jammed, and the sender owns its own locking.
            if self.replication is None:
                reject(
                    "BAD_REQUEST",
                    "replication is not enabled on this server",
                )
                return
            self.replication.handle_frame(conn, request)
            return
        if kind not in protocol.REQUEST_KINDS:
            reject("BAD_REQUEST", f"unknown request kind {kind!r}")
            return
        # Liveness requests bypass the queue: they touch only
        # attributes and the registry snapshot, never the kernel, and
        # must answer even when the backlog is jammed.
        if kind in ("ping", "health", "stats"):
            conn.send(self._inline_answer(kind, request_id, health))
            return
        if self._draining.is_set():
            reject(
                "SHUTTING_DOWN",
                "server is draining for shutdown",
                self.config.retry_after_ms,
            )
            return
        if health is SystemHealth.FAILED:
            reject(
                "FAILED",
                "recovery did not converge; the system is failed",
            )
            return
        if health is SystemHealth.DEGRADED and kind in WRITE_KINDS:
            reject(
                "DEGRADED",
                "system is in degraded read-only mode (lost objects: "
                f"{sorted(map(str, self.system.lost_objects))})",
            )
            return
        # HEALTHY admits; RECOVERING queues against the bounded backlog.
        now = time.monotonic()
        budget_ms = request.get("deadline_ms")
        if budget_ms is None:
            budget_ms = self.config.default_deadline_ms
        try:
            budget_ms = min(int(budget_ms), self.config.max_deadline_ms)
        except (TypeError, ValueError):
            reject("BAD_REQUEST", f"bad deadline_ms: {budget_ms!r}")
            return
        work = _Work(
            request=request,
            conn=conn,
            deadline=now + budget_ms / 1000.0,
            enqueued=now,
            trace=protocol.request_trace(request) if obs.enabled else None,
        )
        try:
            self._queue.put_nowait(work)
        except queue.Full:
            reject(
                "BACKPRESSURE",
                f"admission queue full ({self.config.max_queue} waiting)",
                self.config.retry_after_ms,
            )
            return
        if obs.enabled:
            obs.gauge("serve.queue_depth", self._queue.qsize())

    def _inline_answer(
        self, kind: str, request_id: Any, health: SystemHealth
    ) -> Dict[str, Any]:
        if kind == "ping":
            from repro import __version__

            return protocol.ok_response(
                request_id, health.value, version=__version__
            )
        if kind == "health":
            return protocol.ok_response(
                request_id,
                health.value,
                lost_objects=sorted(map(str, self.system.lost_objects)),
                queue_depth=self._queue.qsize(),
                restarts=self.watchdog.restarts,
                draining=self._draining.is_set(),
            )
        # stats: the counter/gauge ledger, JSON-safe by construction.
        snapshot: Dict[str, Any] = {"counters": {}, "gauges": {}}
        if self.system.obs.enabled:
            snap = self.system.obs.snapshot()
            snapshot["counters"] = snap.get("counters", {})
            snapshot["gauges"] = snap.get("gauges", {})
        return protocol.ok_response(request_id, health.value, stats=snapshot)

    # ------------------------------------------------------------------
    # apply side (the only thread that touches the kernel)
    # ------------------------------------------------------------------
    def _apply_loop(self) -> None:
        while True:
            try:
                work = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._stopping.is_set():
                    return
                continue
            self._apply_idle.clear()
            try:
                self._apply_one(work)
            finally:
                self._apply_idle.set()
                if self.system.obs.enabled:
                    self.system.obs.gauge(
                        "serve.queue_depth", self._queue.qsize()
                    )

    def _apply_one(self, work: _Work) -> None:
        obs = self.system.obs
        request = work.request
        request_id = request.get("id")
        health = self.system.health
        now = time.monotonic()
        if now > work.deadline:
            if obs.enabled:
                obs.count("serve.rejected.deadline")
            work.conn.send(
                protocol.error_response(
                    request_id,
                    "DEADLINE",
                    f"deadline expired after {now - work.enqueued:.3f}s "
                    "in queue",
                    health.value,
                )
            )
            return
        # Health may have moved while the request sat in the backlog
        # (a watchdog restart ran): re-gate before touching the kernel.
        if health is SystemHealth.FAILED:
            work.conn.send(
                protocol.error_response(
                    request_id,
                    "FAILED",
                    "recovery did not converge; the system is failed",
                    health.value,
                )
            )
            return
        if obs.enabled:
            tags = work.trace.child().tags() if work.trace else {}
            obs.record_span(
                "ack.queue_ms", now - work.enqueued, kind=request.get("kind"),
                **tags
            )
        self._deadline_in_flight = work.deadline
        self._trace_in_flight = work.trace
        try:
            response = self._dispatch(request, request_id)
        except FencedError as exc:
            response = protocol.error_response(
                request_id, "FENCED", str(exc), self.system.health.value
            )
        except ServerUnavailableError as exc:
            # Replication could not confirm the witness's durable
            # receipt: the write executed locally but was NOT acked —
            # at-least-once retries are safe, acks are never produced
            # without the receipt.
            response = protocol.error_response(
                request_id,
                "UNAVAILABLE",
                str(exc),
                self.system.health.value,
                exc.retry_after_ms or self.config.retry_after_ms,
            )
        except DegradedModeError as exc:
            response = protocol.error_response(
                request_id, "DEGRADED", str(exc), self.system.health.value
            )
        except (SimulatedCrash, CorruptObjectError, TransientStorageError) as exc:
            # Mid-serve crash: the request's durability is whatever the
            # WAL made of it (never acked here), and the watchdog owns
            # getting the system back.  Answer retryable first so the
            # client is not stuck waiting out the whole recovery.
            work.conn.send(
                protocol.error_response(
                    request_id,
                    "UNAVAILABLE",
                    f"serving crash ({type(exc).__name__}: {exc}); "
                    "recovery in progress",
                    SystemHealth.RECOVERING.value,
                    self.config.retry_after_ms,
                )
            )
            self.watchdog.handle_serving_crash(exc, trace=work.trace)
            return
        except ReproError as exc:
            response = protocol.error_response(
                request_id,
                "BAD_REQUEST",
                f"{type(exc).__name__}: {exc}",
                self.system.health.value,
            )
        except Exception as exc:  # noqa: BLE001 - the loop must survive
            response = protocol.error_response(
                request_id,
                "INTERNAL",
                f"{type(exc).__name__}: {exc}",
                self.system.health.value,
            )
        if obs.enabled:
            obs.observe("serve.request_seconds", time.monotonic() - now)
        work.conn.send(response)

    def _dispatch(
        self, request: Dict[str, Any], request_id: Any
    ) -> Dict[str, Any]:
        kind = request["kind"]
        system = self.system
        health = system.health.value
        if kind == "get":
            obj = self._require_obj(request)
            value = system.read(obj)
            return protocol.ok_response(
                request_id,
                health,
                value=protocol.encode_value(value),
                vsi=system.cache.vsi_of(obj),
            )
        if kind == "put":
            obj = self._require_obj(request)
            value = protocol.decode_value(request.get("value"))
            self._op_counter += 1
            op = Operation(
                f"serve.put({obj})#{self._op_counter}",
                OpKind.PHYSICAL,
                reads=frozenset(),
                writes=frozenset({obj}),
                payload={obj: value},
            )
            return self._execute_durably(op, request_id)
        if kind == "delete":
            obj = self._require_obj(request)
            return self._execute_durably(delete_object(obj), request_id)
        if kind == "apply":
            fn = request.get("fn")
            reads = request.get("reads") or []
            writes = request.get("writes") or []
            if not isinstance(fn, str) or not fn:
                raise protocol.ProtocolError("apply requires a function name")
            if not writes:
                raise protocol.ProtocolError("apply requires a writeset")
            params = [
                protocol.decode_value(param)
                for param in (request.get("params") or [])
            ]
            self._op_counter += 1
            op = Operation(
                request.get("name")
                or f"serve.apply({fn})#{self._op_counter}",
                OpKind.LOGICAL,
                reads=frozenset(reads),
                writes=frozenset(writes),
                fn=fn,
                params=tuple(params),
            )
            return self._execute_durably(op, request_id, include_writes=True)
        if kind == "promote":
            raise protocol.ProtocolError(
                "this server is not a witness; there is nothing to promote"
            )
        raise protocol.ProtocolError(f"unhandled request kind {kind!r}")

    def _execute_durably(
        self,
        op: Operation,
        request_id: Any,
        include_writes: bool = False,
    ) -> Dict[str, Any]:
        """Execute, then force the WAL through the op before acking.

        The force is the acknowledgment contract: a response with
        ``ok: true`` means the operation's record is on the stable log,
        so no crash — SIGKILL included — can take it back.  With
        replication enabled the contract widens: the ack additionally
        waits for the witness's durable receipt of the record
        (semi-synchronous shipping), so the acked write survives the
        loss of either machine; if the receipt cannot be confirmed the
        client gets a retryable ``UNAVAILABLE`` and no ack.
        """
        system = self.system
        obs = system.obs
        trace = self._trace_in_flight
        if self.replication is not None and self.replication.fenced:
            raise FencedError(
                f"primary epoch {self.replication.epoch} is fenced; a "
                "promoted witness is serving"
            )
        # The ack pipeline, one ``ack.*_ms`` stage span per phase.  Each
        # stage is a direct child of the client's root span; the
        # replication wait additionally hands its context to the sender
        # so the shipped batch (and the witness's spans) nest under it.
        with obs.span("ack.apply_ms",
                      **(trace.child().tags() if trace else {})):
            writes = system.execute(op)
        with obs.span("ack.force_ms",
                      **(trace.child().tags() if trace else {})):
            system.log.force_through(op.lsi)
        if self.replication is not None:
            wait_ctx = trace.child() if trace else None
            with obs.span("ack.repl_wait_ms",
                          **(wait_ctx.tags() if wait_ctx else {})):
                self.replication.replicate(
                    op.lsi, self._deadline_in_flight, trace=wait_ctx
                )
        if obs.enabled:
            obs.count("serve.acked_writes")
        fields: Dict[str, Any] = {"lsi": op.lsi}
        epoch = self.current_epoch()
        if epoch is not None:
            fields["epoch"] = epoch
        if include_writes:
            fields["writes"] = {
                str(obj): protocol.encode_value(value)
                for obj, value in writes.items()
            }
        return protocol.ok_response(
            request_id, system.health.value, **fields
        )

    def current_epoch(self) -> Optional[int]:
        """This server's replication epoch (None when standalone)."""
        if self.replication is not None:
            return self.replication.epoch
        return None

    @staticmethod
    def _require_obj(request: Dict[str, Any]) -> str:
        obj = request.get("obj")
        if not isinstance(obj, str) or not obj:
            raise protocol.ProtocolError("request requires an 'obj' string")
        return obj

    # ------------------------------------------------------------------
    # HTTP endpoint providers
    # ------------------------------------------------------------------
    def _metrics_source(self) -> Optional[Any]:
        return self.system.obs if self.system.obs.enabled else None

    def _health_payload(self) -> Tuple[int, Dict[str, Any]]:
        """Liveness: 200 while the process can make progress.

        RECOVERING and DEGRADED are *live* states (the watchdog or an
        operator is working the problem; restarting the process would
        only repeat the ladder) — only FAILED, which explicitly needs
        an operator, answers 503.  Load balancers and rolling deploys
        should poll readiness (``/healthz?ready=1``) instead, which
        additionally requires HEALTHY, not-draining, and a caught-up
        replication pair.
        """
        health = self.system.health
        payload = {
            "health": health.value,
            "role": self.role,
            "lost_objects": sorted(map(str, self.system.lost_objects)),
            "queue_depth": self._queue.qsize(),
            "restarts": self.watchdog.restarts,
            "draining": self._draining.is_set(),
        }
        if self.replication is not None:
            payload.update(self.replication.status())
        status = 200 if health is not SystemHealth.FAILED else 503
        return status, payload

    def _ready_payload(self) -> Tuple[int, Dict[str, Any]]:
        """Readiness: 200 only when this server should receive traffic.

        Requires HEALTHY (not RECOVERING/DEGRADED/FAILED), not
        draining, and — when replication is enabled — an attached,
        unfenced witness (writes cannot be acked without its receipt).
        The witness daemon overrides this with its own caught-up rule.
        """
        _status, payload = self._health_payload()
        reasons = []
        health = self.system.health
        if health is not SystemHealth.HEALTHY:
            reasons.append(f"health is {health.value}")
        if self._draining.is_set():
            reasons.append("draining for shutdown")
        if self.replication is not None:
            if self.replication.fenced:
                reasons.append("fenced: a newer epoch is serving")
            elif not self.replication.attached:
                reasons.append(
                    "no witness attached; writes cannot be acknowledged"
                )
        payload["ready"] = not reasons
        payload["not_ready_reasons"] = reasons
        return (200 if not reasons else 503), payload
