"""The serving watchdog: recovery supervision for a live daemon.

A daemon has two moments where recovery must be *driven*, not just
possible:

* **startup** — the listener must not open until the system is in a
  servable state.  :meth:`ServingWatchdog.supervised_startup` runs the
  :class:`~repro.kernel.supervisor.RecoverySupervisor` escalation
  ladder over whatever the storage contains (a clean directory, the
  debris of a SIGKILL, a half-finished media restore) and only returns
  once the ladder lands somewhere terminal (HEALTHY, DEGRADED, or
  FAILED — the admission gate then enforces what each state may serve);
* **mid-serve crash** — an injected or real storage failure surfacing
  inside ``execute``/``force`` while requests are in flight.  The apply
  loop reports it to :meth:`handle_serving_crash`, which discards the
  volatile state (``system.crash()``) and re-runs the ladder while the
  admission gate queues new arrivals (health is RECOVERING throughout).

The watchdog never owns recovery policy — that is the supervisor's
ladder — it owns *when* the ladder runs and how many mid-serve restarts
are tolerated before the daemon stops trusting the device
(``max_restarts`` exhausted ⇒ the system is marked FAILED and every
subsequent request is refused).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.kernel.supervisor import (
    FailureReport,
    RecoverySupervisor,
    SupervisorConfig,
)
from repro.kernel.system import RecoverableSystem, SystemHealth
from repro.storage.backup import FuzzyBackup


@dataclass
class WatchdogConfig:
    """Restart policy for one serving daemon."""

    #: Ladder budgets for each supervised recovery the watchdog runs.
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)
    #: Mid-serve restarts tolerated over the daemon's lifetime; the
    #: next crash past the budget marks the system FAILED instead of
    #: recovering again.  ``None`` = unlimited (the torture default).
    max_restarts: Optional[int] = None


class ServingWatchdog:
    """Drives the escalation ladder on behalf of a serving loop."""

    def __init__(
        self,
        system: RecoverableSystem,
        backup: Optional[FuzzyBackup] = None,
        config: Optional[WatchdogConfig] = None,
    ) -> None:
        self.system = system
        self.backup = backup
        self.config = config if config is not None else WatchdogConfig()
        #: Mid-serve restarts performed so far.
        self.restarts = 0
        #: The most recent ladder verdict (startup or restart).
        self.last_report: Optional[FailureReport] = None

    # ------------------------------------------------------------------
    # startup
    # ------------------------------------------------------------------
    def supervised_startup(self) -> Optional[FailureReport]:
        """Bring the system to a servable state before the listener opens.

        A system that is already HEALTHY or DEGRADED (e.g. one
        ``PersistentSystem.open`` recovered moments ago) is served as
        is; anything else — a crashed system, one left RECOVERING by an
        abrupt kill — goes through the ladder.  Returns the ladder's
        report, or ``None`` when no recovery was needed.
        """
        if self.system.health in (SystemHealth.HEALTHY, SystemHealth.DEGRADED):
            return None
        return self._run_ladder()

    # ------------------------------------------------------------------
    # mid-serve crash
    # ------------------------------------------------------------------
    def handle_serving_crash(
        self, cause: BaseException, trace=None
    ) -> FailureReport:
        """Answer a crash that surfaced while serving traffic.

        Volatile state is discarded (operations whose records never
        reached the stable log never happened, durably — which is why
        the daemon only acknowledges after a WAL force) and the ladder
        runs to a terminal state.  Past the restart budget the system
        is marked FAILED instead: a device this unreliable should page
        an operator, not flap forever.

        ``trace`` is the crashed request's distributed-trace context,
        when it carried one: the ladder's per-attempt spans join that
        trace, so the tree shows recovery as a consequence of the
        request that tripped it.
        """
        system = self.system
        obs = system.obs
        if obs.enabled:
            obs.count("serve.crashes")
        obs.emit(
            "watchdog.crash",
            cause=type(cause).__name__,
            restarts=self.restarts,
        )
        cfg = self.config
        if (
            cfg.max_restarts is not None
            and self.restarts >= cfg.max_restarts
        ):
            if not system._crashed:
                system.crash()
            system.mark_failed()
            report = FailureReport(
                final_health=system.health,
                converged=False,
                max_attempts=cfg.supervisor.max_attempts,
            )
            self.last_report = report
            system.last_failure_report = report
            return report
        self.restarts += 1
        if obs.enabled:
            obs.count("serve.restarts")
        obs.emit("watchdog.restart", restarts=self.restarts)
        if not system._crashed:
            system.crash()
        return self._run_ladder(trace=trace)

    # ------------------------------------------------------------------
    # shared
    # ------------------------------------------------------------------
    def _run_ladder(self, trace=None) -> FailureReport:
        supervisor = RecoverySupervisor(
            self.system, backup=self.backup, config=self.config.supervisor
        )
        supervisor.trace = trace
        report = supervisor.run()
        self.last_report = report
        obs = self.system.obs
        if obs.enabled:
            obs.gauge("serve.watchdog_restarts", self.restarts)
        return report
