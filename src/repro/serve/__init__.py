"""The serving layer: an operable daemon over one recoverable system.

``repro.serve`` turns the kernel + escalation-ladder machinery into a
long-running process with an operator's contract:

* :class:`ServeDaemon` — supervised startup, health-gated admission,
  single-writer apply loop with force-before-ack durability, deadlines
  and backpressure, graceful (SIGTERM) and abrupt (SIGKILL-model)
  shutdown, and a ``/metrics`` + ``/healthz`` scrape endpoint;
* :class:`DaemonClient` / :class:`RetryPolicy` — the client library:
  jittered exponential backoff that honors server ``retry_after_ms``
  hints under an overall elapsed deadline budget;
* :class:`ServingWatchdog` / :class:`WatchdogConfig` — when the
  escalation ladder runs (before the listener opens; after a mid-serve
  crash) and how many restarts are tolerated;
* :mod:`repro.serve.protocol` — the length-prefixed JSON framing;
* :mod:`repro.serve.errors` — the typed rejections clients catch.

The live-fire torture lane (:mod:`repro.serve.livefire`, surfaced as
``python -m repro torture v3``) drives a client workload at a real
daemon under storage faults and kills, asserting every acknowledged
write survives recovery.

Sharded serving (:mod:`repro.serve.sharded`, ``python -m repro serve
--shards N``) fronts N independent recovery domains —
:class:`ShardedServeDaemon` with one apply thread, WAL stream, health
gate and watchdog per shard, a fence-protocol rendezvous for
cross-shard operations, and chaos endpoints used by the torture v4
lane (:mod:`repro.serve.livefire_shard`) to kill one shard and prove
the others keep serving.

Replication (:mod:`repro.replica`, ``--replicate`` /
``--witness-of``) pairs a primary with a witness that adopts and
continuously redoes its shipped WAL; client acks wait for the
witness's durable receipt, promotion is epoch-fenced and
operator-driven, and :class:`DaemonClient` takes ``failover`` targets
so applications ride through the switch.
"""

from repro.serve.client import RETRYABLE_CODES, DaemonClient, RetryPolicy
from repro.serve.livefire import (
    LiveFireConfig,
    LiveFireHarness,
    LiveFireOutcome,
    LiveFireReport,
)
from repro.serve.errors import (
    BackpressureError,
    BadRequestError,
    DeadlineExceededError,
    FencedError,
    ProtocolError,
    ServeError,
    ServerFailedError,
    ServerUnavailableError,
    ShuttingDownError,
)
from repro.serve.livefire_shard import (
    ShardLiveFireConfig,
    ShardLiveFireHarness,
    ShardLiveFireOutcome,
    ShardLiveFireReport,
)
from repro.serve.server import WRITE_KINDS, DaemonConfig, ServeDaemon
from repro.serve.sharded import ShardedDaemonConfig, ShardedServeDaemon
from repro.serve.watchdog import ServingWatchdog, WatchdogConfig

__all__ = [
    "BackpressureError",
    "BadRequestError",
    "DaemonClient",
    "DaemonConfig",
    "DeadlineExceededError",
    "FencedError",
    "LiveFireConfig",
    "LiveFireHarness",
    "LiveFireOutcome",
    "LiveFireReport",
    "ProtocolError",
    "RETRYABLE_CODES",
    "RetryPolicy",
    "ServeDaemon",
    "ServeError",
    "ServerFailedError",
    "ServerUnavailableError",
    "ServingWatchdog",
    "ShardLiveFireConfig",
    "ShardLiveFireHarness",
    "ShardLiveFireOutcome",
    "ShardLiveFireReport",
    "ShardedDaemonConfig",
    "ShardedServeDaemon",
    "ShuttingDownError",
    "WRITE_KINDS",
    "WatchdogConfig",
]
