"""Daemon client: framing, typed errors, retry with jittered backoff.

``DaemonClient`` speaks :mod:`repro.serve.protocol` to one daemon and
turns structured rejections into the exceptions of
:mod:`repro.serve.errors`.  Its retry loop is deliberately the same
shape as the kernel's (:func:`repro.common.retry.backoff_delay` with
full jitter under a ceiling) plus two serving-specific rules:

* **server hints win** — a rejection carrying ``retry_after_ms`` is
  backed off by at least that long (the server knows how jammed its
  queue is; the client's exponential schedule is only a floor);
* **hints are scoped to their shard** — a sharded daemon labels
  rejections with the recovery domain they came from, and the client
  keeps one backoff floor *per shard* (plus the object→shard map it
  learns from responses).  One jammed shard slows requests routed to
  that shard only; traffic to the other shards proceeds at full speed.
  Shard-less rejections (a single-kernel daemon, or a whole-daemon
  condition like draining) keep the legacy whole-client behavior;
* **deadlines are an overall budget** — ``RetryPolicy.deadline``
  caps *total elapsed time* across connects, sends, and backoff
  sleeps, mirroring the elapsed-budget cap ``retry_transient`` grew
  for exactly this reason: a retried request must never outlive the
  deadline its caller was promised.  When the budget runs out the
  client raises :class:`~repro.serve.errors.DeadlineExceededError`
  carrying the last server answer.

Transport failures (connection refused mid-restart, a connection that
dies when the daemon is SIGKILLed) are retried under the same policy —
every serving operation is either idempotent (get/put/delete re-apply
the same value) or replay-safe by the durability contract, so
at-least-once delivery over retries composes with the server's
force-before-ack into the exactly-once visibility the torture lane
checks.  Two transport rules refine the loop:

* **a stale connection gets one free retry** — when a *reused* socket
  dies mid-request (connection reset because the daemon drained and
  closed idle connections during a graceful SIGTERM, say), the failure
  tells us nothing about the server's current state.  The client
  reconnects and retries immediately without burning an attempt or
  backing off; only failures on a *fresh* connection (refused,
  reset during the very round-trip that opened it) count against the
  attempt budget.  This is bounded: the free retry always runs on a
  fresh connection, so at most one free retry precedes every counted
  attempt;
* **failover targets** — a client constructed with ``failover``
  addresses rotates to the next target on fresh-connection transport
  failures, on ``FENCED`` rejections (the server took itself out of
  service because a newer epoch exists — retrying *that* server can
  never help, but the promoted peer is usually the next target), and
  on whole-server ``UNAVAILABLE``/``SHUTTING_DOWN`` rejections (the
  peer may be serving).  Rotation preserves the attempt budget; with a
  single target a ``FENCED`` rejection raises immediately.

Clock and sleep are injectable so tests drive the policy without real
time passing.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import DegradedModeError
from repro.common.retry import DEFAULT_MAX_DELAY, backoff_delay
from repro.obs.metrics import NULL_OBS
from repro.obs.tracing import TraceContext
from repro.serve import protocol
from repro.serve.errors import (
    BackpressureError,
    BadRequestError,
    DeadlineExceededError,
    FencedError,
    ProtocolError,
    ServeError,
    ServerFailedError,
    ServerUnavailableError,
    ShuttingDownError,
)

#: Rejection codes the retry loop may answer with another attempt.
RETRYABLE_CODES = frozenset({"BACKPRESSURE", "UNAVAILABLE", "SHUTTING_DOWN"})

_CODE_TO_ERROR = {
    "PROTOCOL": ProtocolError,
    "BAD_REQUEST": BadRequestError,
    "BACKPRESSURE": BackpressureError,
    "DEADLINE": DeadlineExceededError,
    "UNAVAILABLE": ServerUnavailableError,
    "SHUTTING_DOWN": ShuttingDownError,
    "FENCED": FencedError,
    "FAILED": ServerFailedError,
}


@dataclass
class RetryPolicy:
    """How hard the client tries before giving up."""

    #: Total attempts (first try included).
    attempts: int = 8
    base_delay: float = 0.02
    max_delay: float = DEFAULT_MAX_DELAY
    #: Jitter fraction in [0, 1]; 1.0 = AWS-style full jitter.
    jitter: float = 1.0
    #: Overall elapsed budget in seconds (None = attempts budget only).
    deadline: Optional[float] = None
    #: Injectable time sources (tests pass stubs; nothing sleeps).
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic
    rng: Optional[random.Random] = None


class DaemonClient:
    """A retrying client for one :class:`~repro.serve.server.ServeDaemon`."""

    def __init__(
        self,
        host: str,
        port: int,
        policy: Optional[RetryPolicy] = None,
        deadline_ms: Optional[int] = None,
        connect_timeout: float = 5.0,
        failover: Optional[List[Tuple[str, int]]] = None,
        obs: Optional[Any] = None,
    ) -> None:
        self.host = host
        self.port = port
        #: Client-side observability.  With a real registry attached the
        #: client mints a trace per request, sends it on the wire, and
        #: records the root ``client.<kind>`` span; with the default
        #: NULL_OBS nothing is minted and requests carry no trace field.
        self.obs = obs if obs is not None else NULL_OBS
        #: Trace id of the most recent traced request (None untraced).
        self.last_trace: Optional[str] = None
        #: Ordered connect targets: the primary address first, then any
        #: failover addresses.  ``host``/``port`` always reflect the
        #: *current* target.
        self._targets: List[Tuple[str, int]] = [(host, port)]
        self._targets.extend((h, p) for h, p in (failover or []))
        self._target_index = 0
        self.policy = policy if policy is not None else RetryPolicy()
        #: Per-request deadline hint forwarded to the server (ms);
        #: ``None`` lets the server apply its configured default.
        self.deadline_ms = deadline_ms
        self.connect_timeout = connect_timeout
        self._sock: Optional[socket.socket] = None
        self._next_id = 0
        #: Responses the server acknowledged (``ok: true``) for write
        #: kinds, kept for harness-side durability auditing.
        self.acked: List[Dict[str, Any]] = []
        #: Per-shard backoff floors (monotonic deadlines) learned from
        #: shard-labeled retry hints; see the module docstring.
        self._shard_floors: Dict[int, float] = {}
        #: Object→shard map learned from shard-labeled responses.
        self._obj_shards: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(self.connect_timeout)
        self._sock = sock
        return sock

    def _disconnect(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = None

    def _rotate(self) -> bool:
        """Advance to the next failover target; False with only one."""
        if len(self._targets) <= 1:
            return False
        self._disconnect()
        self._target_index = (self._target_index + 1) % len(self._targets)
        self.host, self.port = self._targets[self._target_index]
        return True

    def close(self) -> None:
        """Drop the connection (idempotent)."""
        self._disconnect()

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the retry loop
    # ------------------------------------------------------------------
    def request(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Send one request, retrying per policy; returns the response.

        Raises the typed serve error for terminal rejections, and
        :class:`DeadlineExceededError` when the overall budget runs out
        while the condition was still retryable.
        """
        if not self.obs.enabled:
            return self._request(kind, None, **fields)
        # Root of the distributed trace: the span covers the full retry
        # loop, so its duration is the latency the caller experienced.
        trace = TraceContext.mint()
        self.last_trace = trace.trace_id
        with self.obs.span("client." + kind, **trace.tags()):
            return self._request(kind, trace, **fields)

    def _request(
        self, kind: str, trace: Optional[TraceContext], **fields: Any
    ) -> Dict[str, Any]:
        policy = self.policy
        start = policy.clock()
        self._next_id += 1
        message: Dict[str, Any] = {"id": self._next_id, "kind": kind}
        if self.deadline_ms is not None and "deadline_ms" not in fields:
            message["deadline_ms"] = self.deadline_ms
        if trace is not None:
            message[protocol.TRACE_FIELD] = trace.to_wire()
        message.update(fields)
        obj = fields.get("obj") if isinstance(fields.get("obj"), str) else None
        last_error: Optional[Exception] = None
        out_of_budget = False
        attempt = 0
        while attempt < policy.attempts:
            if self._out_of_budget(start):
                out_of_budget = True
                break
            self._await_shard_floor(obj, start)
            if self._out_of_budget(start):
                out_of_budget = True
                break
            reused = self._sock is not None
            try:
                response = self._round_trip(message)
            except (OSError, ProtocolError) as exc:
                # Transport failure: the daemon restarted, was killed,
                # or the stream desynced.  Reconnect and retry.
                self._disconnect()
                last_error = exc
                if reused:
                    # A reused connection can die for reasons that
                    # predate this request (the server drained and
                    # closed the idle socket during graceful shutdown):
                    # retry once on a fresh connection, free of charge.
                    continue
                self._rotate()
                attempt += 1
                if not self._pause(attempt - 1, start, None):
                    break
                continue
            shard = response.get("shard")
            if obj is not None and isinstance(shard, int):
                self._obj_shards[obj] = shard
            if response.get("ok"):
                if isinstance(shard, int):
                    self._shard_floors.pop(shard, None)
                if kind in ("put", "delete", "apply"):
                    self.acked.append(dict(response))
                return response
            error = response.get("error") or {}
            code = error.get("code", "INTERNAL")
            retry_after_ms = error.get("retry_after_ms")
            exc = self._as_exception(code, error.get("message", ""),
                                     retry_after_ms)
            if code == "FENCED" and self._rotate():
                # This server stood down for a newer epoch; try the
                # next target (usually the promoted witness).
                last_error = exc
                attempt += 1
                if not self._pause(attempt - 1, start, None):
                    break
                continue
            if code not in RETRYABLE_CODES:
                raise exc
            last_error = exc
            if code in ("UNAVAILABLE", "SHUTTING_DOWN"):
                # Whole-server conditions: the peer target (a promoted
                # witness, or the primary a witness still defers to)
                # may serve right now.  BACKPRESSURE stays put — it is
                # transient load, not a role problem.
                self._rotate()
            if isinstance(shard, int) and retry_after_ms is not None:
                # Shard-scoped hint: raise that shard's floor only.
                # The floor gate above makes *this* request (which is
                # bound for the same shard) honor it, while concurrent
                # requests to other shards back off on the exponential
                # schedule alone.
                self._shard_floors[shard] = max(
                    self._shard_floors.get(shard, 0.0),
                    policy.clock() + retry_after_ms / 1000.0,
                )
                retry_after_ms = None
            attempt += 1
            if not self._pause(attempt - 1, start, retry_after_ms):
                break
        # Budget exhaustion is a deadline condition; attempts exhaustion
        # re-raises the (typed, retryable) condition that kept failing.
        if out_of_budget or self._out_of_budget(start):
            raise DeadlineExceededError(
                f"request {kind!r} gave up after "
                f"{policy.clock() - start:.3f}s (deadline "
                f"{policy.deadline}s); last error: {last_error}"
            )
        if isinstance(last_error, ServeError):
            raise last_error
        raise ServerUnavailableError(
            f"request {kind!r} failed {policy.attempts} transport "
            f"attempts; last error: {last_error}"
        )

    def _round_trip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        sock = self._connect()
        protocol.send_frame(sock, message)
        response = protocol.recv_frame(sock)
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        return response

    def _await_shard_floor(self, obj: Optional[str], start: float) -> None:
        """Sleep out the target shard's backoff floor, if one is set.

        Only object-routed requests gate here (their shard is known
        from the learned map); the wait is capped by the remaining
        deadline budget so a long hint cannot push a request past the
        deadline its caller was promised.
        """
        if obj is None:
            return
        shard = self._obj_shards.get(obj)
        if shard is None:
            return
        floor = self._shard_floors.get(shard)
        if floor is None:
            return
        policy = self.policy
        now = policy.clock()
        wait = floor - now
        if wait <= 0.0:
            self._shard_floors.pop(shard, None)
            return
        if policy.deadline is not None:
            remaining = policy.deadline - (now - start)
            wait = min(wait, max(0.0, remaining))
        if wait > 0.0:
            policy.sleep(wait)

    def _out_of_budget(self, start: float) -> bool:
        policy = self.policy
        return (
            policy.deadline is not None
            and policy.clock() - start >= policy.deadline
        )

    def _pause(
        self,
        attempt: int,
        start: float,
        retry_after_ms: Optional[int],
    ) -> bool:
        """Back off before the next attempt; False = budget exhausted."""
        policy = self.policy
        if attempt >= policy.attempts - 1:
            return False
        delay = backoff_delay(
            attempt,
            base_delay=policy.base_delay,
            max_delay=policy.max_delay,
            jitter=policy.jitter,
            rng=policy.rng,
        )
        if retry_after_ms is not None:
            # The server's hint is a floor, not a suggestion to ignore.
            delay = max(delay, retry_after_ms / 1000.0)
        if policy.deadline is not None:
            remaining = policy.deadline - (policy.clock() - start)
            if remaining <= 0.0:
                return False
            if delay >= remaining:
                # Spend what is left, then let the final attempt (or
                # the budget check) decide.
                delay = remaining
        if delay > 0.0:
            policy.sleep(delay)
        return True

    @staticmethod
    def _as_exception(
        code: str, message: str, retry_after_ms: Optional[int]
    ) -> Exception:
        if code == "DEGRADED":
            return DegradedModeError(message)
        cls = _CODE_TO_ERROR.get(code, ServeError)
        return cls(message, retry_after_ms=retry_after_ms)

    # ------------------------------------------------------------------
    # convenience verbs
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def health(self) -> Dict[str, Any]:
        return self.request("health")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")["stats"]

    def get(self, obj: str) -> Tuple[Any, int]:
        """Read ``obj``; returns ``(value, vsi)``."""
        response = self.request("get", obj=obj)
        return protocol.decode_value(response.get("value")), response["vsi"]

    def put(self, obj: str, value: Any, **fields: Any) -> int:
        """Durably write ``obj``; returns the record's lSI."""
        response = self.request(
            "put", obj=obj, value=protocol.encode_value(value), **fields
        )
        return response["lsi"]

    def delete(self, obj: str, **fields: Any) -> int:
        """Durably delete ``obj``; returns the record's lSI."""
        return self.request("delete", obj=obj, **fields)["lsi"]

    def apply(
        self,
        fn: str,
        reads: Any,
        writes: Any,
        params: Any = (),
        name: Optional[str] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Submit a logical operation; returns the full response."""
        return self.request(
            "apply",
            fn=fn,
            reads=sorted(reads),
            writes=sorted(writes),
            params=[protocol.encode_value(p) for p in params],
            name=name,
            **fields,
        )
