"""Sharded live-fire torture (v4): kill one shard, the rest serve on.

Torture v3 proves one daemon's force-before-ack contract across kills.
The v4 lane tortures the **sharded** daemon's stronger claim — shards
are independent recovery domains:

* concurrent clients drive puts (and seeded cross-shard applies)
  against a :class:`~repro.serve.sharded.ShardedServeDaemon` whose
  shards all run on seeded faulty devices;
* at a seeded ack count one seeded **victim shard's worker is killed
  in place** (its volatile state — cache and unforced WAL tail — is
  discarded, the in-process SIGKILL model);
* while the victim is down, the harness performs **sentinel puts
  routed to every surviving shard and requires them to be acked** —
  a partial outage must not become a total one;
* the victim is revived through supervised recovery and the oracle
  audits *every* acked write of the whole run, the victim's pre-kill
  acks included: recovered vSI >= the highest acked lSI per object and
  the recovered value is one a client actually sent.  The fence audit
  must show no conflicting fences (partial fences are legal: they are
  exactly the never-acked cross-shard remainders).

Verification is honest: every shard's fault model is disarmed before
the victim's recovery and the final audit.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import DegradedModeError
from repro.common.rng import make_rng
from repro.kernel.backup_manager import BackupManager
from repro.kernel.supervisor import SupervisorConfig
from repro.kernel.system import RecoverableSystem, SystemConfig, SystemHealth
from repro.obs.metrics import MetricsRegistry
from repro.serve.client import DaemonClient, RetryPolicy
from repro.serve.errors import ServeError
from repro.serve.sharded import ShardedDaemonConfig, ShardedServeDaemon
from repro.serve.watchdog import WatchdogConfig
from repro.shard.group import ShardedSystem
from repro.shard.router import ShardRouter
from repro.storage.faults import FaultModel, FaultyStore, FuzzRates
from repro.wal.faulty_log import FaultyLog
from repro.workloads.generator import register_workload_functions


@dataclass
class ShardLiveFireConfig:
    """Workload shape and fault rates for one v4 campaign."""

    shards: int = 2
    clients: int = 3
    #: Sequential requests each client attempts.
    requests_per_client: int = 14
    #: Objects each client cycles over (spread over shards by routing).
    objects_per_client: int = 4
    #: Probability a client issues a cross-shard derive instead of a
    #: put (when its object set actually spans shards).
    p_cross: float = 0.2
    #: Forward-phase fuzz rates, armed on *every* shard's devices.
    rates: FuzzRates = field(
        default_factory=lambda: FuzzRates(
            transient=0.01, torn=0.003, corrupt=0.003
        )
    )
    supervisor_attempts: int = 24
    max_queue: int = 16
    client_attempts: int = 5
    client_base_delay: float = 0.002
    client_deadline: float = 5.0
    #: Sentinel puts per surviving shard while the victim is down.
    sentinels_per_survivor: int = 2
    #: Per-shard stable-store backend ("memory", "file", "logstore").
    #: Durable backends get a per-shard directory under ``store_root``
    #: and the backend's recommended cache strategy; "memory" keeps the
    #: paper's simulated store.
    store_backend: str = "memory"
    #: Root directory for durable backends (a temp directory is created
    #: per run when omitted).
    store_root: Optional[str] = None


@dataclass
class ShardLiveFireOutcome:
    """One kill-one-shard / revive / audit run."""

    description: str
    ok: bool
    error: str = ""
    seed: Optional[int] = None
    victim: int = -1
    acked: int = 0
    sent: int = 0
    failed: int = 0
    #: Acked writes (sentinels) on surviving shards *during* the
    #: victim's outage — the partial-availability evidence.
    survivor_acks_during_outage: int = 0
    #: Cross-shard applies acked before the kill.
    cross_acked: int = 0
    restarts: int = 0
    fences_complete: int = 0
    fences_partial: int = 0
    fences_conflicting: int = 0
    losses: List[str] = field(default_factory=list)


@dataclass
class ShardLiveFireReport:
    """Aggregate verdict of a v4 campaign."""

    outcomes: List[ShardLiveFireOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def total_acked(self) -> int:
        return sum(outcome.acked for outcome in self.outcomes)

    @property
    def total_losses(self) -> int:
        return sum(len(outcome.losses) for outcome in self.outcomes)

    def failures(self) -> List[ShardLiveFireOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def summary(self) -> str:
        failed = len(self.failures())
        status = "OK" if failed == 0 else f"{failed} FAILED"
        survivor = sum(
            outcome.survivor_acks_during_outage for outcome in self.outcomes
        )
        return (
            f"torture v4 (shard-kill): {len(self.outcomes)} runs, "
            f"{self.total_acked} acked writes, {survivor} survivor acks "
            f"during outages, {self.total_losses} acked losses — {status}"
        )


class _ClientRecord:
    """What one client thread sent and what the daemon acked."""

    def __init__(self) -> None:
        self.sent_values: Dict[str, List[str]] = {}
        #: (obj, value, lsi-or-None) per ack; cross acks carry no lSI.
        self.acks: List[Tuple[str, str, Optional[int]]] = []
        self.cross_acked = 0
        self.sent = 0
        self.failed = 0
        self.errors: List[str] = []


class ShardLiveFireHarness:
    """Drives sharded live fire and audits partial-outage behavior."""

    def __init__(
        self,
        config: Optional[ShardLiveFireConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else ShardLiveFireConfig()
        self.obs = metrics

    # ------------------------------------------------------------------
    # one seeded run
    # ------------------------------------------------------------------
    def run(self, seed: int) -> ShardLiveFireOutcome:
        cfg = self.config
        models = [
            FaultModel.fuzz(seed * cfg.shards + index, cfg.rates)
            for index in range(cfg.shards)
        ]
        store_factory, config_factory, cleanup = self._shard_factories(
            seed, models
        )
        try:
            return self._run_built(seed, models, store_factory,
                                   config_factory)
        finally:
            cleanup()

    def _shard_factories(self, seed, models):
        """Per-shard store/config factories for the configured backend.

        The default "memory" backend keeps the paper's simulated store;
        a durable backend (satellite of the pluggable-backend API) gets
        a per-shard directory and its recommended cache strategy, so a
        v4 campaign can torture e.g. the log-structured store under
        shard kills without any harness changes.
        """
        cfg = self.config
        if cfg.store_backend == "memory":
            return (
                lambda index: FaultyStore(models[index]),
                None,
                lambda: None,
            )
        from repro.storage.registry import make_store, recommended_cache_config

        root = cfg.store_root
        created = None
        if root is None:
            created = root = tempfile.mkdtemp(prefix="v4-store-")
        run_root = os.path.join(root, f"run{seed}")

        def store_factory(index: int):
            return make_store(
                cfg.store_backend,
                os.path.join(run_root, f"shard{index}"),
                model=models[index],
            )

        def config_factory(index: int) -> SystemConfig:
            return SystemConfig(
                cache=recommended_cache_config(cfg.store_backend)
            )

        def cleanup() -> None:
            target = created if created is not None else run_root
            shutil.rmtree(target, ignore_errors=True)

        return store_factory, config_factory, cleanup

    def _run_built(
        self, seed: int, models, store_factory, config_factory
    ) -> ShardLiveFireOutcome:
        cfg = self.config
        sharded = ShardedSystem.build(
            cfg.shards,
            config_factory=config_factory,
            store_factory=store_factory,
            log_factory=lambda index: FaultyLog(models[index]),
        )
        register_workload_functions(sharded.registry)
        if self.obs is not None:
            for system in sharded.systems:
                # The shared campaign registry only absorbs the last
                # shard's collectors; counts still aggregate via the
                # instrumented hot paths.
                system.attach_metrics(self.obs)
        backups = [
            BackupManager(system).take_backup() for system in sharded.systems
        ]
        daemon = ShardedServeDaemon(
            sharded,
            ShardedDaemonConfig(
                port=0,
                http_port=None,
                max_queue=cfg.max_queue,
                retry_after_ms=5,
                allow_chaos=True,
                watchdog=WatchdogConfig(
                    supervisor=SupervisorConfig(
                        max_attempts=cfg.supervisor_attempts
                    )
                ),
            ),
            backups=backups,
        )
        daemon.start()
        rng = make_rng(f"v4:{seed}")
        victim = rng.randrange(cfg.shards)
        outcome = ShardLiveFireOutcome(
            f"v4 seed={seed} victim=shard{victim}",
            True,
            seed=seed,
            victim=victim,
        )
        records = [_ClientRecord() for _ in range(cfg.clients)]
        stop = threading.Event()
        workers = [
            threading.Thread(
                target=self._client_worker,
                args=(seed, cid, daemon.port, records[cid], stop),
                name=f"v4-client-{cid}",
                daemon=True,
            )
            for cid in range(cfg.clients)
        ]
        for worker in workers:
            worker.start()
        total = cfg.clients * cfg.requests_per_client
        kill_after = rng.randint(1, total)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if sum(len(record.acks) for record in records) >= kill_after:
                break
            if not any(worker.is_alive() for worker in workers):
                break
            time.sleep(0.002)
        # The kill: one shard's worker dies in place; volatile state
        # (cache + unforced WAL tail) is gone.
        daemon.kill_shard(victim)
        try:
            # Partial availability: every surviving shard must keep
            # acking while the victim is down.  Sentinel objects are
            # found by routing, so this holds for any shard count.
            outcome.survivor_acks_during_outage = self._sentinel_puts(
                daemon, sharded.router, victim, seed, records[0]
            )
        except Exception as exc:  # noqa: BLE001 - verdict, not control flow
            outcome.ok = False
            outcome.error = (
                f"surviving shards failed to ack during the outage: "
                f"{type(exc).__name__}: {exc}"
            )
        stop.set()
        for worker in workers:
            worker.join(timeout=10.0)
        # Honest verdict: disarm every device before the victim's
        # recovery and the audit.
        for model in models:
            model.armed = False
        if outcome.ok:
            try:
                daemon.revive_shard(victim)
                self._audit(daemon, sharded, records, outcome)
            except Exception as exc:  # noqa: BLE001
                outcome.ok = False
                outcome.error = f"{type(exc).__name__}: {exc}"
        outcome.restarts = daemon.restarts()
        daemon.stop(graceful=True)
        outcome.sent = sum(record.sent for record in records)
        outcome.acked = sum(len(record.acks) for record in records)
        outcome.failed = sum(record.failed for record in records)
        outcome.cross_acked = sum(record.cross_acked for record in records)
        for record in records:
            for error in record.errors:
                if error.startswith("read-your-writes"):
                    outcome.ok = False
                    outcome.error = error
        if outcome.losses and outcome.ok:
            outcome.ok = False
            outcome.error = f"{len(outcome.losses)} acked writes lost"
        return outcome

    def campaign(self, runs: int, seed: int = 0) -> ShardLiveFireReport:
        """``runs`` seeded runs; run ``i`` uses ``seed + i``."""
        report = ShardLiveFireReport()
        for index in range(runs):
            report.outcomes.append(self.run(seed + index))
        return report

    # ------------------------------------------------------------------
    # workload
    # ------------------------------------------------------------------
    def _objects_for(self, cid: int, router: ShardRouter) -> List[str]:
        """A client's object set, guaranteed to span >= 2 shards when
        the topology has them (so cross-shard applies are possible)."""
        objs = [
            f"v4c{cid}:{index}"
            for index in range(self.config.objects_per_client)
        ]
        if router.shards > 1:
            extra = 0
            while len(router.shards_of(objs)) < 2 and extra < 64:
                objs.append(f"v4c{cid}:x{extra}")
                extra += 1
        return objs

    def _client_worker(
        self,
        seed: int,
        cid: int,
        port: int,
        record: _ClientRecord,
        stop: threading.Event,
    ) -> None:
        cfg = self.config
        rng = make_rng(f"v4-client:{seed}:{cid}")
        client = DaemonClient(
            "127.0.0.1",
            port,
            policy=RetryPolicy(
                attempts=cfg.client_attempts,
                base_delay=cfg.client_base_delay,
                max_delay=0.05,
                deadline=cfg.client_deadline,
                rng=rng,
            ),
            connect_timeout=2.0,
        )
        router = ShardRouter(cfg.shards)
        objs = self._objects_for(cid, router)
        # A cross pair: two of this client's objects on distinct shards.
        cross_pair: Optional[Tuple[str, str]] = None
        for src in objs:
            for dst in objs:
                if router.shard_of(src) != router.shard_of(dst):
                    cross_pair = (src, dst)
                    break
            if cross_pair:
                break
        last_acked: Dict[str, str] = {}
        try:
            for seq in range(cfg.requests_per_client):
                if stop.is_set():
                    return
                if cross_pair is not None and rng.random() < cfg.p_cross:
                    src, dst = cross_pair
                    record.sent += 1
                    try:
                        response = client.apply(
                            "wl_derive",
                            reads=[src],
                            writes=[dst],
                            params=[src, dst],
                            name=f"v4x:{seed}:{cid}:{seq}",
                        )
                    except (ServeError, DegradedModeError, OSError) as exc:
                        record.failed += 1
                        record.errors.append(f"{type(exc).__name__}: {exc}")
                        continue
                    from repro.serve import protocol

                    value = protocol.decode_value(
                        (response.get("writes") or {}).get(dst)
                    )
                    record.sent_values.setdefault(dst, []).append(value)
                    record.acks.append((dst, value, None))
                    record.cross_acked += 1
                    last_acked[dst] = value
                    continue
                obj = objs[seq % len(objs)]
                value = f"v4:{seed}:c{cid}:s{seq}"
                record.sent_values.setdefault(obj, []).append(value)
                record.sent += 1
                try:
                    lsi = client.put(obj, value)
                except (ServeError, DegradedModeError, OSError) as exc:
                    record.failed += 1
                    record.errors.append(f"{type(exc).__name__}: {exc}")
                    continue
                record.acks.append((obj, value, lsi))
                last_acked[obj] = value
                if not stop.is_set() and rng.random() < 0.25:
                    try:
                        read_value, _vsi = client.get(obj)
                    except (ServeError, DegradedModeError, OSError):
                        continue
                    if read_value != last_acked[obj]:
                        record.errors.append(
                            f"read-your-writes violated on {obj}: got "
                            f"{read_value!r}, acked {last_acked[obj]!r}"
                        )
                        record.failed += 1
        finally:
            client.close()

    def _sentinel_puts(
        self,
        daemon: ShardedServeDaemon,
        router: ShardRouter,
        victim: int,
        seed: int,
        record: _ClientRecord,
    ) -> int:
        """Ack one batch of puts on every surviving shard, now."""
        cfg = self.config
        client = DaemonClient(
            "127.0.0.1",
            daemon.port,
            policy=RetryPolicy(
                attempts=cfg.client_attempts,
                base_delay=cfg.client_base_delay,
                deadline=cfg.client_deadline,
            ),
            connect_timeout=2.0,
        )
        acked = 0
        try:
            for survivor in range(router.shards):
                if survivor == victim:
                    continue
                found = 0
                probe = 0
                while found < cfg.sentinels_per_survivor and probe < 512:
                    obj = f"v4sentinel:{seed}:{probe}"
                    probe += 1
                    if router.shard_of(obj) != survivor:
                        continue
                    found += 1
                    value = f"v4sentinel:{seed}:{survivor}:{found}"
                    record.sent_values.setdefault(obj, []).append(value)
                    record.sent += 1
                    lsi = client.put(obj, value)
                    record.acks.append((obj, value, lsi))
                    acked += 1
                if found < cfg.sentinels_per_survivor:
                    raise AssertionError(
                        f"could not find sentinel keys for shard {survivor}"
                    )
        finally:
            client.close()
        return acked

    # ------------------------------------------------------------------
    # the oracle
    # ------------------------------------------------------------------
    def _audit(
        self,
        daemon: ShardedServeDaemon,
        sharded: ShardedSystem,
        records: List[_ClientRecord],
        outcome: ShardLiveFireOutcome,
    ) -> None:
        """Audit every ack of the whole run against the live daemon."""
        for index, system in enumerate(sharded.systems):
            if system.health is not SystemHealth.HEALTHY:
                raise AssertionError(
                    f"shard {index} is {system.health.value} after the "
                    "victim's supervised recovery"
                )
        client = DaemonClient("127.0.0.1", daemon.port)
        try:
            for record in records:
                by_obj: Dict[str, List[Tuple[str, Optional[int]]]] = {}
                for obj, value, lsi in record.acks:
                    by_obj.setdefault(obj, []).append((value, lsi))
                for obj, acks in by_obj.items():
                    last_value, _last_lsi = acks[-1]
                    max_lsi = max(
                        (lsi for _value, lsi in acks if lsi is not None),
                        default=None,
                    )
                    value, vsi = client.get(obj)
                    if max_lsi is not None and (vsi is None or vsi < max_lsi):
                        outcome.losses.append(
                            f"{obj}: acked through lsi {max_lsi} but "
                            f"recovered vsi is {vsi}"
                        )
                        continue
                    if value == last_value:
                        continue
                    # The recovered value must be from the unacked tail
                    # sent after the last ack (at-least-once replay);
                    # anything else — an earlier value, or a value never
                    # sent — is a rolled-back ack.
                    sent = record.sent_values.get(obj, [])
                    try:
                        cut = len(sent) - 1 - sent[::-1].index(last_value)
                    except ValueError:
                        cut = -1
                    if value not in sent[cut + 1:]:
                        outcome.losses.append(
                            f"{obj}: recovered value {value!r} regressed "
                            f"behind the last acked value {last_value!r}"
                        )
        finally:
            client.close()
        audit = sharded.fence_audit()
        outcome.fences_complete = len(audit.complete)
        outcome.fences_partial = len(audit.partial)
        outcome.fences_conflicting = len(audit.conflicting)
        if not audit.ok:
            raise AssertionError(
                f"fence audit found {len(audit.conflicting)} conflicting "
                f"fences: {[f.fence_id for f in audit.conflicting]}"
            )
