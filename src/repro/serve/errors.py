"""Serve-layer errors: what a daemon client can see go wrong.

Every rejection the daemon returns over the wire carries a structured
``error`` object — a stable ``code``, a human message, and (when the
server believes the condition is temporary) a ``retry_after_ms`` hint.
The client library maps each code onto one of these exceptions so
callers can catch exactly the condition they care about:

* retryable by policy — :class:`BackpressureError` (bounded admission
  queue is full), :class:`ServerUnavailableError` with
  ``retryable=True`` (server is RECOVERING or mid-restart);
* terminal for the request — :class:`DeadlineExceededError` (the
  request's deadline budget ran out, client- or server-side),
  :class:`BadRequestError` (malformed request; retrying the same bytes
  cannot help);
* terminal for the *write* but not the connection —
  :class:`~repro.common.errors.DegradedModeError` (the system is in
  degraded read-only mode; reads of surviving objects still work);
* terminal for the server — :class:`ServerFailedError` (recovery did
  not converge; the ladder landed on FAILED and an operator must
  intervene).

All serve errors derive from :class:`ServeError`, itself a
:class:`~repro.common.errors.ReproError`, so library-wide handlers keep
working.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import ReproError


class ServeError(ReproError):
    """Base class for daemon/client serving errors.

    ``code`` is the wire-level error code (see
    :mod:`repro.serve.protocol`); ``retry_after_ms`` carries the
    server's backoff hint when one was given.
    """

    code: str = "INTERNAL"

    def __init__(
        self, message: str, retry_after_ms: Optional[int] = None
    ) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms

    @property
    def retryable(self) -> bool:
        """Whether retrying the identical request can ever succeed."""
        return False


class ProtocolError(ServeError):
    """The byte stream violated the length-prefixed JSON framing."""

    code = "PROTOCOL"


class BadRequestError(ServeError):
    """The request was structurally invalid; retrying cannot help."""

    code = "BAD_REQUEST"


class BackpressureError(ServeError):
    """The bounded admission queue is full; back off and retry."""

    code = "BACKPRESSURE"

    @property
    def retryable(self) -> bool:
        return True


class DeadlineExceededError(ServeError):
    """The request's deadline budget elapsed before completion.

    Raised client-side when the retry loop's overall deadline runs out,
    and mapped from the server's ``DEADLINE`` rejection when a queued
    request expired before the apply loop reached it.
    """

    code = "DEADLINE"


class ServerUnavailableError(ServeError):
    """The server exists but cannot take the request right now.

    RECOVERING (watchdog restart in flight) and mid-shutdown are the
    retryable shapes; the client honors ``retry_after_ms`` when given.
    """

    code = "UNAVAILABLE"

    @property
    def retryable(self) -> bool:
        return True


class ShuttingDownError(ServerUnavailableError):
    """The server is draining for shutdown and admits nothing new."""

    code = "SHUTTING_DOWN"

    @property
    def retryable(self) -> bool:
        # A drain ends in process exit; the *connection* is done, but a
        # supervisor-restarted daemon may serve the retry.
        return True


class FencedError(ServeError):
    """The responder's replication epoch outranks the caller's.

    A promoted witness answers a zombie primary's replication frames
    with this, and a primary that has learned it was fenced answers
    *all* writes with it — an ack from the old epoch must never be
    produced.  Retrying the same server cannot help, but a client
    configured with failover targets rotates to the next target on this
    code (the new epoch's server is elsewhere), so the client treats it
    as retryable when, and only when, it has somewhere else to go.
    """

    code = "FENCED"


class ServerFailedError(ServeError):
    """Recovery did not converge: the system is FAILED until an
    operator intervenes.  Never retried automatically."""

    code = "FAILED"
