"""Live-fire torture (v3): client workloads against a real daemon.

Torture v1/v2 crash a *library* — the harness owns the system object
and calls ``crash()``/``recover()`` itself.  The live-fire lane tortures
the **daemon**: concurrent clients drive requests over real sockets at
a :class:`~repro.serve.server.ServeDaemon` while a fault model misfires
the storage underneath, the process is killed (abruptly or gracefully),
a fresh daemon is started over the debris, and the oracle is the
serving layer's one promise:

    **every client-acknowledged write is durable** — after recovery,
    each object's recovered vSI is at least the highest lSI the daemon
    ever acked for it, and the recovered value is a value some client
    actually sent.

This is exactly-once *visibility*: retries make delivery at-least-once
on the wire, but because ``put`` is a physical write of a specific
value and the daemon acks only after the WAL force, replayed duplicates
are idempotent and an ack can never be rolled back.

Two lanes:

* **in-process** (:meth:`LiveFireHarness.run` / :meth:`campaign`) —
  the daemon runs on in-memory faulty components
  (:class:`~repro.storage.faults.FaultyStore` /
  :class:`~repro.wal.faulty_log.FaultyLog`) with a seeded fuzz
  schedule; mid-serve faults exercise the watchdog's restart ladder
  live, ``kill()`` models SIGKILL, and hundreds of seeded runs fit in
  seconds.  This is the lane the E12 benchmark scales to its
  ``>= 200 runs, zero acked losses`` acceptance bar.
* **subprocess** (:meth:`LiveFireHarness.subprocess_run`) — a real
  ``python -m repro serve`` process over a real directory, killed with
  a real ``SIGKILL`` (or drained with ``SIGTERM``), restarted, and
  audited through its ``/healthz`` endpoint.  One run of each shape is
  the CI daemon-smoke job.

Verification always runs against an honest device (the fault model is
disarmed before the final restart), mirroring the torture harness: the
verdict itself is never faulted.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import DegradedModeError
from repro.common.rng import make_rng
from repro.kernel.backup_manager import BackupManager
from repro.kernel.supervisor import SupervisorConfig
from repro.kernel.system import (
    RecoverableSystem,
    SystemConfig,
    SystemHealth,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.client import DaemonClient, RetryPolicy
from repro.serve.errors import ServeError
from repro.serve.server import DaemonConfig, ServeDaemon
from repro.serve.watchdog import WatchdogConfig
from repro.storage.faults import FaultModel, FaultyStore, FuzzRates
from repro.wal.faulty_log import FaultyLog


@dataclass
class LiveFireConfig:
    """Workload shape and fault rates for one live-fire campaign."""

    #: Concurrent client threads; each owns a disjoint object set, so
    #: per-object write order is total and read-your-writes checkable.
    clients: int = 3
    #: Sequential put requests each client attempts.
    requests_per_client: int = 12
    #: Objects each client cycles its puts over.
    objects_per_client: int = 3
    #: Probability a client follows an acked put with a get and checks
    #: read-your-writes live (before any kill).
    p_get: float = 0.25
    #: Forward-phase fuzz rates for the in-process faulty device.  The
    #: model stays armed through mid-serve watchdog recoveries, so
    #: these faults also hit recovery's own I/O.
    rates: FuzzRates = field(
        default_factory=lambda: FuzzRates(
            transient=0.01, torn=0.004, corrupt=0.004
        )
    )
    #: Ladder budget for watchdog-driven recoveries.
    supervisor_attempts: int = 24
    #: Daemon admission-queue bound (small: backpressure should fire).
    max_queue: int = 16
    #: Client retry budget per request (kept tight so post-kill
    #: stragglers fail fast; the oracle never depends on them).
    client_attempts: int = 5
    client_base_delay: float = 0.002
    client_deadline: float = 5.0
    #: Wall-clock cap waiting for a subprocess daemon to come up.
    subprocess_timeout: float = 30.0


@dataclass
class LiveFireOutcome:
    """One kill-restart-verify run against a live daemon."""

    description: str
    ok: bool
    error: str = ""
    seed: Optional[int] = None
    #: Client-acknowledged writes across all clients.
    acked: int = 0
    #: Requests attempted (acked + rejected + lost-in-flight).
    sent: int = 0
    #: Requests that ended in a terminal rejection or retry exhaustion.
    failed: int = 0
    #: Mid-serve watchdog restarts the first daemon performed.
    restarts: int = 0
    #: Faults the model injected (in-process lane).
    faults_injected: int = 0
    #: Acked writes found missing or stale after recovery.  The whole
    #: point of the campaign is that this list stays empty.
    losses: List[str] = field(default_factory=list)


@dataclass
class LiveFireReport:
    """Aggregate verdict of a live-fire campaign."""

    mode: str
    outcomes: List[LiveFireOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def total_acked(self) -> int:
        return sum(outcome.acked for outcome in self.outcomes)

    @property
    def total_losses(self) -> int:
        return sum(len(outcome.losses) for outcome in self.outcomes)

    def failures(self) -> List[LiveFireOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def summary(self) -> str:
        failed = len(self.failures())
        status = "OK" if failed == 0 else f"{failed} FAILED"
        return (
            f"torture v3 ({self.mode}): {len(self.outcomes)} runs, "
            f"{self.total_acked} acked writes, "
            f"{self.total_losses} acked losses — {status}"
        )


class _ClientRecord:
    """What one client thread sent and what the daemon acked."""

    def __init__(self) -> None:
        #: obj -> every value this client sent for it (ack or not).
        self.sent_values: Dict[str, List[str]] = {}
        #: (obj, value, lsi) for every acked put, in ack order.
        self.acks: List[Tuple[str, str, int]] = []
        self.sent = 0
        self.failed = 0
        self.errors: List[str] = []


class LiveFireHarness:
    """Drives client workloads at live daemons and audits the acks."""

    def __init__(
        self,
        config: Optional[LiveFireConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else LiveFireConfig()
        #: Optional shared registry attached to every system built.
        self.obs = metrics

    # ------------------------------------------------------------------
    # in-process lane
    # ------------------------------------------------------------------
    def run(self, seed: int) -> LiveFireOutcome:
        """One seeded in-process run: serve under faults, kill, verify."""
        cfg = self.config
        model = FaultModel.fuzz(seed, cfg.rates)
        system = RecoverableSystem(
            SystemConfig(),
            store=FaultyStore(model),
            log=FaultyLog(model),
        )
        if self.obs is not None:
            system.attach_metrics(self.obs)
        # Backup at time zero: pins the log and backs the quarantine
        # path, so mid-serve media restores can reinstate corrupt
        # objects instead of escalating to DEGRADED.
        backup = BackupManager(system).take_backup()
        daemon = ServeDaemon(
            system,
            DaemonConfig(
                port=0,
                http_port=None,
                max_queue=cfg.max_queue,
                retry_after_ms=5,
                watchdog=WatchdogConfig(
                    supervisor=SupervisorConfig(
                        max_attempts=cfg.supervisor_attempts
                    )
                ),
            ),
            backup=backup,
        )
        daemon.start()
        outcome = LiveFireOutcome(f"livefire seed={seed}", True, seed=seed)
        records = [_ClientRecord() for _ in range(cfg.clients)]
        stop = threading.Event()
        workers = [
            threading.Thread(
                target=self._client_worker,
                args=(seed, cid, daemon.port, records[cid], stop),
                name=f"livefire-client-{cid}",
                daemon=True,
            )
            for cid in range(cfg.clients)
        ]
        for worker in workers:
            worker.start()
        # Kill at a seeded ack count, so every run kills at a different
        # phase of the workload — including mid-request, which is the
        # race the force-before-ack contract exists for.
        total = cfg.clients * cfg.requests_per_client
        kill_after = make_rng(f"livefire-kill:{seed}").randint(1, total)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            acked = sum(len(record.acks) for record in records)
            if acked >= kill_after:
                break
            if not any(worker.is_alive() for worker in workers):
                break
            time.sleep(0.002)
        daemon.kill()
        stop.set()
        for worker in workers:
            worker.join(timeout=10.0)
        outcome.restarts = daemon.watchdog.restarts
        # The verdict is never faulted: recovery of the restarted
        # daemon runs against an honest device, like torture v1/v2.
        model.armed = False
        if not system._crashed:
            system.crash()
        try:
            self._verify_recovered(system, backup, records, outcome)
        except Exception as exc:  # noqa: BLE001 - verdict, not control flow
            outcome.ok = False
            outcome.error = f"{type(exc).__name__}: {exc}"
        outcome.sent = sum(record.sent for record in records)
        outcome.acked = sum(len(record.acks) for record in records)
        outcome.failed = sum(record.failed for record in records)
        outcome.faults_injected = system.stats.faults_injected
        if outcome.losses and outcome.ok:
            outcome.ok = False
            outcome.error = f"{len(outcome.losses)} acked writes lost"
        return outcome

    def campaign(self, runs: int, seed: int = 0) -> LiveFireReport:
        """``runs`` seeded in-process runs; run ``i`` uses ``seed + i``."""
        report = LiveFireReport(mode="in-process")
        for index in range(runs):
            report.outcomes.append(self.run(seed + index))
        return report

    def _client_worker(
        self,
        seed: int,
        cid: int,
        port: int,
        record: _ClientRecord,
        stop: threading.Event,
    ) -> None:
        cfg = self.config
        rng = make_rng(f"livefire-client:{seed}:{cid}")
        client = DaemonClient(
            "127.0.0.1",
            port,
            policy=RetryPolicy(
                attempts=cfg.client_attempts,
                base_delay=cfg.client_base_delay,
                max_delay=0.05,
                deadline=cfg.client_deadline,
                rng=rng,
            ),
            connect_timeout=2.0,
        )
        last_acked: Dict[str, str] = {}
        try:
            for seq in range(cfg.requests_per_client):
                if stop.is_set():
                    return
                obj = f"lf{cid}:{seq % cfg.objects_per_client}"
                value = f"run{seed}:c{cid}:s{seq}"
                record.sent_values.setdefault(obj, []).append(value)
                record.sent += 1
                try:
                    lsi = client.put(obj, value)
                except (ServeError, DegradedModeError, OSError) as exc:
                    # Rejected or lost in flight: the oracle will decide
                    # whether it landed anyway (at-least-once is fine).
                    record.failed += 1
                    record.errors.append(f"{type(exc).__name__}: {exc}")
                    continue
                record.acks.append((obj, value, lsi))
                last_acked[obj] = value
                if stop.is_set():
                    return
                if rng.random() < cfg.p_get:
                    try:
                        read_value, _vsi = client.get(obj)
                    except (ServeError, DegradedModeError, OSError):
                        continue
                    # Read-your-writes, live: this client is the only
                    # writer of obj and the put was acked.
                    if read_value != last_acked[obj]:
                        record.errors.append(
                            f"read-your-writes violated on {obj}: got "
                            f"{read_value!r}, acked {last_acked[obj]!r}"
                        )
                        record.failed += 1
        finally:
            client.close()

    def _verify_recovered(
        self,
        system: RecoverableSystem,
        backup: Any,
        records: List[_ClientRecord],
        outcome: LiveFireOutcome,
    ) -> None:
        """Restart a daemon over the debris and audit every ack."""
        daemon = ServeDaemon(
            system,
            DaemonConfig(
                port=0,
                http_port=None,
                watchdog=WatchdogConfig(
                    supervisor=SupervisorConfig(
                        max_attempts=self.config.supervisor_attempts
                    )
                ),
            ),
            backup=backup,
        )
        daemon.start()
        try:
            if system.health is not SystemHealth.HEALTHY:
                raise AssertionError(
                    "restarted daemon did not come back HEALTHY: "
                    f"{system.health.value}"
                )
            client = DaemonClient("127.0.0.1", daemon.port)
            try:
                self._audit_acks(client, records, outcome)
            finally:
                client.close()
        finally:
            daemon.stop(graceful=True)

    def _audit_acks(
        self,
        client: DaemonClient,
        records: List[_ClientRecord],
        outcome: LiveFireOutcome,
    ) -> None:
        """The oracle: per object, recovered vSI >= max acked lSI and
        the recovered value is something a client actually sent."""
        for record in records:
            by_obj: Dict[str, List[Tuple[int, str]]] = {}
            for obj, value, lsi in record.acks:
                by_obj.setdefault(obj, []).append((lsi, value))
            for obj, acks in by_obj.items():
                max_lsi, max_value = max(acks)
                value, vsi = client.get(obj)
                if vsi is None or vsi < max_lsi:
                    outcome.losses.append(
                        f"{obj}: acked through lsi {max_lsi} but "
                        f"recovered vsi is {vsi}"
                    )
                    continue
                if vsi == max_lsi and value != max_value:
                    outcome.losses.append(
                        f"{obj}: recovered vsi {vsi} matches the last "
                        f"ack but value is {value!r}, acked {max_value!r}"
                    )
                    continue
                if value not in record.sent_values.get(obj, []):
                    outcome.losses.append(
                        f"{obj}: recovered value {value!r} was never "
                        "sent by its owning client"
                    )

    # ------------------------------------------------------------------
    # subprocess lane (real process, real signals, real files)
    # ------------------------------------------------------------------
    def subprocess_run(
        self,
        workdir: str,
        seed: int = 0,
        graceful: bool = False,
        fault_seed: Optional[int] = None,
    ) -> LiveFireOutcome:
        """Kill (or drain) a real ``python -m repro serve`` process.

        Starts a daemon subprocess over ``workdir``, drives one client
        workload at it, delivers ``SIGTERM`` (graceful: the daemon must
        drain, force, checkpoint and exit 0) or ``SIGKILL`` (abrupt),
        restarts a fresh subprocess over the same directory, requires
        ``/healthz`` to answer 200 HEALTHY, and audits every ack.
        """
        cfg = self.config
        shape = "sigterm" if graceful else "sigkill"
        outcome = LiveFireOutcome(
            f"subprocess {shape} seed={seed}", True, seed=seed
        )
        data_dir = os.path.join(workdir, "data")
        record = _ClientRecord()
        proc, port, _http = self._spawn(workdir, data_dir, fault_seed)
        try:
            rng = make_rng(f"livefire-subprocess:{seed}")
            client = DaemonClient(
                "127.0.0.1",
                port,
                policy=RetryPolicy(
                    attempts=cfg.client_attempts,
                    base_delay=cfg.client_base_delay,
                    deadline=cfg.client_deadline,
                    rng=rng,
                ),
            )
            total = cfg.clients * cfg.requests_per_client
            kill_after = rng.randint(1, total) if not graceful else total
            try:
                for seq in range(total):
                    obj = f"sp{seed}:{seq % (3 * cfg.objects_per_client)}"
                    value = f"sub{seed}:s{seq}"
                    record.sent_values.setdefault(obj, []).append(value)
                    record.sent += 1
                    try:
                        lsi = client.put(obj, value)
                    except (ServeError, DegradedModeError, OSError) as exc:
                        record.failed += 1
                        record.errors.append(str(exc))
                        continue
                    record.acks.append((obj, value, lsi))
                    if len(record.acks) >= kill_after:
                        break
            finally:
                client.close()
            if graceful:
                proc.send_signal(signal.SIGTERM)
                status = proc.wait(timeout=cfg.subprocess_timeout)
                if status != 0:
                    raise AssertionError(
                        f"SIGTERM drain exited with status {status}"
                    )
            else:
                proc.kill()
                proc.wait(timeout=cfg.subprocess_timeout)
        except Exception as exc:  # noqa: BLE001 - verdict, not control flow
            outcome.ok = False
            outcome.error = f"{type(exc).__name__}: {exc}"
            self._reap(proc)
            outcome.sent, outcome.acked = record.sent, len(record.acks)
            return outcome
        # Restart over the debris (faults off: the verdict is honest).
        proc2, port2, http2 = self._spawn(workdir, data_dir, None)
        try:
            health = self._healthz(http2)
            if health.get("health") != SystemHealth.HEALTHY.value:
                raise AssertionError(
                    f"/healthz after restart: {health}"
                )
            client = DaemonClient("127.0.0.1", port2)
            try:
                self._audit_acks(client, [record], outcome)
            finally:
                client.close()
            proc2.send_signal(signal.SIGTERM)
            status = proc2.wait(timeout=cfg.subprocess_timeout)
            if status != 0:
                raise AssertionError(
                    f"verification daemon exited with status {status}"
                )
        except Exception as exc:  # noqa: BLE001 - verdict, not control flow
            outcome.ok = False
            outcome.error = f"{type(exc).__name__}: {exc}"
            self._reap(proc2)
        outcome.sent, outcome.acked = record.sent, len(record.acks)
        outcome.failed = record.failed
        if outcome.losses and outcome.ok:
            outcome.ok = False
            outcome.error = f"{len(outcome.losses)} acked writes lost"
        return outcome

    def _spawn(
        self, workdir: str, data_dir: str, fault_seed: Optional[int]
    ) -> Tuple["subprocess.Popen[bytes]", int, int]:
        """Start ``python -m repro serve`` and wait for its port file."""
        port_file = os.path.join(
            workdir, f"port-{time.monotonic_ns()}.json"
        )
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--data-dir",
            data_dir,
            "--port",
            "0",
            "--http-port",
            "0",
            "--port-file",
            port_file,
        ]
        if fault_seed is not None:
            command += ["--fault-seed", str(fault_seed)]
        env = dict(os.environ)
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (package_root, env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(command, env=env)
        deadline = time.monotonic() + self.config.subprocess_timeout
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                raise AssertionError(
                    f"serve subprocess died at startup "
                    f"(status {proc.returncode})"
                )
            if os.path.exists(port_file):
                try:
                    with open(port_file, "r", encoding="utf-8") as handle:
                        info = json.load(handle)
                    return proc, info["port"], info["http_port"]
                except (ValueError, KeyError):
                    pass  # partially written; poll again
            time.sleep(0.02)
        self._reap(proc)
        raise AssertionError("serve subprocess never wrote its port file")

    def _healthz(self, http_port: int) -> Dict[str, Any]:
        """Poll readiness until it answers 200, returning the body.

        Plain ``/healthz`` is liveness and answers 200 while still
        RECOVERING; the audit needs the stricter ``?ready=1`` verdict
        (HEALTHY and not draining) before it reads anything back.
        """
        deadline = time.monotonic() + self.config.subprocess_timeout
        last: Dict[str, Any] = {}
        while time.monotonic() < deadline:
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{http_port}/healthz?ready=1",
                    timeout=2.0,
                ) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                last = json.loads(exc.read().decode("utf-8") or "{}")
            except (OSError, ValueError):
                pass
            time.sleep(0.05)
        return last

    @staticmethod
    def _reap(proc: "subprocess.Popen[bytes]") -> None:
        if proc.poll() is None:
            proc.kill()
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                pass
