"""N-way sharded serving: one listener, N recovery domains.

``ShardedServeDaemon`` fronts a :class:`~repro.shard.ShardedSystem`
with the same wire protocol, admission gates and durability contract
as the single-kernel :class:`~repro.serve.server.ServeDaemon`, but
every shard is its *own* recovery domain:

* **one apply thread per shard** — shard k's kernel is touched only by
  shard k's worker, so N single-shard operations proceed genuinely in
  parallel (N WAL forces overlap; the force latency, not the GIL, is
  the serial resource);
* **per-shard admission** — each shard has its own bounded queue and
  its own health gate.  One shard DEGRADED answers *its* writes with
  ``DEGRADED`` while the other shards keep acking; one shard's full
  queue answers ``BACKPRESSURE`` **with the shard index**, so clients
  back off that shard only;
* **per-shard supervision** — each shard has its own
  :class:`~repro.serve.watchdog.ServingWatchdog`; a storage crash in
  shard k recovers shard k while the others serve on;
* **cross-shard operations** — an ``apply`` whose footprint spans
  shards is executed under a rendezvous: the operation is enqueued to
  every participant, the lowest-numbered participant coordinates, the
  other participants park their worker (their kernel's "turn" is what
  the coordinator borrows), and the
  :meth:`~repro.shard.ShardedSystem.execute_cross` fence protocol
  runs — local physical ops, fence records on every participant, all
  participant WALs forced, then the ack.  Rendezvous tokens are
  enqueued under one daemon-wide lock so their relative order is the
  same in every participant queue — two cross-shard operations can
  never deadlock waiting for each other's participants;
* **chaos endpoints** — with ``allow_chaos`` the protocol kinds
  ``kill_shard`` / ``revive_shard`` let harnesses and the CI smoke job
  kill one shard worker in place (its volatile state is lost, exactly
  the SIGKILL model) and later revive it through supervised recovery,
  proving partial-outage behavior against a real process.

Metrics: the daemon keeps its own registry (``serve.*`` plus
``serve.shard.<k>.*`` labels); each shard's kernel keeps its own
registry (collector prefixes would collide on a shared one), and the
``/metrics`` endpoint renders the merged view with ``shard<k>.``
prefixes.  ``/healthz`` is 200 only when *every* shard is HEALTHY and
alive — a load balancer should steer around a partially-degraded node
while clients with shard affinity may still use its healthy shards.
"""

from __future__ import annotations

import itertools
import queue
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import (
    CorruptObjectError,
    DegradedModeError,
    ReproError,
    SimulatedCrash,
    TransientStorageError,
)
from repro.core.operation import Operation, OpKind, delete_object
from repro.kernel.system import SystemHealth
from repro.obs.flightrec import FlightRecorder
from repro.obs.http import ObsHTTPServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import TraceContext
from repro.serve import protocol
from repro.serve.server import WRITE_KINDS, DaemonConfig, _Connection
from repro.serve.watchdog import ServingWatchdog
from repro.shard.group import CrossShardError, ShardedSystem
from repro.storage.backup import FuzzyBackup

#: Health severity order for the aggregate health string.
_HEALTH_RANK = {
    SystemHealth.HEALTHY: 0,
    SystemHealth.RECOVERING: 1,
    SystemHealth.DEGRADED: 2,
    SystemHealth.FAILED: 3,
}


@dataclass
class ShardedDaemonConfig(DaemonConfig):
    """DaemonConfig plus the sharding knobs."""

    #: Number of recovery domains (the CLI's ``--shards``).
    shards: int = 2
    #: Accept ``kill_shard`` / ``revive_shard`` chaos requests.  Off by
    #: default: only harnesses and CI smoke jobs should ever enable it.
    allow_chaos: bool = False


class _ShardEventSink:
    """Tags one shard's events with its index, then records them.

    Every shard kernel's registry gets one of these so health
    transitions, watchdog restarts and fault-point events from all N
    recovery domains land in the daemon's single flight recorder with
    the shard attributed.
    """

    def __init__(self, recorder: FlightRecorder, index: int) -> None:
        self._recorder = recorder
        self._index = index

    def emit(self, kind: str, **details: Any) -> None:
        details.setdefault("shard", self._index)
        self._recorder.emit(kind, **details)


class _CrossJob:
    """One cross-shard request's rendezvous state."""

    def __init__(
        self,
        request: Dict[str, Any],
        conn: _Connection,
        deadline: float,
        participants: Tuple[int, ...],
        trace: Optional[TraceContext] = None,
    ) -> None:
        self.request = request
        self.conn = conn
        self.deadline = deadline
        self.participants = participants
        self.trace = trace
        self.coordinator = participants[0]
        self._lock = threading.Lock()
        self._arrived: set = set()
        self.all_arrived = threading.Event()
        #: Set exactly once, after the coordinator answered (or the job
        #: was cancelled); parked participants resume on it.
        self.done = threading.Event()
        self.cancelled = False

    def arrive(self, shard: int) -> None:
        with self._lock:
            self._arrived.add(shard)
            if self._arrived >= set(self.participants):
                self.all_arrived.set()


@dataclass
class _ShardWork:
    """One admitted request in a shard's queue."""

    request: Dict[str, Any]
    conn: _Connection
    deadline: float
    enqueued: float
    cross: Optional[_CrossJob] = None
    trace: Optional[TraceContext] = None


class _Shard:
    """One recovery domain's serving-side state."""

    def __init__(
        self,
        index: int,
        system,
        watchdog: ServingWatchdog,
        max_queue: int,
    ) -> None:
        self.index = index
        self.system = system
        self.watchdog = watchdog
        self.queue: "queue.Queue[_ShardWork]" = queue.Queue(
            maxsize=max(1, max_queue)
        )
        self.thread: Optional[threading.Thread] = None
        self.stop = threading.Event()
        self.idle = threading.Event()
        self.idle.set()
        #: True between kill_shard and revive_shard: the worker is dead
        #: and the shard's volatile state is gone.
        self.killed = False


class ShardedServeDaemon:
    """A supervised multi-shard serving loop over one object space."""

    def __init__(
        self,
        sharded: ShardedSystem,
        config: Optional[ShardedDaemonConfig] = None,
        backups: Optional[List[Optional[FuzzyBackup]]] = None,
    ) -> None:
        self.sharded = sharded
        self.config = (
            config
            if config is not None
            else ShardedDaemonConfig(shards=sharded.shards)
        )
        self.config.shards = sharded.shards
        #: Daemon-level registry: serve.* and serve.shard.<k>.* series.
        self.obs = MetricsRegistry()
        #: One flight recorder for the whole daemon; shard kernels feed
        #: it through shard-tagging sinks so a dump interleaves all N
        #: domains' state transitions on one timeline.
        self.flightrec = FlightRecorder(
            self.config.flightrec_path,
            capacity=self.config.flightrec_capacity,
        )
        self.obs.subscribe(self.flightrec)
        self._shards: List[_Shard] = []
        for index, system in enumerate(sharded.systems):
            if not system.obs.enabled:
                # One registry per kernel: the io/engine collector
                # prefixes collide on a shared registry.
                system.attach_metrics(MetricsRegistry())
            system.obs.subscribe(_ShardEventSink(self.flightrec, index))
            backup = None
            if backups is not None and index < len(backups):
                backup = backups[index]
            self._shards.append(
                _Shard(
                    index,
                    system,
                    ServingWatchdog(
                        system, backup=backup, config=self.config.watchdog
                    ),
                    self.config.max_queue,
                )
            )
        self._listener: Optional[socket.socket] = None
        self._http: Optional[ObsHTTPServer] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._readers: List[threading.Thread] = []
        self._conns: List[_Connection] = []
        self._conns_lock = threading.Lock()
        #: Serializes cross-job enqueues: tokens of different cross jobs
        #: appear in the same relative order in every participant queue,
        #: which is the no-deadlock argument for the rendezvous.
        self._cross_lock = threading.Lock()
        #: Serializes chaos operations (kill/revive) with each other.
        self._control_lock = threading.Lock()
        self._draining = threading.Event()
        self._stopping = threading.Event()
        self._started = False
        self._op_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self._shards)

    @property
    def port(self) -> Optional[int]:
        if self._listener is None:
            return None
        return self._listener.getsockname()[1]

    @property
    def http_port(self) -> Optional[int]:
        return self._http.port if self._http is not None else None

    def restarts(self) -> int:
        """Watchdog restarts summed over the shards."""
        return sum(shard.watchdog.restarts for shard in self._shards)

    def start(self) -> "ShardedServeDaemon":
        """Recover every shard, then open the listener.

        Startup recovery is per shard and sequential; a shard that
        lands DEGRADED or FAILED does not block the others — admission
        gates per shard, which is the partial-outage point.
        """
        if self._started:
            raise RuntimeError("daemon already started")
        self._started = True
        self.flightrec.record("daemon.start", {"shards": len(self._shards)})
        for shard in self._shards:
            shard.watchdog.supervised_startup()
        if self.config.http_port is not None:
            self._http = ObsHTTPServer(
                self._metrics_source,
                self._health_payload,
                host=self.config.host,
                port=self.config.http_port,
                ready_provider=self._ready_payload,
                flightrec_provider=lambda: self.flightrec,
            )
            self._http.start()
        listener = socket.create_server(
            (self.config.host, self.config.port), backlog=32
        )
        listener.settimeout(0.1)
        self._listener = listener
        self.flightrec.record(
            "daemon.serving",
            {
                "port": listener.getsockname()[1],
                "health": self.aggregate_health().value,
            },
        )
        for shard in self._shards:
            self._start_worker(shard)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-shard-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _start_worker(self, shard: _Shard) -> None:
        shard.stop = threading.Event()
        shard.thread = threading.Thread(
            target=self._shard_loop,
            args=(shard,),
            name=f"repro-shard-apply-{shard.index}",
            daemon=True,
        )
        shard.thread.start()

    def stop(self, graceful: bool = True) -> int:
        """Shut down all shards; the SIGTERM path when ``graceful``."""
        if not self._started:
            return 0
        self._draining.set()
        if graceful:
            deadline = time.monotonic() + self.config.drain_deadline_s
            while time.monotonic() < deadline:
                if all(
                    shard.queue.empty() and shard.idle.is_set()
                    for shard in self._shards
                    if not shard.killed
                ):
                    break
                time.sleep(0.01)
        self._stopping.set()
        for shard in self._shards:
            shard.stop.set()
        for shard in self._shards:
            if shard.thread is not None:
                shard.thread.join(timeout=5.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for shard in self._shards:
            self._flush_queue(shard, "SHUTTING_DOWN", "server is shutting down")
        status = 0
        if graceful:
            for shard in self._shards:
                if shard.killed or shard.system._crashed:
                    continue
                try:
                    shard.system.log.force()
                    if (
                        self.config.checkpoint_on_shutdown
                        and shard.system.health is SystemHealth.HEALTHY
                    ):
                        shard.system.checkpoint(truncate=True)
                except (ReproError, SimulatedCrash):
                    status = 1
        self.sharded.close()
        self._close_everything()
        for thread in list(self._readers):
            thread.join(timeout=5.0)
        self.flightrec.record(
            "daemon.stop",
            {
                "graceful": graceful,
                "status": status,
                "health": self.aggregate_health().value,
            },
        )
        self.flightrec.close("sigterm" if graceful else "stop")
        return status

    def kill(self) -> None:
        """Abrupt whole-daemon stop (the SIGKILL model for harnesses)."""
        if not self._started:
            return
        self._draining.set()
        self._stopping.set()
        for shard in self._shards:
            shard.stop.set()
        self._close_everything()
        for shard in self._shards:
            if shard.thread is not None:
                shard.thread.join(timeout=5.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in list(self._readers):
            thread.join(timeout=5.0)
        for shard in self._shards:
            self._flush_queue(shard, None, None)

    def _close_everything(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            conn.close()
        if self._http is not None:
            self._http.stop()
            self._http = None

    def _flush_queue(
        self, shard: _Shard, code: Optional[str], message: Optional[str]
    ) -> None:
        while True:
            try:
                work = shard.queue.get_nowait()
            except queue.Empty:
                return
            if work.cross is not None:
                work.cross.cancelled = True
                work.cross.done.set()
            if code is not None:
                work.conn.send(
                    protocol.error_response(
                        work.request.get("id"),
                        code,
                        message or "",
                        shard.system.health.value,
                        shard=shard.index,
                    )
                )

    # ------------------------------------------------------------------
    # chaos: kill and revive one shard
    # ------------------------------------------------------------------
    def kill_shard(self, index: int) -> None:
        """Kill shard ``index``'s worker in place (SIGKILL model).

        The worker thread is stopped and joined, the shard's volatile
        state (cache + unforced WAL buffer) is discarded, and its
        queued requests are answered ``UNAVAILABLE``.  Every other
        shard keeps serving; cross-shard requests naming the victim
        time out at the rendezvous and answer ``UNAVAILABLE`` too.
        """
        with self._control_lock:
            shard = self._shards[index]
            if shard.killed:
                return
            shard.killed = True
            shard.stop.set()
            if shard.thread is not None:
                shard.thread.join(timeout=10.0)
            if not shard.system._crashed:
                shard.system.crash()
            self.obs.count(f"serve.shard.{index}.kills")
            self.obs.emit("shard.kill", shard=index)
            self._flush_queue(
                shard, "UNAVAILABLE", f"shard {index} worker was killed"
            )

    def revive_shard(self, index: int) -> None:
        """Recover a killed shard and put a fresh worker on it."""
        with self._control_lock:
            shard = self._shards[index]
            if not shard.killed:
                raise ValueError(f"shard {index} is not killed")
            shard.watchdog.supervised_startup()
            self._start_worker(shard)
            shard.killed = False
            self.obs.count(f"serve.shard.{index}.revives")
            self.obs.emit(
                "shard.revive",
                shard=index,
                health=shard.system.health.value,
            )

    # ------------------------------------------------------------------
    # accept + read side
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            listener = self._listener
            if listener is None:
                return
            try:
                sock, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn = _Connection(sock)
            with self._conns_lock:
                self._conns.append(conn)
            thread = threading.Thread(
                target=self._reader_loop,
                args=(conn,),
                name="repro-shard-conn",
                daemon=True,
            )
            thread.start()
            self._readers.append(thread)

    def _reader_loop(self, conn: _Connection) -> None:
        try:
            while not self._stopping.is_set():
                try:
                    request = protocol.recv_frame(conn.sock)
                except (protocol.ProtocolError, OSError):
                    break
                if request is None:
                    break
                self._admit(conn, request)
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _admit(self, conn: _Connection, request: Dict[str, Any]) -> None:
        request_id = request.get("id")
        kind = request.get("kind")
        self.obs.count("serve.requests")

        def reject(
            code: str,
            message: str,
            retry_after_ms: Optional[int] = None,
            shard: Optional[int] = None,
            health: str = "",
        ) -> None:
            self.obs.count(f"serve.rejected.{code.lower()}")
            conn.send(
                protocol.error_response(
                    request_id,
                    code,
                    message,
                    health or self.aggregate_health().value,
                    retry_after_ms,
                    shard=shard,
                )
            )

        if kind in protocol.CHAOS_KINDS:
            self._handle_chaos(conn, request, request_id, reject)
            return
        if kind not in protocol.REQUEST_KINDS:
            reject("BAD_REQUEST", f"unknown request kind {kind!r}")
            return
        if kind in ("ping", "health", "stats"):
            conn.send(self._inline_answer(kind, request_id))
            return
        if self._draining.is_set():
            reject(
                "SHUTTING_DOWN",
                "server is draining for shutdown",
                self.config.retry_after_ms,
            )
            return
        # Route: object verbs go to the owner shard; apply goes to the
        # full footprint of its read/write sets.
        try:
            shards = self._route(request, kind)
        except protocol.ProtocolError as exc:
            reject("BAD_REQUEST", str(exc))
            return
        now = time.monotonic()
        budget_ms = request.get("deadline_ms")
        if budget_ms is None:
            budget_ms = self.config.default_deadline_ms
        try:
            budget_ms = min(int(budget_ms), self.config.max_deadline_ms)
        except (TypeError, ValueError):
            reject("BAD_REQUEST", f"bad deadline_ms: {budget_ms!r}")
            return
        deadline = now + budget_ms / 1000.0
        # Per-shard health gates, checked for every involved shard.
        for index in shards:
            shard = self._shards[index]
            health = shard.system.health
            if shard.killed:
                reject(
                    "UNAVAILABLE",
                    f"shard {index} worker is down",
                    self.config.retry_after_ms,
                    shard=index,
                    health=health.value,
                )
                return
            if health is SystemHealth.FAILED:
                reject(
                    "FAILED",
                    f"shard {index}: recovery did not converge",
                    shard=index,
                    health=health.value,
                )
                return
            if health is SystemHealth.DEGRADED and kind in WRITE_KINDS:
                reject(
                    "DEGRADED",
                    f"shard {index} is in degraded read-only mode "
                    "(lost objects: "
                    f"{sorted(map(str, shard.system.lost_objects))})",
                    shard=index,
                    health=health.value,
                )
                return
        trace = protocol.request_trace(request)
        if len(shards) == 1:
            index = shards[0]
            shard = self._shards[index]
            work = _ShardWork(
                request=request,
                conn=conn,
                deadline=deadline,
                enqueued=now,
                trace=trace,
            )
            try:
                shard.queue.put_nowait(work)
            except queue.Full:
                reject(
                    "BACKPRESSURE",
                    f"shard {index} admission queue full "
                    f"({self.config.max_queue} waiting)",
                    self.config.retry_after_ms,
                    shard=index,
                    health=shard.system.health.value,
                )
                return
            self.obs.gauge(
                f"serve.shard.{index}.queue_depth", shard.queue.qsize()
            )
            return
        self._admit_cross(conn, request, shards, deadline, now, reject, trace)

    def _admit_cross(
        self,
        conn: _Connection,
        request: Dict[str, Any],
        shards: Tuple[int, ...],
        deadline: float,
        now: float,
        reject,
        trace: Optional[TraceContext] = None,
    ) -> None:
        """Enqueue one rendezvous token per participant, atomically.

        The cross lock guarantees all participants see cross jobs in
        the same relative order; a full participant queue cancels the
        whole job (tokens already enqueued become no-ops).
        """
        job = _CrossJob(request, conn, deadline, shards, trace=trace)
        with self._cross_lock:
            for index in shards:
                shard = self._shards[index]
                work = _ShardWork(
                    request=request,
                    conn=conn,
                    deadline=deadline,
                    enqueued=now,
                    cross=job,
                    trace=trace,
                )
                try:
                    shard.queue.put_nowait(work)
                except queue.Full:
                    job.cancelled = True
                    job.done.set()
                    reject(
                        "BACKPRESSURE",
                        f"shard {index} admission queue full "
                        f"({self.config.max_queue} waiting)",
                        self.config.retry_after_ms,
                        shard=index,
                        health=shard.system.health.value,
                    )
                    return
        self.obs.count("serve.cross_shard_requests")

    def _route(self, request: Dict[str, Any], kind: str) -> Tuple[int, ...]:
        router = self.sharded.router
        if kind in ("get", "put", "delete"):
            obj = request.get("obj")
            if not isinstance(obj, str) or not obj:
                raise protocol.ProtocolError("request requires an 'obj' string")
            return (router.shard_of(obj),)
        # apply: the footprint is the union of read and write sets.
        reads = request.get("reads") or []
        writes = request.get("writes") or []
        if not writes:
            raise protocol.ProtocolError("apply requires a writeset")
        return tuple(sorted(router.shards_of([*reads, *writes])))

    def _handle_chaos(
        self, conn: _Connection, request: Dict[str, Any], request_id, reject
    ) -> None:
        if not self.config.allow_chaos:
            reject(
                "BAD_REQUEST",
                "chaos endpoints are disabled (start with allow_chaos)",
            )
            return
        raw = request.get("shard")
        if not isinstance(raw, int) or not 0 <= raw < len(self._shards):
            reject("BAD_REQUEST", f"bad shard index {raw!r}")
            return
        try:
            if request.get("kind") == "kill_shard":
                self.kill_shard(raw)
            else:
                self.revive_shard(raw)
        except ValueError as exc:
            reject("BAD_REQUEST", str(exc), shard=raw)
            return
        conn.send(
            protocol.ok_response(
                request_id,
                self.aggregate_health().value,
                shard=raw,
                killed=self._shards[raw].killed,
            )
        )

    # ------------------------------------------------------------------
    # inline answers + health
    # ------------------------------------------------------------------
    def aggregate_health(self) -> SystemHealth:
        """The worst health across shards (the conservative headline)."""
        return max(
            (shard.system.health for shard in self._shards),
            key=lambda health: _HEALTH_RANK[health],
        )

    def _inline_answer(self, kind: str, request_id: Any) -> Dict[str, Any]:
        health = self.aggregate_health()
        if kind == "ping":
            from repro import __version__

            return protocol.ok_response(
                request_id,
                health.value,
                version=__version__,
                shards=len(self._shards),
            )
        if kind == "health":
            return protocol.ok_response(
                request_id,
                health.value,
                shards={
                    str(shard.index): {
                        "health": shard.system.health.value,
                        "killed": shard.killed,
                        "queue_depth": shard.queue.qsize(),
                        "restarts": shard.watchdog.restarts,
                        "lost_objects": sorted(
                            map(str, shard.system.lost_objects)
                        ),
                    }
                    for shard in self._shards
                },
                draining=self._draining.is_set(),
            )
        snapshot = self._combined_snapshot()
        return protocol.ok_response(
            request_id,
            health.value,
            stats={
                "counters": snapshot["counters"],
                "gauges": snapshot["gauges"],
            },
        )

    def _combined_snapshot(self) -> Dict[str, Any]:
        """Daemon registry + every shard registry, shard-prefixed."""
        merged = self.obs.snapshot()
        merged["histograms"] = dict(merged.get("histograms", {}))
        for shard in self._shards:
            if not shard.system.obs.enabled:
                continue
            snap = shard.system.obs.snapshot()
            prefix = f"shard{shard.index}."
            for section in ("counters", "gauges", "histograms", "info"):
                base = merged.setdefault(section, {})
                for name, value in snap.get(section, {}).items():
                    base[prefix + name] = value
        return merged

    def _metrics_source(self) -> Optional[Any]:
        return self._combined_snapshot()

    def _health_payload(self) -> Tuple[int, Dict[str, Any]]:
        """Liveness: 503 only when some shard is terminally FAILED."""
        healths = {
            str(shard.index): shard.system.health.value
            for shard in self._shards
        }
        any_failed = any(
            shard.system.health is SystemHealth.FAILED
            for shard in self._shards
        )
        payload = {
            "health": self.aggregate_health().value,
            "shards": healths,
            "killed": [
                shard.index for shard in self._shards if shard.killed
            ],
            "restarts": self.restarts(),
            "draining": self._draining.is_set(),
        }
        return (503 if any_failed else 200), payload

    def _ready_payload(self) -> Tuple[int, Dict[str, Any]]:
        """Readiness: every shard HEALTHY and alive, not draining."""
        _status, payload = self._health_payload()
        all_up = all(
            shard.system.health is SystemHealth.HEALTHY and not shard.killed
            for shard in self._shards
        )
        ready = all_up and not self._draining.is_set()
        payload["ready"] = ready
        return (200 if ready else 503), payload

    # ------------------------------------------------------------------
    # apply side: one worker per shard
    # ------------------------------------------------------------------
    def _shard_loop(self, shard: _Shard) -> None:
        while True:
            try:
                work = shard.queue.get(timeout=0.05)
            except queue.Empty:
                if shard.stop.is_set():
                    return
                continue
            shard.idle.clear()
            try:
                if work.cross is not None:
                    self._participate(shard, work.cross)
                else:
                    self._apply_one(shard, work)
            finally:
                shard.idle.set()
                self.obs.gauge(
                    f"serve.shard.{shard.index}.queue_depth",
                    shard.queue.qsize(),
                )

    def _apply_one(self, shard: _Shard, work: _ShardWork) -> None:
        request = work.request
        request_id = request.get("id")
        system = shard.system
        now = time.monotonic()
        if now > work.deadline:
            self.obs.count("serve.rejected.deadline")
            work.conn.send(
                protocol.error_response(
                    request_id,
                    "DEADLINE",
                    f"deadline expired after {now - work.enqueued:.3f}s "
                    "in queue",
                    system.health.value,
                    shard=shard.index,
                )
            )
            return
        # Health may have moved while the request sat in the backlog.
        if system.health is SystemHealth.FAILED:
            work.conn.send(
                protocol.error_response(
                    request_id,
                    "FAILED",
                    f"shard {shard.index}: recovery did not converge",
                    system.health.value,
                    shard=shard.index,
                )
            )
            return
        # Queue wait attributed before the kernel touches the request;
        # _ms spans feed the ms-bucket histogram and, when the request
        # carried a trace, join its tree as a child span.
        queue_tags = (
            work.trace.child().tags() if work.trace is not None else {}
        )
        self.obs.record_span(
            "ack.queue_ms",
            now - work.enqueued,
            kind=request.get("kind"),
            shard=shard.index,
            **queue_tags,
        )
        try:
            response = self._dispatch(shard, request, request_id, work.trace)
        except DegradedModeError as exc:
            response = protocol.error_response(
                request_id,
                "DEGRADED",
                str(exc),
                system.health.value,
                shard=shard.index,
            )
        except (SimulatedCrash, CorruptObjectError, TransientStorageError) as exc:
            work.conn.send(
                protocol.error_response(
                    request_id,
                    "UNAVAILABLE",
                    f"shard {shard.index} serving crash "
                    f"({type(exc).__name__}: {exc}); recovery in progress",
                    SystemHealth.RECOVERING.value,
                    self.config.retry_after_ms,
                    shard=shard.index,
                )
            )
            self.obs.count(f"serve.shard.{shard.index}.crashes")
            shard.watchdog.handle_serving_crash(exc, trace=work.trace)
            return
        except ReproError as exc:
            response = protocol.error_response(
                request_id,
                "BAD_REQUEST",
                f"{type(exc).__name__}: {exc}",
                system.health.value,
                shard=shard.index,
            )
        except Exception as exc:  # noqa: BLE001 - the loop must survive
            response = protocol.error_response(
                request_id,
                "INTERNAL",
                f"{type(exc).__name__}: {exc}",
                system.health.value,
                shard=shard.index,
            )
        self.obs.observe(
            "serve.request_seconds", time.monotonic() - now
        )
        work.conn.send(response)

    def _dispatch(
        self,
        shard: _Shard,
        request: Dict[str, Any],
        request_id: Any,
        trace: Optional[TraceContext] = None,
    ) -> Dict[str, Any]:
        kind = request["kind"]
        system = shard.system
        if kind == "get":
            obj = request["obj"]
            value = system.read(obj)
            return protocol.ok_response(
                request_id,
                system.health.value,
                value=protocol.encode_value(value),
                vsi=system.cache.vsi_of(obj),
                shard=shard.index,
            )
        if kind == "put":
            obj = request["obj"]
            value = protocol.decode_value(request.get("value"))
            op = Operation(
                f"serve.put({obj})#{next(self._op_ids)}",
                OpKind.PHYSICAL,
                reads=frozenset(),
                writes=frozenset({obj}),
                payload={obj: value},
            )
            return self._execute_durably(shard, op, request_id, trace=trace)
        if kind == "delete":
            return self._execute_durably(
                shard, delete_object(request["obj"]), request_id, trace=trace
            )
        if kind == "apply":
            op = self._apply_operation(request)
            return self._execute_durably(
                shard, op, request_id, include_writes=True, trace=trace
            )
        raise protocol.ProtocolError(f"unhandled request kind {kind!r}")

    def _apply_operation(self, request: Dict[str, Any]) -> Operation:
        fn = request.get("fn")
        if not isinstance(fn, str) or not fn:
            raise protocol.ProtocolError("apply requires a function name")
        params = [
            protocol.decode_value(param)
            for param in (request.get("params") or [])
        ]
        return Operation(
            request.get("name") or f"serve.apply({fn})#{next(self._op_ids)}",
            OpKind.LOGICAL,
            reads=frozenset(request.get("reads") or []),
            writes=frozenset(request.get("writes") or []),
            fn=fn,
            params=tuple(params),
        )

    def _execute_durably(
        self,
        shard: _Shard,
        op: Operation,
        request_id: Any,
        include_writes: bool = False,
        trace: Optional[TraceContext] = None,
    ) -> Dict[str, Any]:
        system = shard.system
        with self.obs.span(
            "ack.apply_ms",
            shard=shard.index,
            **(trace.child().tags() if trace is not None else {}),
        ):
            writes = system.execute(op)
        with self.obs.span(
            "ack.force_ms",
            shard=shard.index,
            **(trace.child().tags() if trace is not None else {}),
        ):
            system.log.force_through(op.lsi)
        self.obs.count("serve.acked_writes")
        self.obs.count(f"serve.shard.{shard.index}.acked_writes")
        fields: Dict[str, Any] = {"lsi": op.lsi, "shard": shard.index}
        if include_writes:
            fields["writes"] = {
                str(obj): protocol.encode_value(value)
                for obj, value in writes.items()
            }
        return protocol.ok_response(
            request_id, system.health.value, **fields
        )

    # ------------------------------------------------------------------
    # cross-shard rendezvous
    # ------------------------------------------------------------------
    def _participate(self, shard: _Shard, job: _CrossJob) -> None:
        if job.cancelled:
            return
        job.arrive(shard.index)
        if shard.index != job.coordinator:
            # Park: the coordinator borrows this shard's kernel turn.
            # done is set in the coordinator's finally (or at cancel),
            # so the park cannot outlive the job; stop breaks the park
            # when this worker is being killed.
            while not job.done.wait(0.05):
                if shard.stop.is_set():
                    return
            return
        self._coordinate(shard, job)

    def _coordinate(self, shard: _Shard, job: _CrossJob) -> None:
        request_id = job.request.get("id")
        start = time.monotonic()
        try:
            while not job.all_arrived.wait(0.05):
                if shard.stop.is_set():
                    return
                if time.monotonic() > job.deadline:
                    self.obs.count("serve.rejected.cross_rendezvous")
                    job.conn.send(
                        protocol.error_response(
                            request_id,
                            "UNAVAILABLE",
                            "cross-shard rendezvous timed out on shards "
                            f"{list(job.participants)} (a participant is "
                            "down or jammed)",
                            self.aggregate_health().value,
                            self.config.retry_after_ms,
                        )
                    )
                    return
            # All participants parked: this thread owns every kernel.
            # Rendezvous latency (time for every participant queue to
            # reach this job) is the sharding tax on the write.
            self.obs.record_span(
                "ack.rendezvous_ms",
                time.monotonic() - start,
                shards=len(job.participants),
                **(
                    job.trace.child().tags()
                    if job.trace is not None
                    else {}
                ),
            )
            try:
                op = self._apply_operation(job.request)
                with self.obs.span(
                    "ack.apply_ms",
                    cross=True,
                    shards=len(job.participants),
                    **(
                        job.trace.child().tags()
                        if job.trace is not None
                        else {}
                    ),
                ):
                    writes = self.sharded.execute_cross(
                        op, set(job.participants)
                    )
            except CrossShardError as exc:
                job.conn.send(
                    protocol.error_response(
                        request_id,
                        "UNAVAILABLE",
                        str(exc),
                        self.aggregate_health().value,
                        self.config.retry_after_ms,
                    )
                )
                return
            except DegradedModeError as exc:
                job.conn.send(
                    protocol.error_response(
                        request_id,
                        "DEGRADED",
                        str(exc),
                        self.aggregate_health().value,
                    )
                )
                return
            except (
                SimulatedCrash, CorruptObjectError, TransientStorageError
            ) as exc:
                # A device died mid-protocol.  Nothing was acked; each
                # participant recovers independently (acked state is
                # forced, so supervised recovery loses none of it) and
                # any partial fence is, by construction, unacked.
                job.conn.send(
                    protocol.error_response(
                        request_id,
                        "UNAVAILABLE",
                        f"cross-shard serving crash ({type(exc).__name__}: "
                        f"{exc}); recovery in progress",
                        SystemHealth.RECOVERING.value,
                        self.config.retry_after_ms,
                    )
                )
                self.obs.count("serve.cross_shard_crashes")
                for index in job.participants:
                    participant = self._shards[index]
                    if participant.killed:
                        continue
                    participant.watchdog.handle_serving_crash(
                        exc, trace=job.trace
                    )
                return
            except ReproError as exc:
                job.conn.send(
                    protocol.error_response(
                        request_id,
                        "BAD_REQUEST",
                        f"{type(exc).__name__}: {exc}",
                        self.aggregate_health().value,
                    )
                )
                return
            except Exception as exc:  # noqa: BLE001
                job.conn.send(
                    protocol.error_response(
                        request_id,
                        "INTERNAL",
                        f"{type(exc).__name__}: {exc}",
                        self.aggregate_health().value,
                    )
                )
                return
            self.obs.count("serve.acked_writes")
            self.obs.count("serve.cross_shard_acked")
            for index in job.participants:
                self.obs.count(f"serve.shard.{index}.acked_writes")
            self.obs.observe(
                "serve.cross_shard_seconds", time.monotonic() - start
            )
            job.conn.send(
                protocol.ok_response(
                    request_id,
                    self.aggregate_health().value,
                    shards=list(job.participants),
                    cross=True,
                    writes={
                        str(obj): protocol.encode_value(value)
                        for obj, value in writes.items()
                    },
                )
            )
        finally:
            job.done.set()
