"""Exception hierarchy for the recovery reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class WALViolationError(ReproError):
    """The write-ahead-log protocol was violated.

    Raised when an attempt is made to flush an object whose most recent
    update has not yet reached the stable log.  The paper assumes WAL
    throughout ("all changes in stable system state must be described by
    operations on the stable log before the changes caused by the
    operation are installed"); this error is the executable form of that
    assumption.
    """


class TornWriteError(ReproError):
    """A multi-object write was torn by a crash.

    Only raised by the raw disk model when a crash interrupts a
    multi-object flush that was not protected by an atomicity mechanism
    (shadow install or flush transaction).
    """


class UnrecoverableStateError(ReproError):
    """The stable state cannot be explained by any installed prefix set.

    Detected by the recoverability verifier: no prefix set I of the
    stable history explains the post-crash stable state, so redo
    recovery cannot succeed (Section 2 of the paper).
    """


class RecoveryError(ReproError):
    """Redo recovery failed to reproduce the pre-crash state."""


class UnknownFunctionError(ReproError):
    """A logical log record names a transform not in the function registry.

    Logical log records carry a function identifier instead of data
    values; replay requires the identifier to resolve to a registered
    deterministic function.
    """


class CacheError(ReproError):
    """Cache-manager misuse, e.g. evicting a dirty object."""


class LogTruncationError(ReproError):
    """An attempt was made to truncate the log past an uninstalled operation."""


class TransientStorageError(ReproError, OSError):
    """A storage I/O failed transiently and may succeed if retried.

    Raised by the fault-injection layer (and catchable alongside real
    ``OSError`` I/O failures) at any simulated device touchpoint: an
    object read or write, a log force, an fsync.  The hardened write
    paths retry these with bounded backoff; only after the retry budget
    is exhausted does the error propagate.
    """


class CorruptObjectError(ReproError):
    """A stored object version failed its integrity (checksum) test.

    Detection — not silent garbage — is the contract: the per-object
    CRC32 framing turns torn writes and bit rot into this error, which
    the recovery path answers with quarantine plus media-style replay
    from a backup image or the retained log.
    """


class DegradedModeError(ReproError):
    """A write was attempted while the system is in degraded read-only mode.

    The escalation ladder ends in DEGRADED when recovery converged for
    every object it *could* redo but some objects were lost (quarantined
    with no backup version and no log-reachable derivation).  Reads of
    the surviving objects stay available; mutating the state would let
    new updates depend on holes, so writes raise this error until an
    operator restores the lost objects and re-opens the system.
    """


class SimulatedCrash(Exception):
    """Base for control-flow exceptions that model a process crash.

    Deliberately *not* a :class:`ReproError`: harnesses raise and catch
    these to stop execution at an adversarial instant, then call
    ``system.crash()``.  Library code must never swallow them.
    """
