"""Bounded retry with backoff for transient storage faults.

Real devices fail transiently — a write returns ``EIO`` once and then
succeeds, an fsync is interrupted — and a recoverable system must not
escalate every such hiccup into a crash.  :func:`retry_transient` is the
single retry policy shared by the hardened write paths (log force, cache
flush, file persist): it retries :class:`TransientStorageError` a bounded
number of times, counting each retry in the shared
:class:`~repro.storage.stats.IOStats` ledger so torture runs can report
how much transient noise was absorbed.

Backoff is exponential but defaults to zero delay: the simulated fault
layer injects failures deterministically, and sleeping would only slow
the harness.  On-disk deployments that expect real transient errors can
pass a nonzero ``base_delay``.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, TypeVar

from repro.common.errors import TransientStorageError

T = TypeVar("T")

#: Default attempt budget: tolerates bursts of up to five consecutive
#: transient failures at one I/O point before giving up.
DEFAULT_ATTEMPTS = 6


def retry_transient(
    fn: Callable[[], T],
    *,
    attempts: int = DEFAULT_ATTEMPTS,
    base_delay: float = 0.0,
    stats: Optional[object] = None,
    what: str = "storage I/O",
) -> T:
    """Call ``fn``, retrying on :class:`TransientStorageError`.

    Retries up to ``attempts - 1`` times, sleeping
    ``base_delay * 2**retry`` between attempts when ``base_delay`` is
    nonzero.  Each retry bumps ``stats.fault_retries`` when a stats
    ledger is supplied.  The final failure propagates unchanged so the
    caller (or a torture harness) sees the exhausted-retries condition.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    for attempt in range(attempts):
        try:
            return fn()
        except TransientStorageError:
            if attempt == attempts - 1:
                raise
            if stats is not None:
                stats.fault_retries += 1
            if base_delay > 0.0:
                time.sleep(base_delay * (2**attempt))
    raise AssertionError("unreachable")  # pragma: no cover
