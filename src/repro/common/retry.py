"""Bounded retry with backoff for transient storage faults.

Real devices fail transiently — a write returns ``EIO`` once and then
succeeds, an fsync is interrupted — and a recoverable system must not
escalate every such hiccup into a crash.  :func:`retry_transient` is the
single retry policy shared by the hardened write paths (log force, cache
flush, file persist): it retries :class:`TransientStorageError` a bounded
number of times, counting each retry in the shared
:class:`~repro.storage.stats.IOStats` ledger so torture runs can report
how much transient noise was absorbed.

Backoff is exponential with an optional jitter fraction and a max-delay
cap (the classic "full jitter under a ceiling" shape that stops retry
herds from synchronizing), but defaults to zero delay: the simulated
fault layer injects failures deterministically, and sleeping would only
slow the harness.  On-disk deployments that expect real transient errors
can pass a nonzero ``base_delay``.  The sleep function is injectable so
tests and the torture harness run with zero real sleeping while still
exercising the delay computation.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, TypeVar

from repro.common.errors import TransientStorageError

T = TypeVar("T")

#: Default attempt budget: tolerates bursts of up to five consecutive
#: transient failures at one I/O point before giving up.
DEFAULT_ATTEMPTS = 6

#: Default ceiling on one backoff delay, seconds.  Exponential growth
#: past a few doublings adds latency without adding politeness.
DEFAULT_MAX_DELAY = 1.0


def backoff_delay(
    attempt: int,
    *,
    base_delay: float,
    max_delay: float = DEFAULT_MAX_DELAY,
    jitter: float = 0.0,
    rng: Optional[random.Random] = None,
) -> float:
    """The delay before retrying after failed attempt ``attempt`` (0-based).

    ``base_delay * 2**attempt``, capped at ``max_delay``, then spread by
    ``jitter`` (a fraction in [0, 1]): the result is drawn uniformly
    from ``[(1 - jitter) * delay, delay]``, so ``jitter=0`` is
    deterministic and ``jitter=1`` is AWS-style full jitter.  Shared by
    :func:`retry_transient` and the recovery supervisor so both rungs of
    the escalation ladder pace themselves identically.
    """
    if not 0.0 <= jitter <= 1.0:
        raise ValueError("jitter must be in [0, 1]")
    delay = min(base_delay * (2**attempt), max_delay)
    if jitter > 0.0 and delay > 0.0:
        draw = (rng or random).random()
        delay *= 1.0 - jitter * draw
    return delay


def retry_transient(
    fn: Callable[[], T],
    *,
    attempts: int = DEFAULT_ATTEMPTS,
    base_delay: float = 0.0,
    max_delay: float = DEFAULT_MAX_DELAY,
    jitter: float = 0.0,
    rng: Optional[random.Random] = None,
    sleep: Callable[[float], None] = time.sleep,
    stats: Optional[object] = None,
    what: str = "storage I/O",
    deadline: Optional[float] = None,
    clock: Callable[[], float] = time.monotonic,
) -> T:
    """Call ``fn``, retrying on :class:`TransientStorageError`.

    Retries up to ``attempts - 1`` times, sleeping
    :func:`backoff_delay` seconds between attempts when ``base_delay``
    is nonzero (via the injectable ``sleep``, so harnesses pass a
    recording stub and never block).  Each retry bumps
    ``stats.fault_retries`` when a stats ledger is supplied.  The final
    failure propagates unchanged so the caller (or a torture harness)
    sees the exhausted-retries condition.

    ``deadline`` is an **overall elapsed budget in seconds** measured
    by the injectable ``clock`` from the moment the call starts — not a
    per-attempt cap.  When the budget is already spent at a failure, or
    the next backoff delay would overshoot it, the last failure
    propagates immediately and any remaining sleep is clamped to the
    budget.  This is what lets a request-serving retry (a daemon client,
    the recovery supervisor) promise a caller-visible deadline: the
    retry loop can never outlive it, however many attempts remain.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    if deadline is not None and deadline < 0.0:
        raise ValueError("deadline must be >= 0")
    start = clock() if deadline is not None else 0.0
    for attempt in range(attempts):
        try:
            return fn()
        except TransientStorageError:
            if attempt == attempts - 1:
                raise
            if deadline is not None and clock() - start >= deadline:
                raise
            if stats is not None:
                stats.fault_retries += 1
            if base_delay > 0.0:
                delay = backoff_delay(
                    attempt,
                    base_delay=base_delay,
                    max_delay=max_delay,
                    jitter=jitter,
                    rng=rng,
                )
                if deadline is not None:
                    remaining = deadline - (clock() - start)
                    if delay >= remaining:
                        # Sleeping would burn the whole budget; spend
                        # what is left, then let the next failure (if
                        # any) propagate to the caller on time.
                        delay = max(0.0, remaining)
                if delay > 0.0:
                    sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
