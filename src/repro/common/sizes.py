"""Size model for logging and I/O cost accounting.

The paper's central cost argument (Figure 1) is about *bytes written to
the log*: a logical log record stores object identifiers and a function
identifier, while a physiological or physical record must also store a
data value that can be page-sized or larger.  To regenerate that
comparison we need a deterministic, explainable byte-size model for the
values our simulated domains store.

The model is intentionally simple and documented rather than exact:
absolute byte counts do not matter to the paper's claims, only their
relative magnitudes (identifier-sized versus object-sized).
"""

from __future__ import annotations

from typing import Any

#: Bytes charged for one object or function identifier inside a log
#: record.  The paper: "a source identifier that is unlikely to be larger
#: than 16 bytes".
ID_SIZE = 16

#: Fixed per-record header: record type, lSI, length, checksum.
RECORD_HEADER_SIZE = 24

#: Bytes charged per small scalar parameter (ints, floats, bools).
SCALAR_SIZE = 8


def size_of(value: Any) -> int:
    """Return the modelled stable-storage size of ``value`` in bytes.

    Bytes and strings are charged their length; scalars a fixed 8 bytes;
    containers the sum of their elements plus a small per-element
    overhead.  ``None`` is free (it models an absent value).

    >>> size_of(b"abcd")
    4
    >>> size_of(7) == SCALAR_SIZE
    True
    """
    if value is None:
        return 0
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return SCALAR_SIZE
    if isinstance(value, (tuple, list, frozenset, set)):
        return sum(size_of(item) + 2 for item in value)
    if isinstance(value, dict):
        return sum(size_of(k) + size_of(v) + 4 for k, v in value.items())
    sized = getattr(value, "stable_size", None)
    if sized is not None:
        return int(sized() if callable(sized) else sized)
    raise TypeError(f"no size model for values of type {type(value).__name__}")
