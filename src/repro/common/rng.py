"""Deterministic random number generation for workloads and experiments.

Every experiment in the benchmark harness is seeded so that tables are
reproducible run-to-run.  Workload generators accept either a seed or an
existing :class:`random.Random`; this helper normalizes the two.
"""

from __future__ import annotations

import random
from typing import Union

SeedLike = Union[int, random.Random, None]


def make_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    Passing an existing ``Random`` returns it unchanged so that a caller
    can thread one generator through several workload phases.  ``None``
    yields a generator seeded with 0 — experiments are deterministic by
    default, and callers that want true variation must opt in with an
    explicit seed.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        seed = 0
    return random.Random(seed)
