"""Object and state identifiers.

The paper abstracts recoverable entities as *objects* named by small
identifiers ("logging a source identifier that is unlikely to be larger
than 16 bytes is a great saving") and orders log records and object
versions with *state identifiers* (SIs).  Log sequence numbers (LSNs) are
the usual realization of SIs; the paper only requires that an object's
SIs increase monotonically, which integers satisfy.
"""

from __future__ import annotations

#: Recoverable objects are named by strings, e.g. ``"file:alpha"`` or
#: ``"page:37"``.  The string is the identifier that logical log records
#: store in place of data values.
ObjectId = str

#: State identifiers (SIs).  We use plain integers: the log manager hands
#: out monotonically increasing LSNs which serve as the lSI of each log
#: record, and objects carry a vSI (the lSI of the last operation whose
#: effect the stored version reflects).
StateId = int

#: The SI carried by an object that no logged operation has ever written.
#: Every real lSI is strictly greater.
NULL_SI: StateId = 0
