"""Shared primitive types used across the reproduction.

This package holds the vocabulary that every other subpackage speaks:
object identifiers, state identifiers, the size model used for log/I-O
accounting, error types, and a deterministic RNG helper.
"""

from repro.common.errors import (
    ReproError,
    WALViolationError,
    TornWriteError,
    UnrecoverableStateError,
    RecoveryError,
    UnknownFunctionError,
    CacheError,
    TransientStorageError,
    CorruptObjectError,
    SimulatedCrash,
)
from repro.common.identifiers import ObjectId, StateId, NULL_SI
from repro.common.retry import retry_transient
from repro.common.sizes import size_of, ID_SIZE, RECORD_HEADER_SIZE

__all__ = [
    "ReproError",
    "WALViolationError",
    "TornWriteError",
    "UnrecoverableStateError",
    "RecoveryError",
    "UnknownFunctionError",
    "CacheError",
    "TransientStorageError",
    "CorruptObjectError",
    "SimulatedCrash",
    "retry_transient",
    "ObjectId",
    "StateId",
    "NULL_SI",
    "size_of",
    "ID_SIZE",
    "RECORD_HEADER_SIZE",
]
