"""Reproducible workload generators for tests and benchmarks.

Every generator is seeded; identical seeds produce identical operation
sequences, so experiment tables are stable run-to-run.
"""

from repro.workloads.generator import (
    LogicalWorkload,
    LogicalWorkloadConfig,
    register_workload_functions,
)
from repro.workloads.scenarios import (
    app_pipeline_workload,
    fs_batch_workload,
    btree_insert_workload,
    kv_update_workload,
    transient_files_workload,
)

__all__ = [
    "LogicalWorkload",
    "LogicalWorkloadConfig",
    "register_workload_functions",
    "app_pipeline_workload",
    "fs_batch_workload",
    "btree_insert_workload",
    "kv_update_workload",
    "transient_files_workload",
]
