"""Domain-level workload drivers shared by tests and benchmarks.

These functions *drive a system* (rather than yielding operations)
because domain operations depend on runtime state — a B-tree split
happens when a page fills, an application write needs the output buffer
produced by the preceding execute.
"""

from __future__ import annotations

import hashlib


from repro.common.rng import SeedLike, make_rng
from repro.domains.application import AppLoggingMode, ApplicationRuntime
from repro.domains.btree import RecoverableBTree, SplitLoggingMode
from repro.domains.filesystem import FsLoggingMode, RecoverableFileSystem
from repro.domains.kvstore import KVPageStore
from repro.kernel.system import RecoverableSystem


def _data(tag: str, size: int) -> bytes:
    seed = hashlib.sha256(tag.encode()).digest()
    return (seed * (size // len(seed) + 1))[:size]


def app_pipeline_workload(
    system: RecoverableSystem,
    pipelines: int = 10,
    object_size: int = 4096,
    mode: AppLoggingMode = AppLoggingMode.LOGICAL,
    program: str = "upper",
    app_id: str = "app:bench",
) -> ApplicationRuntime:
    """Run ``pipelines`` read→execute→write interactions.

    Each pipeline ingests a freshly-created input file of
    ``object_size`` bytes and emits a same-sized output file — the
    application-recovery workload of Section 1.
    """
    fs = RecoverableFileSystem(system)
    app = ApplicationRuntime(system, app_id, program=program, mode=mode)
    for index in range(pipelines):
        src, dst = f"in{index}", f"out{index}"
        fs.write_file(src, _data(f"{app_id}:{index}", object_size))
        app.run_pipeline(fs.object_id(src), fs.object_id(dst))
    return app


def fs_batch_workload(
    system: RecoverableSystem,
    files: int = 8,
    object_size: int = 4096,
    mode: FsLoggingMode = FsLoggingMode.LOGICAL,
) -> RecoverableFileSystem:
    """Create ``files`` inputs, then copy and sort each (the paper's
    file-system examples)."""
    fs = RecoverableFileSystem(system, mode=mode)
    for index in range(files):
        name = f"f{index}"
        fs.write_file(name, _data(name, object_size))
        fs.copy(name, f"{name}.copy")
        fs.sort(name, f"{name}.sorted")
    return fs


def transient_files_workload(
    system: RecoverableSystem,
    files: int = 12,
    object_size: int = 2048,
    keep_every: int = 4,
    seed: SeedLike = 0,
) -> RecoverableFileSystem:
    """Create/derive/delete temp files; only every ``keep_every``-th
    survives.  The Section 5 recovery-optimization scenario: most
    logged operations touch objects that are deleted by crash time."""
    fs = RecoverableFileSystem(system)
    for index in range(files):
        name = f"tmp{index}"
        fs.write_file(name, _data(name, object_size))
        fs.sort(name, f"{name}.out")
        if index % keep_every != 0:
            fs.delete(name)
            fs.delete(f"{name}.out")
    return fs


def btree_insert_workload(
    system: RecoverableSystem,
    inserts: int = 200,
    capacity: int = 8,
    value_size: int = 64,
    mode: SplitLoggingMode = SplitLoggingMode.LOGICAL,
    seed: SeedLike = 0,
) -> RecoverableBTree:
    """Insert ``inserts`` random keys, forcing plenty of splits."""
    rng = make_rng(seed)
    tree = RecoverableBTree(system, capacity=capacity, mode=mode)
    keys = list(range(inserts))
    rng.shuffle(keys)
    for key in keys:
        tree.insert(key, _data(f"v{key}", value_size))
    return tree


def kv_update_workload(
    system: RecoverableSystem,
    updates: int = 200,
    keys: int = 50,
    pages: int = 16,
    value_size: int = 64,
    seed: SeedLike = 0,
) -> KVPageStore:
    """Random put/remove traffic over a key population."""
    rng = make_rng(seed)
    store = KVPageStore(system, pages=pages)
    for index in range(updates):
        key = rng.randrange(keys)
        if rng.random() < 0.1:
            store.remove(key)
        else:
            store.put(key, _data(f"{key}:{index}", value_size))
    return store
