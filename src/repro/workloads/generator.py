"""Random logical-operation workloads.

``LogicalWorkload`` emits a seeded mix of the operation *shapes* of
Table 1 over a fixed object population:

* blind physical initializations / overwrites (``W_P``);
* physiological self-updates (``X ← f(X)``, the ``Ex`` shape);
* logical combine (``Y ← f(X, Y)`` — operation A of Figure 1, the
  application-read shape);
* logical derive (``X ← g(Y)`` — operation B, the application-write /
  file-copy shape);
* deletes.

The mix probabilities are configurable, which is how experiment E4
sweeps the share of logical operations, and how the property tests
generate adversarial graphs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.common.identifiers import ObjectId
from repro.common.rng import SeedLike, make_rng
from repro.core.functions import FunctionRegistry
from repro.core.operation import Operation, OpKind, delete_object


def _payload_bytes(tag: int, size: int) -> bytes:
    """Deterministic pseudo-data of the given size."""
    seed = hashlib.sha256(str(tag).encode()).digest()
    reps = size // len(seed) + 1
    return (seed * reps)[:size]


def _wl_combine(
    reads: Mapping[ObjectId, Any], src: ObjectId, dst: ObjectId
) -> Dict[ObjectId, Any]:
    """dst <- digest(src + dst): reads both, writes dst (op A shape)."""
    left = reads[src] or b""
    right = reads[dst] or b""
    return {dst: hashlib.sha256(bytes(left) + bytes(right)).digest()}


def _wl_derive(
    reads: Mapping[ObjectId, Any], src: ObjectId, dst: ObjectId
) -> Dict[ObjectId, Any]:
    """dst <- digest(src): reads src only, writes dst (op B shape)."""
    data = reads[src] or b""
    return {dst: hashlib.sha256(b"derive" + bytes(data)).digest()}


def _wl_touch(reads: Mapping[ObjectId, Any], obj: ObjectId) -> Dict[ObjectId, Any]:
    """obj <- digest(obj): the physiological self-update shape."""
    data = reads[obj] or b""
    return {obj: hashlib.sha256(b"touch" + bytes(data)).digest()}


def register_workload_functions(registry: FunctionRegistry) -> None:
    """Register the workload transforms (idempotent)."""
    for name, fn in (
        ("wl_combine", _wl_combine),
        ("wl_derive", _wl_derive),
        ("wl_touch", _wl_touch),
    ):
        if not registry.registered(name):
            registry.register(name, fn)


@dataclass
class LogicalWorkloadConfig:
    """Mix and population for a random logical workload.

    The four weights need not sum to 1; they are normalized.  Deletions
    are applied on top with probability ``p_delete`` per step (replacing
    the drawn operation), re-creating the object later via a blind
    write if it is drawn again.
    """

    objects: int = 8
    operations: int = 50
    object_size: int = 256
    w_physical: float = 0.2
    w_touch: float = 0.3
    w_combine: float = 0.3
    w_derive: float = 0.2
    p_delete: float = 0.0


class LogicalWorkload:
    """Iterator of operations drawn from the configured mix."""

    def __init__(
        self,
        config: Optional[LogicalWorkloadConfig] = None,
        seed: SeedLike = 0,
    ) -> None:
        self.config = config if config is not None else LogicalWorkloadConfig()
        self.rng = make_rng(seed)
        self._initialized: set = set()
        self._counter = 0
        self._ids: List[ObjectId] = [
            f"obj:{i}" for i in range(self.config.objects)
        ]

    def object_ids(self) -> List[ObjectId]:
        return list(self._ids)

    def _pick(self) -> ObjectId:
        return self.rng.choice(self._ids)

    def _fresh_physical(self, obj: ObjectId) -> Operation:
        self._counter += 1
        data = _payload_bytes(self._counter, self.config.object_size)
        return Operation(
            f"wp({obj})#{self._counter}",
            OpKind.PHYSICAL,
            reads=set(),
            writes={obj},
            payload={obj: data},
        )

    def operations(self) -> Iterator[Operation]:
        """Yield the configured number of operations."""
        cfg = self.config
        weights = [cfg.w_physical, cfg.w_touch, cfg.w_combine, cfg.w_derive]
        kinds = ["physical", "touch", "combine", "derive"]
        emitted = 0
        while emitted < cfg.operations:
            obj = self._pick()
            if (
                cfg.p_delete > 0
                and obj in self._initialized
                and self.rng.random() < cfg.p_delete
            ):
                self._initialized.discard(obj)
                emitted += 1
                yield delete_object(obj)
                continue
            kind = self.rng.choices(kinds, weights=weights, k=1)[0]
            if obj not in self._initialized or kind == "physical":
                # First touch of an object must create it.
                self._initialized.add(obj)
                emitted += 1
                yield self._fresh_physical(obj)
                continue
            if kind == "touch":
                self._counter += 1
                emitted += 1
                yield Operation(
                    f"touch({obj})#{self._counter}",
                    OpKind.PHYSIOLOGICAL,
                    reads={obj},
                    writes={obj},
                    fn="wl_touch",
                    params=(obj,),
                )
                continue
            other = self._pick()
            if other == obj or other not in self._initialized:
                # Degenerate draw: fall back to a self-update.
                self._counter += 1
                emitted += 1
                yield Operation(
                    f"touch({obj})#{self._counter}",
                    OpKind.PHYSIOLOGICAL,
                    reads={obj},
                    writes={obj},
                    fn="wl_touch",
                    params=(obj,),
                )
                continue
            self._counter += 1
            emitted += 1
            if kind == "combine":
                yield Operation(
                    f"combine({other}->{obj})#{self._counter}",
                    OpKind.LOGICAL,
                    reads={other, obj},
                    writes={obj},
                    fn="wl_combine",
                    params=(other, obj),
                )
            else:  # derive: obj <- g(other), blind write of obj
                yield Operation(
                    f"derive({other}->{obj})#{self._counter}",
                    OpKind.LOGICAL,
                    reads={other},
                    writes={obj},
                    fn="wl_derive",
                    params=(other, obj),
                )
