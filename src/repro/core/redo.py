"""REDO tests (Section 5).

During the redo pass, every operation record scanned is submitted to a
REDO test.  The test must be *safe* (only approve applicable,
installable operations — or operations whose re-execution cannot damage
exposed state) and *live* (approve every minimal uninstalled operation).

Three tests are provided, in increasing sophistication:

* :class:`RedoAll` — redo everything on the log.  Safe in a
  repeat-history system (re-execution of installed blind/physical writes
  is idempotent; logical re-execution over exposed state is guarded by
  the trial-execution voiding rules), maximally expensive.
* :class:`VsiRedoTest` — the traditional SI test: if any object of
  writeset(Op) carries vSI ≥ lSI the operation is *manifestly installed*
  (installation is atomic even when flushing is partial, so one
  up-to-date object proves installation) and is bypassed; otherwise
  redo.
* :class:`GeneralizedRedoTest` — the paper's contribution: combines the
  vSI "is installed" test with an rSI "is exposed" test.  Redo only if
  ``lSI ≥ max(rSI, vSI+1)`` for some object of the writeset; operations
  entirely below their objects' rSIs were installed without flushing
  (their results are unexposed) and are bypassed — the optimization that
  saves re-executing applications and re-writing large files.
"""

from __future__ import annotations

import abc
import enum
from typing import Callable, Optional

from repro.common.identifiers import ObjectId, StateId
from repro.core.operation import Operation
from repro.core.state_identifiers import DirtyObjectTable

#: Callback giving the vSI of an object in the recovering state (the
#: stable version, possibly already overwritten by earlier redo steps).
VsiReader = Callable[[ObjectId], StateId]


class RedoDecision(enum.Enum):
    """Outcome of a REDO test for one scanned operation."""

    REDO = "redo"
    #: Some writeset object carries vSI ≥ lSI: manifestly installed.
    SKIP_INSTALLED = "skip-installed"
    #: Every writeset object sits below its rSI (or left the dirty
    #: object table): installed without flushing, results unexposed.
    SKIP_UNEXPOSED = "skip-unexposed"


class RedoTest(abc.ABC):
    """Strategy interface for the REDO decision."""

    name: str = "abstract"

    @abc.abstractmethod
    def decide(
        self,
        op: Operation,
        vsi_of: VsiReader,
        dirty: DirtyObjectTable,
    ) -> RedoDecision:
        """Classify ``op`` against the recovering state."""


class RedoAll(RedoTest):
    """Redo every logged operation (the no-test baseline)."""

    name = "redo-all"

    def decide(
        self,
        op: Operation,
        vsi_of: VsiReader,
        dirty: DirtyObjectTable,
    ) -> RedoDecision:
        return RedoDecision.REDO


class VsiRedoTest(RedoTest):
    """The traditional SI test: vSI ≥ lSI ⇒ installed, else redo.

    Because installation is atomic even under rW's partial flushing,
    *any* writeset object with vSI ≥ lSI proves the whole operation
    installed; conversely vSI < lSI on all objects forces a redo, even
    when the operation was installed without flushing — the cost the
    generalized test eliminates.
    """

    name = "vsi"

    def decide(
        self,
        op: Operation,
        vsi_of: VsiReader,
        dirty: DirtyObjectTable,
    ) -> RedoDecision:
        for obj in op.writes:
            if vsi_of(obj) >= op.lsi:
                return RedoDecision.SKIP_INSTALLED
        return RedoDecision.REDO


class GeneralizedRedoTest(RedoTest):
    """The paper's rSI + vSI test.

    Redo iff ``lSI ≥ max(rSI, vSI + 1)`` for some object of the
    writeset; i.e. the operation is uninstalled *and* some result value
    is exposed.  Objects absent from the dirty object table are clean or
    deleted — every operation writing only such objects is installed (or
    its results can never be read) and is bypassed without touching the
    stable versions at all, which is the "transient objects" win.
    """

    name = "rsi"

    def __init__(self, check_vsi: bool = True) -> None:
        #: Whether to confirm with the (page-read-costing) vSI check
        #: before redoing; disabling it models an analysis-only test.
        self.check_vsi = check_vsi

    def decide(
        self,
        op: Operation,
        vsi_of: VsiReader,
        dirty: DirtyObjectTable,
    ) -> RedoDecision:
        needs_redo = False
        for obj in op.writes:
            rsi: Optional[StateId] = dirty.rsi_of(obj)
            if rsi is None or op.lsi < rsi:
                continue  # installed or unexposed for this object
            needs_redo = True
            break
        if not needs_redo:
            return RedoDecision.SKIP_UNEXPOSED
        if self.check_vsi:
            for obj in op.writes:
                if vsi_of(obj) >= op.lsi:
                    # The installation record was lost with the volatile
                    # log buffer, but the flushed version proves
                    # installation anyway.
                    return RedoDecision.SKIP_INSTALLED
        return RedoDecision.REDO
