"""Crash recovery: the analysis and redo passes.

This is the executable form of ``Recover(D, I)`` (Figure 2) in its
practical ARIES-like shape, generalized per Section 5:

1. **Analysis pass** — retrieve the latest checkpoint's dirty object
   table, then scan forward: operation records re-dirty objects
   (rSI = lSI of the first uninstalled writer), installation records
   advance or remove rSIs (for flushed *and* unexposed objects), flush
   records remove objects, and committed flush transactions are
   re-applied to the stable store to repair torn in-place overwrites.
2. **Redo pass** — scan operation records from the minimum rSI,
   submitting each to the configured REDO test; approved operations are
   *trial executed*: an execution that raises, or that attempts to
   update more than the original writeset, is **voided** (Section 5's
   expanded REDO rules b and c).  Redone effects live in a volatile
   recovery cache over the stable store; nothing is flushed here —
   flushing after recovery obeys the same write-graph rules as normal
   execution, which the kernel handles by adopting the redone
   operations into a fresh cache manager.

The pass never resets installed state (the paper's second write-write
strategy); history is only ever repeated forward.

Recovery is **restartable** (the paper's Theorem 2 idempotence, taken
seriously against failing devices): its only stable-state mutations are
the idempotent flush-transaction re-applies, so a crash at *any* point
inside a run — a redo-pass read, a re-apply write — can be answered by
simply calling :meth:`RecoveryManager.run` again from scratch, and the
rerun converges to the same verified state.  Recovery's own I/O is
hardened like the forward paths: reads and re-apply writes retry
transient faults, and a checkpoint whose payload fails its content
checksum is rejected in favour of the previous intact one (or the log
start).  The escalation beyond retries — quarantine, media restore,
degraded mode — lives in :mod:`repro.kernel.supervisor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import UnknownFunctionError
from repro.common.retry import retry_transient
from repro.common.identifiers import NULL_SI, ObjectId, StateId
from repro.core.functions import FunctionRegistry
from repro.core.operation import Operation, execute_transform
from repro.core.redo import RedoDecision, RedoTest, VsiRedoTest
from repro.core.state_identifiers import DirtyObjectTable
from repro.storage.stable_store import StableStore
from repro.storage.stats import IOStats
from repro.wal.log_manager import LogManager
from repro.wal.records import (
    CheckpointRecord,
    FlushRecord,
    FlushTxnCommitRecord,
    FlushTxnValuesRecord,
    InstallationRecord,
    OperationRecord,
)


@dataclass
class RecoveryReport:
    """Counters describing one recovery run."""

    checkpoint_lsi: StateId = NULL_SI
    analysis_records: int = 0
    redo_start_lsi: StateId = NULL_SI
    records_scanned: int = 0
    ops_considered: int = 0
    ops_redone: int = 0
    ops_skipped_installed: int = 0
    ops_skipped_unexposed: int = 0
    ops_voided: int = 0
    flush_txns_reapplied: int = 0
    #: Checkpoints whose dirty-object table failed its content checksum
    #: and were skipped in favour of an earlier one (or the log start).
    checkpoints_rejected: int = 0

    def skipped(self) -> int:
        """All operations bypassed without re-execution."""
        return self.ops_skipped_installed + self.ops_skipped_unexposed


@dataclass
class RecoveryOutcome:
    """Everything the kernel needs to resume after recovery."""

    report: RecoveryReport
    #: The reconstructed dirty object table (rSIs) after analysis+redo.
    dirty: DirtyObjectTable
    #: Volatile values produced by redo: obj -> (value, vSI).
    volatile: Dict[ObjectId, Tuple[Any, StateId]]
    #: Redone (still uninstalled) operations in log order.
    redone_ops: List[Operation] = field(default_factory=list)
    #: Stable history: operations whose records survived on the log,
    #: in log order (the post-crash H for verification).
    stable_ops: List[Operation] = field(default_factory=list)


def _all_dirty_from(
    stable_ops: List[Operation], start: StateId
) -> DirtyObjectTable:
    """Media-recovery dirty table: every object written at or after the
    backup-start point is potentially stale in the restored image."""
    table = DirtyObjectTable()
    for op in stable_ops:
        if op.lsi >= start:
            for obj in op.writes:
                table.note_write(obj, op.lsi)
    if not len(table):
        # Nothing logged since the backup: force an (empty) scan window
        # by leaving the table empty — min_rsi() None means no redo.
        return table
    return table


class RecoveryManager:
    """Runs analysis + redo against a stable log and stable store."""

    def __init__(
        self,
        log: LogManager,
        store: StableStore,
        registry: FunctionRegistry,
        redo_test: RedoTest,
        stats: Optional[IOStats] = None,
    ) -> None:
        self.log = log
        self.store = store
        self.registry = registry
        self.redo_test = redo_test
        self.stats = stats if stats is not None else IOStats()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(
        self, media_redo_start: Optional[StateId] = None
    ) -> RecoveryOutcome:
        """Execute both passes and return the outcome.

        ``media_redo_start`` switches to media-recovery mode: the
        stable store was just replaced by a (fuzzy) backup, so the
        dirty-object table reconstructed by analysis describes the
        *lost* store and cannot be trusted for skipping.  The redo scan
        instead starts at the backup-start lSI and relies purely on the
        per-object vSI test — the classical media-recovery discipline
        (the full treatment of logical operations over fuzzy backups is
        the companion paper [10]; see DESIGN.md for scope).
        """
        report = RecoveryReport()
        dirty, stable_ops = self._analysis_pass(report)
        if media_redo_start is not None:
            dirty = _all_dirty_from(stable_ops, media_redo_start)
        volatile, redone = self._redo_pass(
            report,
            dirty,
            redo_test=VsiRedoTest() if media_redo_start is not None else None,
        )
        return RecoveryOutcome(
            report=report,
            dirty=dirty,
            volatile=volatile,
            redone_ops=redone,
            stable_ops=stable_ops,
        )

    # ------------------------------------------------------------------
    # analysis pass
    # ------------------------------------------------------------------
    def _analysis_pass(
        self, report: RecoveryReport
    ) -> Tuple[DirtyObjectTable, List[Operation]]:
        checkpoint: Optional[CheckpointRecord] = None
        for record in self.log.stable_records():
            if isinstance(record, CheckpointRecord):
                if record.is_intact():
                    checkpoint = record
                else:
                    # Damaged dirty-object table: trusting it could skip
                    # redo work.  Fall back to the previous intact
                    # checkpoint (or, if none, the log start) — strictly
                    # more conservative, never less correct.
                    report.checkpoints_rejected += 1
        if checkpoint is not None:
            dirty = DirtyObjectTable(checkpoint.dirty_objects)
            report.checkpoint_lsi = checkpoint.lsi
            scan_from = checkpoint.lsi
        else:
            dirty = DirtyObjectTable()
            scan_from = NULL_SI

        stable_ops: List[Operation] = []
        pending_txn_values: Dict[int, FlushTxnValuesRecord] = {}
        # Operation records before the checkpoint still matter for the
        # stable history (verification) even though their dirty-table
        # effect is summarized by the checkpoint.
        for record in self.log.stable_records():
            if isinstance(record, OperationRecord):
                stable_ops.append(record.op)
            if record.lsi < scan_from:
                continue
            report.analysis_records += 1
            if isinstance(record, OperationRecord):
                for obj in record.op.writes:
                    dirty.note_write(obj, record.lsi)
            elif isinstance(record, InstallationRecord):
                self._apply_installation(dirty, record)
            elif isinstance(record, FlushRecord):
                dirty.remove(record.obj)
            elif isinstance(record, FlushTxnValuesRecord):
                pending_txn_values[record.txn_id] = record
            elif isinstance(record, FlushTxnCommitRecord):
                values = pending_txn_values.pop(record.txn_id, None)
                if values is not None:
                    self._reapply_flush_txn(values)
                    report.flush_txns_reapplied += 1
        return dirty, stable_ops

    @staticmethod
    def _apply_installation(
        dirty: DirtyObjectTable, record: InstallationRecord
    ) -> None:
        for mapping in (record.flushed, record.unexposed):
            for obj, rsi in mapping.items():
                if rsi is None:
                    dirty.remove(obj)
                else:
                    # Analysis reconstructs, so assignment (not the
                    # monotone advance) is correct here: the record is
                    # authoritative for the moment it was logged.
                    dirty.remove(obj)
                    dirty.note_write(obj, rsi)

    def _reapply_flush_txn(self, values: FlushTxnValuesRecord) -> None:
        """Re-apply a committed flush transaction to the stable store.

        Idempotent: versions already in place are rewritten with the
        same value/vSI.  This repairs in-place overwrites torn by the
        crash (the mechanism's durability story).
        """
        for obj, (value, vsi) in values.versions.items():
            if self.store.vsi_of(obj) < vsi:
                retry_transient(
                    lambda obj=obj, value=value, vsi=vsi: self.store.write(
                        obj, value, vsi
                    ),
                    stats=self.stats,
                    what="flush-txn re-apply",
                )

    # ------------------------------------------------------------------
    # redo pass
    # ------------------------------------------------------------------
    def _redo_pass(
        self,
        report: RecoveryReport,
        dirty: DirtyObjectTable,
        redo_test: Optional[RedoTest] = None,
    ) -> Tuple[Dict[ObjectId, Tuple[Any, StateId]], List[Operation]]:
        test = redo_test if redo_test is not None else self.redo_test
        start = dirty.min_rsi()
        if start is None:
            # Nothing dirty: no redo needed.
            report.redo_start_lsi = self.log.stable_end_lsi() + 1
            return {}, []
        report.redo_start_lsi = start

        volatile: Dict[ObjectId, Tuple[Any, StateId]] = {}
        redone: List[Operation] = []
        probed: set = set()

        def vsi_of(obj: ObjectId) -> StateId:
            if obj in volatile:
                return volatile[obj][1]
            if obj not in probed:
                # The paper: the vSI check comes "at the additional
                # cost of reading a page".  Charge the first probe of
                # each stable object.
                probed.add(obj)
                self.stats.object_reads += 1
            return self.store.vsi_of(obj)

        def value_of(obj: ObjectId) -> Any:
            if obj in volatile:
                return volatile[obj][0]
            if self.store.contains(obj):
                return retry_transient(
                    lambda obj=obj: self.store.read(obj),
                    stats=self.stats,
                    what="redo-pass read",
                ).value
            return None

        for record in self.log.stable_records(from_lsi=start):
            report.records_scanned += 1
            self.stats.log_records_scanned += 1
            if not isinstance(record, OperationRecord):
                continue
            op = record.op
            report.ops_considered += 1
            decision = test.decide(op, vsi_of, dirty)
            if decision is RedoDecision.SKIP_INSTALLED:
                report.ops_skipped_installed += 1
                self.stats.redo_skipped += 1
                continue
            if decision is RedoDecision.SKIP_UNEXPOSED:
                report.ops_skipped_unexposed += 1
                self.stats.redo_skipped += 1
                continue
            self._trial_execute(op, value_of, volatile, redone, report)
        return volatile, redone

    def _trial_execute(
        self,
        op: Operation,
        value_of,
        volatile: Dict[ObjectId, Tuple[Any, StateId]],
        redone: List[Operation],
        report: RecoveryReport,
    ) -> None:
        """Re-execute ``op`` with the Section 5 voiding rules.

        Rule (b): an execution updating more than the original writeset
        is detected and voided.  Rule (c): an execution raising against
        inapplicable state is voided.  In neither case are changes made;
        exposed objects are never damaged.
        """
        reads = {obj: value_of(obj) for obj in op.reads}
        try:
            writes = execute_transform(op, reads, self.registry)
        except UnknownFunctionError:
            # Not an inapplicable-state symptom but a deployment error:
            # the registry lacks a transform the log names.  Voiding it
            # would silently lose the operation's effects; fail loudly.
            raise
        except Exception:
            report.ops_voided += 1
            self.stats.redo_voided += 1
            return
        if set(writes) != set(op.writes):
            report.ops_voided += 1
            self.stats.redo_voided += 1
            return
        for obj, value in writes.items():
            volatile[obj] = (value, op.lsi)
        redone.append(op)
        report.ops_redone += 1
        self.stats.redo_executed += 1
