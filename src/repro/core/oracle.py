"""In-memory oracle execution of histories.

The explainability definitions speak of "the value of x after the last
operation of I" — a statement about the *ideal* crash-free execution.
The oracle replays a history in memory (no cache, no log, no crashes)
and answers those questions.  It is also what the recoverability
verifier compares a recovered system against.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Set

from repro.common.identifiers import ObjectId
from repro.core.functions import FunctionRegistry, default_registry
from repro.core.operation import Operation, TOMBSTONE, execute_transform


class Oracle:
    """Replays operations in conflict order against an in-memory state."""

    def __init__(
        self,
        registry: Optional[FunctionRegistry] = None,
        initial: Optional[Mapping[ObjectId, Any]] = None,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.initial: Dict[ObjectId, Any] = dict(initial or {})

    def replay(self, ops: Iterable[Operation]) -> Dict[ObjectId, Any]:
        """Return the state after executing ``ops`` in the given order."""
        state: Dict[ObjectId, Any] = dict(self.initial)
        for op in ops:
            reads = {obj: state.get(obj) for obj in op.reads}
            writes = execute_transform(op, reads, self.registry)
            state.update(writes)
        return state

    def value_after(
        self, ops: Iterable[Operation], obj: ObjectId
    ) -> Any:
        """The value of ``obj`` after executing ``ops`` in order."""
        return self.replay(ops).get(obj, self.initial.get(obj))

    def trajectory(
        self, ops: Iterable[Operation]
    ) -> List[Dict[ObjectId, Any]]:
        """States after each prefix: ``trajectory(ops)[k]`` is the state
        after the first k operations (index 0 is the initial state)."""
        state: Dict[ObjectId, Any] = dict(self.initial)
        states = [dict(state)]
        for op in ops:
            reads = {obj: state.get(obj) for obj in op.reads}
            writes = execute_transform(op, reads, self.registry)
            state.update(writes)
            states.append(dict(state))
        return states

    def live_objects(self, ops: Iterable[Operation]) -> Set[ObjectId]:
        """Objects whose final oracle value is present and not deleted."""
        final = self.replay(ops)
        return {
            obj
            for obj, value in final.items()
            if value is not TOMBSTONE and value is not None
        }
