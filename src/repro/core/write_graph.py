"""Write graph ``W`` of [8] (Figure 3 of the paper), batch form.

The cache manager's central problem: installation-graph nodes are
*operations* but the cache manager writes *objects*.  The write graph
translates the installation subgraph over the cached uninstalled
operations into a graph whose nodes carry sets of objects that must be
flushed atomically, with edges giving the required flush order.

This module holds the **batch** Figure 3 construction,
:class:`BatchWriteGraph`, verbatim:

1. ``T`` — the transitive closure of O ~ P iff
   ``writeset(O) ∩ writeset(P) ≠ ∅`` (overlapping updates must install
   atomically, so their operations share a node);
2. ``V`` — the installation graph collapsed w.r.t. T's classes;
3. ``S`` — the strongly connected components of V;
4. ``W`` — V collapsed w.r.t. S, which makes W acyclic so that a flush
   order exists.

In W, ``vars(n) = Writes(n)``: every object written by a node's
operations is in its atomic flush set, and |vars(n)| only grows until
the node is flushed — the inflexibility the refined write graph fixes.

The batch form is **not** what the cache manager runs anymore: the
live W-mode engine is
:class:`~repro.core.incremental_write_graph.IncrementalWriteGraph`,
which maintains the same graph one operation at a time.  BatchWriteGraph
remains the obviously-Figure-3 reference that the W-mode differential
tests rebuild against, and the per-purge-rebuild baseline the E10
W-mode lane measures its speedup over.  (The old ``WriteGraph`` name
was a deprecated shim for one release and has been removed.)
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.common.identifiers import ObjectId
from repro.core.graph_utils import UnionFind, strongly_connected_components
from repro.core.installation_graph import InstallationGraph
from repro.core.operation import Operation


class WriteGraphNode:
    """A node of W: a set of operations and their atomic flush set."""

    _ids = itertools.count()

    def __init__(self, ops: Iterable[Operation]) -> None:
        self.node_id = next(self._ids)
        self.ops: Set[Operation] = set(ops)

    @property
    def vars(self) -> Set[ObjectId]:
        """The atomic flush set; in W this is all of Writes(n)."""
        return self.writes

    @property
    def notx(self) -> Set[ObjectId]:
        """Always empty in W: every written object must be flushed."""
        return set()

    @property
    def writes(self) -> Set[ObjectId]:
        """``Writes(n)``: union of the writesets of ops(n)."""
        out: Set[ObjectId] = set()
        for op in self.ops:
            out |= op.writes
        return out

    @property
    def reads(self) -> Set[ObjectId]:
        """``Reads(n)``: union of the readsets of ops(n)."""
        out: Set[ObjectId] = set()
        for op in self.ops:
            out |= op.reads
        return out

    def max_lsi(self) -> int:
        """The largest log SI among the node's operations (WAL bound)."""
        return max(op.lsi for op in self.ops)

    def __repr__(self) -> str:
        names = ",".join(sorted(op.name for op in self.ops))
        return f"<Wnode {self.node_id} ops=[{names}] vars={sorted(self.vars)}>"

    def __hash__(self) -> int:
        return self.node_id

    def __eq__(self, other: object) -> bool:
        return self is other


class BatchWriteGraph:
    """Acyclic write graph computed by the Figure 3 batch algorithm."""

    def __init__(self, installation: InstallationGraph) -> None:
        self.installation = installation
        self.nodes: List[WriteGraphNode] = []
        self._succ: Dict[WriteGraphNode, Set[WriteGraphNode]] = {}
        self._pred: Dict[WriteGraphNode, Set[WriteGraphNode]] = {}
        #: Always 0: SCC collapse happens inside the batch build, not as
        #: observable incremental events.  Present for the engine
        #: protocol.
        self.cycle_collapses: int = 0
        self._build()

    # ------------------------------------------------------------------
    # Figure 3
    # ------------------------------------------------------------------
    def _build(self) -> None:
        ops = self.installation.ops
        if not ops:
            return
        # Step 1: T, the transitive closure of writeset overlap.
        finder = UnionFind()
        writers: Dict[ObjectId, Operation] = {}
        for op in ops:
            finder.add(op)
            for obj in op.writes:
                if obj in writers:
                    finder.union(writers[obj], op)
                else:
                    writers[obj] = op
        classes = finder.classes()

        # Step 2: V, the installation graph collapsed w.r.t. T.
        v_nodes = [frozenset(cls) for cls in classes]
        membership: Dict[Operation, FrozenSet[Operation]] = {}
        for cls in v_nodes:
            for op in cls:
                membership[op] = cls
        v_succ: Dict[FrozenSet[Operation], Set[FrozenSet[Operation]]] = {
            cls: set() for cls in v_nodes
        }
        for src, dst in self.installation.edges():
            a, b = membership[src], membership[dst]
            if a is not b:
                v_succ[a].add(b)

        # Steps 3-4: SCCs of V, collapsed to make W acyclic.
        sccs = strongly_connected_components(v_nodes, v_succ)
        scc_of: Dict[FrozenSet[Operation], int] = {}
        for idx, scc in enumerate(sccs):
            for cls in scc:
                scc_of[cls] = idx
        scc_nodes: Dict[int, WriteGraphNode] = {}
        for idx, scc in enumerate(sccs):
            merged: Set[Operation] = set()
            for cls in scc:
                merged |= cls
            node = WriteGraphNode(merged)
            scc_nodes[idx] = node
            self.nodes.append(node)
            self._succ[node] = set()
            self._pred[node] = set()
        for cls, dsts in v_succ.items():
            for dst in dsts:
                a, b = scc_nodes[scc_of[cls]], scc_nodes[scc_of[dst]]
                if a is not b:
                    self._succ[a].add(b)
                    self._pred[b].add(a)

    # ------------------------------------------------------------------
    # queries and maintenance
    # ------------------------------------------------------------------
    def successors(self, node: WriteGraphNode) -> Set[WriteGraphNode]:
        """Nodes that must be flushed after ``node``."""
        return set(self._succ[node])

    def predecessors(self, node: WriteGraphNode) -> Set[WriteGraphNode]:
        """Nodes that must be flushed before ``node``."""
        return set(self._pred[node])

    def minimal_nodes(self) -> List[WriteGraphNode]:
        """Nodes with no predecessors — the flushable ones."""
        return [n for n in self.nodes if not self._pred[n]]

    def node_of(self, op: Operation) -> Optional[WriteGraphNode]:
        """The node whose ops contain ``op``, if any."""
        for node in self.nodes:
            if op in node.ops:
                return node
        return None

    def holder_of(self, obj: ObjectId) -> Optional[WriteGraphNode]:
        """The node with ``obj`` in its flush set, if any (in W every
        written object is in exactly one live node's vars)."""
        for node in self.nodes:
            if obj in node.vars:
                return node
        return None

    def remove_node(
        self, node: WriteGraphNode
    ) -> Tuple[Set[ObjectId], Set[ObjectId]]:
        """Remove an installed node and all its edges.

        Per the paper, removal of a minimal node never creates cycles.
        Returns the ``(vars, notx)`` partition at removal — ``notx`` is
        always empty in W.
        """
        flushed = set(node.vars)
        for succ in self._succ.pop(node):
            self._pred[succ].discard(node)
        for pred in self._pred.pop(node):
            self._succ[pred].discard(node)
        self.nodes.remove(node)
        return flushed, set()

    def is_acyclic(self) -> bool:
        """Sanity check used by tests: W must always be acyclic."""
        sccs = strongly_connected_components(self.nodes, self._succ)
        return all(len(scc) == 1 for scc in sccs) and not any(
            node in self._succ[node] for node in self.nodes
        )

    def edges(self) -> Iterable[Tuple[WriteGraphNode, WriteGraphNode]]:
        """All flush-order edges."""
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield src, dst

    def uninstalled_operations(self) -> Set[Operation]:
        """All operations currently held by the graph."""
        out: Set[Operation] = set()
        for node in self.nodes:
            out |= node.ops
        return out

    def flush_set_sizes(self) -> List[int]:
        """|vars(n)| for every node — the E4 metric."""
        return [len(n.vars) for n in self.nodes]

    def stats(self) -> Dict[str, object]:
        """Engine counters.  A batch construction *is* one full
        rebuild — exactly what the incremental engines exist to avoid."""
        return {
            "engine": "W-batch",
            "operations_added": len(self.installation.ops),
            "live_nodes": len(self.nodes),
            "cycle_collapses": 0,
            "full_rebuilds": 1,
        }

    def __len__(self) -> int:
        return len(self.nodes)
