"""The refined write graph ``rW`` (Section 3, Figure 6), indexed.

The fundamental insight of the paper: a subsequent update can make an
object *unexposed* — no uninstalled operation needs to read the value an
earlier operation wrote to it — and an unexposed object need not be
flushed to install the operations that wrote it.  ``rW`` captures this:

* unlike ``W``, ``vars(n)`` (the atomic flush set) can be a *strict
  subset* of ``Writes(n)``; the difference ``Notx(n)`` holds the
  not-exposed objects, which are installed without being flushed;
* extra edges — write-write edges to the node of the blind writer, and
  *inverse write-read* edges from readers of an unexposed object's last
  value — ensure it is safe to skip flushing ``Notx(n)``.

The construction is incremental (``add_operation`` is the paper's
``addop_rW``) and engineered so per-insert work is proportional to the
objects the operation touches, not to the graph:

* the Figure 6 scans ("nodes whose vars overlap exp", "nodes that read
  an overwritten object", "nodes holding a blindly-written object") are
  answered by inverted indexes — ``_last_write_node`` doubles as the
  vars-holder index (X ∈ vars(n) only for X's last-writer node) and
  ``_reader_nodes`` maps each object to every node that read it;
* instead of a full-graph SCC pass per insert, a topological order over
  the nodes is maintained incrementally (Pearce–Kelly style): edges
  added by the current insert that land against the order seed a
  bounded region repair whose restricted Tarjan pass finds exactly the
  graph's non-trivial SCCs, so cycle collapses are counted identically
  to the batch construction;
* nodes live in an insertion-ordered dict and a ready set tracks the
  predecessor-free nodes, so ``minimal_nodes`` and ``remove_node`` do
  no graph rescans.

``repro.core._reference.ReferenceWriteGraph`` preserves the original
scan-everything construction; the differential property tests hold this
engine to exact node/edge/collapse equality with it.

Invariant maintained throughout: for every object X with at least one
uninstalled writer, X belongs to ``vars`` of exactly one node — the node
containing X's *last* uninstalled writer — or to no node's vars if every
remaining writer holds it in ``Notx``.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.common.identifiers import ObjectId
from repro.core.graph_utils import strongly_connected_components
from repro.core.operation import Operation
from repro.obs.metrics import COUNT_BUCKETS, NULL_OBS


class RWNode:
    """A node of rW: operations, their flush set vars, and Notx."""

    _ids = itertools.count()

    def __init__(self) -> None:
        self.node_id = next(RWNode._ids)
        self.ops: Set[Operation] = set()
        self.vars: Set[ObjectId] = set()
        #: Maintained by RefinedWriteGraph only (ReferenceWriteGraph
        #: recomputes everything from ``ops``): the union of readsets of
        #: ops — the reverse of the graph's reader indexes — and the
        #: objects whose last uninstalled writer this node holds — the
        #: reverse of ``_last_write_node``.
        self._read_objs: Set[ObjectId] = set()
        self._lw_objs: Set[ObjectId] = set()

    @property
    def writes(self) -> Set[ObjectId]:
        """``Writes(n)``: union of writesets of ops(n)."""
        out: Set[ObjectId] = set()
        for op in self.ops:
            out |= op.writes
        return out

    @property
    def reads(self) -> Set[ObjectId]:
        """``Reads(n)``: union of readsets of ops(n)."""
        out: Set[ObjectId] = set()
        for op in self.ops:
            out |= op.reads
        return out

    @property
    def notx(self) -> Set[ObjectId]:
        """``Notx(n) = Writes(n) − vars(n)``: installed without flushing."""
        return self.writes - self.vars

    def max_lsi(self) -> int:
        """Largest log SI among the node's operations (WAL force bound)."""
        return max(op.lsi for op in self.ops)

    def __repr__(self) -> str:
        names = ",".join(sorted(op.name for op in self.ops))
        return (
            f"<rWnode {self.node_id} ops=[{names}] vars={sorted(self.vars)} "
            f"notx={sorted(self.notx)}>"
        )

    def __hash__(self) -> int:
        return self.node_id

    def __eq__(self, other: object) -> bool:
        return self is other


class RefinedWriteGraph:
    """Incrementally-maintained refined write graph, fully indexed.

    Implements the :class:`~repro.core.engine.WriteGraphEngine`
    protocol; :class:`~repro.core.incremental_write_graph.IncrementalWriteGraph`
    reuses this class's machinery with W's coarser exposure rule.
    """

    #: Mode string reported by :meth:`stats` ("rW" here; the W-mode
    #: subclass overrides it).
    engine_name = "rW"

    def __init__(self) -> None:
        #: Insertion-ordered node set.  Merge targets are always the
        #: lowest-id member of their group and keep their slot, so
        #: iteration order is node_id-ascending — the same order the
        #: original list-based implementation exposed.
        self._nodes: Dict[RWNode, None] = {}
        self._succ: Dict[RWNode, Set[RWNode]] = {}
        self._pred: Dict[RWNode, Set[RWNode]] = {}
        #: Node holding X's last uninstalled writer (the vars/Notx
        #: holder).  Doubles as the vars index: X ∈ vars(n) implies n is
        #: this map's entry for X.
        self._last_write_node: Dict[ObjectId, RWNode] = {}
        #: Nodes containing an operation that read X's *current* value,
        #: i.e. read X since its most recent write.  Feeds the inverse
        #: write-read edges.
        self._readers_since_write: Dict[ObjectId, Set[RWNode]] = {}
        #: Every live node with X in Reads(n) — the read-write edge scan.
        self._reader_nodes: Dict[ObjectId, Set[RWNode]] = {}
        #: op -> its node, for O(1) node_of.
        self._node_of_op: Dict[Operation, RWNode] = {}
        #: Predecessor-free nodes (the installable frontier).
        self._ready: Set[RWNode] = set()
        #: Incremental topological order: node -> integer rank.
        #: Invariant between inserts: every edge (u, v) has
        #: ``_topo[u] < _topo[v]``.
        self._topo: Dict[RWNode, int] = {}
        #: Fresh ranks above / below every assigned one; only the
        #: relative order of ranks matters, so they never need
        #: renumbering.
        self._next_rank: int = 0
        self._min_rank: int = 0
        #: Edges actually added by the insert in progress (including
        #: ones re-pointed by merges); the repair pass checks only these
        #: against the topological order.
        self._edge_log: List[Tuple[RWNode, RWNode]] = []
        self._logging: bool = False
        #: Count of node merges forced by cycle collapse (E8 metric).
        self.cycle_collapses: int = 0
        #: stats() counters.  ``full_rebuilds`` stays 0 by construction
        #: — an incremental engine never reconstructs from scratch; the
        #: cache manager asserts this on the hot path.
        self.full_rebuilds: int = 0
        self._ops_added: int = 0
        self._merges: int = 0
        self._removals: int = 0
        #: Observability hook (null object by default; the cache
        #: manager's ``set_obs`` swaps in the system registry).
        self.obs = NULL_OBS

    @property
    def nodes(self) -> List[RWNode]:
        """Live nodes in insertion (= node_id-ascending) order."""
        return list(self._nodes)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _new_node(self) -> RWNode:
        node = RWNode()
        self._nodes[node] = None
        self._succ[node] = set()
        self._pred[node] = set()
        self._ready.add(node)
        self._topo[node] = self._next_rank
        self._next_rank += 1
        return node

    def _add_edge(self, src: RWNode, dst: RWNode) -> None:
        if src is dst:
            return
        succs = self._succ[src]
        if dst in succs:
            return
        succs.add(dst)
        self._pred[dst].add(src)
        self._ready.discard(dst)
        if self._logging:
            self._edge_log.append((src, dst))

    def _drop_node(self, node: RWNode) -> None:
        """Forget a node's membership bookkeeping (not its edges)."""
        del self._nodes[node]
        self._ready.discard(node)
        del self._topo[node]

    def _merge(self, group: List[RWNode]) -> RWNode:
        """Merge ``group`` into a single node, rewriting edges and maps.

        ``group`` must be sorted by node_id: the target (its first
        member) then keeps both the lowest id and its iteration slot.
        """
        if len(group) == 1:
            return group[0]
        self._merges += 1
        target = group[0]
        rest = group[1:]
        members = set(group)
        for node in rest:
            target.ops |= node.ops
            target.vars |= node.vars
            target._read_objs |= node._read_objs
            target._lw_objs |= node._lw_objs
            for op in node.ops:
                self._node_of_op[op] = target
        # Re-point edges, dropping those internal to the merged set.
        for node in rest:
            for succ in self._succ.pop(node):
                self._pred[succ].discard(node)
                if succ not in members:
                    self._add_edge(target, succ)
            for pred in self._pred.pop(node):
                self._succ[pred].discard(node)
                if pred not in members:
                    self._add_edge(pred, target)
            self._drop_node(node)
            # Rewrite the per-object indexes through the reverse sets.
            for obj in node._lw_objs:
                self._last_write_node[obj] = target
            node._lw_objs = set()
            for obj in node._read_objs:
                readers = self._reader_nodes.get(obj)
                if readers is not None:
                    readers.discard(node)
                    readers.add(target)
                since = self._readers_since_write.get(obj)
                if since is not None and node in since:
                    since.discard(node)
                    since.add(target)
        # Internal edges vanished: the target may have become minimal.
        if self._pred[target]:
            self._ready.discard(target)
        else:
            self._ready.add(target)
        return target

    # ------------------------------------------------------------------
    # incremental cycle collapse
    # ------------------------------------------------------------------
    def _repair_order(self) -> None:
        """Restore the topological order after an insert's new edges.

        Edges logged by the insert whose endpoints are both still alive
        and land against the maintained order are *violations*.  No
        violations ⇒ every edge still respects the order ⇒ the graph is
        acyclic and nothing moves.  Otherwise the repair works on a
        closed set of nodes: the full *descendant closure* of the
        violation targets, or, symmetrically, the full *ancestor
        closure* of the violation sources — both are discovered in
        lockstep and the one that finishes first wins, so discovery
        costs twice the smaller cone.  Every cycle must cross a
        violating edge (non-violating edges walk strictly forward in
        the order) and so lies entirely inside either closure — a
        Tarjan pass over it finds exactly the full graph's non-trivial
        SCCs, and collapse counts match the batch construction.  The
        closure's survivors then move, in topological order, to fresh
        ranks past the end of the order (descendant cone) or before its
        start (ancestor cone), which restores the invariant everywhere:
        a successor-closed set has no outside successors and its
        outside predecessors rank below the appended block, and
        mirror-image for a predecessor-closed set.
        """
        violations = [
            (src, dst)
            for src, dst in self._edge_log
            if src in self._topo
            and dst in self._topo
            and self._topo[src] >= self._topo[dst]
        ]
        self._edge_log.clear()
        if not violations:
            return
        self._logging = False
        obs = self.obs
        if not obs.enabled:
            self._repair_violations(violations)
            return
        collapses_before = self.cycle_collapses
        started = time.perf_counter()
        cone = self._repair_violations(violations)
        obs.observe("engine.repair", time.perf_counter() - started)
        obs.observe("engine.repair_cone_nodes", cone, COUNT_BUCKETS)
        collapsed = self.cycle_collapses - collapses_before
        if collapsed:
            obs.count("engine.cycle_collapses", collapsed)

    def _repair_violations(
        self, violations: List[Tuple[RWNode, RWNode]]
    ) -> int:
        """Run the region repair for ``violations``; returns the size of
        the discovered closure (the repair cone)."""
        fwd: Set[RWNode] = set()
        fwd_stack = [dst for _, dst in violations]
        bwd: Set[RWNode] = set()
        bwd_stack = [src for src, _ in violations]
        while True:
            node = fwd_stack.pop()
            if node not in fwd:
                fwd.add(node)
                fwd_stack.extend(
                    s for s in self._succ[node] if s not in fwd
                )
            if not fwd_stack:
                closure, moving_down = fwd, True
                break
            node = bwd_stack.pop()
            if node not in bwd:
                bwd.add(node)
                bwd_stack.extend(
                    p for p in self._pred[node] if p not in bwd
                )
            if not bwd_stack:
                closure, moving_down = bwd, False
                break
        ordered = sorted(closure, key=self._topo.__getitem__)
        # A cycle threads some violating edge (u, v) and so carries v's
        # descendants back around to u — unless a violation's far
        # endpoint made it into the closure, no cycle exists and the
        # SCC pass can be skipped.
        if moving_down:
            may_cycle = any(src in closure for src, _ in violations)
        else:
            may_cycle = any(dst in closure for _, dst in violations)
        if not may_cycle:
            # Acyclic repair: with no violating edge inside the
            # closure, every intra-closure edge already respects the
            # old ranks — reassigning fresh ranks in old-rank order
            # keeps them valid without a Kahn pass.
            if moving_down:
                for node in ordered:
                    self._topo[node] = self._next_rank
                    self._next_rank += 1
            else:
                self._min_rank -= len(ordered)
                for offset, node in enumerate(ordered):
                    self._topo[node] = self._min_rank + offset
            return len(ordered)
        # The closure is closed under the direction searched, so the
        # unrestricted adjacency stays inside it; for the ancestor
        # cone Tarjan runs on the transpose, which has the same SCCs.
        adjacency = self._succ if moving_down else self._pred
        obs = self.obs
        collapse_started = time.perf_counter() if obs.enabled else 0.0
        for scc in strongly_connected_components(ordered, adjacency):
            if len(scc) > 1:
                self.cycle_collapses += 1
                self._merge(sorted(scc, key=lambda n: n.node_id))
        if obs.enabled:
            obs.observe(
                "engine.collapse", time.perf_counter() - collapse_started
            )
        survivors = [n for n in ordered if n in self._topo]
        survivor_set = set(survivors)
        # Kahn over the (now acyclic) closure, smallest node_id first
        # for determinism.  The descendant cone streams out to fresh
        # high ranks; the ancestor cone runs on the transpose (sinks
        # first) and streams down to fresh low ranks.
        forward, backward = (
            (self._succ, self._pred) if moving_down else
            (self._pred, self._succ)
        )
        indegree = {
            n: len(backward[n] & survivor_set) for n in survivors
        }
        frontier = [(n.node_id, n) for n in survivors if indegree[n] == 0]
        heapq.heapify(frontier)
        placed = 0
        while frontier:
            _, node = heapq.heappop(frontier)
            if moving_down:
                self._topo[node] = self._next_rank
                self._next_rank += 1
            else:
                self._min_rank -= 1
                self._topo[node] = self._min_rank
            placed += 1
            for neighbor in forward[node]:
                if neighbor in survivor_set:
                    indegree[neighbor] -= 1
                    if indegree[neighbor] == 0:
                        heapq.heappush(frontier, (neighbor.node_id, neighbor))
        assert placed == len(survivors), "collapse left a cycle"
        return len(ordered)

    # ------------------------------------------------------------------
    # addop_rW (Figure 6)
    # ------------------------------------------------------------------
    def add_operation(self, op: Operation) -> RWNode:
        """Insert ``op``, presented in conflict order, and return its node."""
        obs = self.obs
        started = time.perf_counter() if obs.enabled else 0.0
        self._ops_added += 1
        exp = op.exp
        notexp = op.notexp
        self._edge_log.clear()
        self._logging = True

        # Merge nodes whose flush sets overlap op's exposed updates: op
        # reads those values, so it must install atomically with (and
        # its results flush with) the operations that produced them.
        # X ∈ vars(n) only for n = X's last-writer node, so the holder
        # lookup replaces the all-nodes scan.
        overlapping: List[RWNode] = []
        for obj in exp:
            holder = self._last_write_node.get(obj)
            if (
                holder is not None
                and obj in holder.vars
                and holder not in overlapping
            ):
                overlapping.append(holder)
        if overlapping:
            m = self._merge(sorted(overlapping, key=lambda n: n.node_id))
            # A sink can take a fresh top rank for free, so the edges
            # about to point at it cannot land against the topological
            # order — the repair pass then usually has nothing to do.
            if not self._succ[m]:
                self._topo[m] = self._next_rank
                self._next_rank += 1
        else:
            m = self._new_node()
        m.ops.add(op)
        m.vars |= op.writes
        m._read_objs |= op.reads
        self._node_of_op[op] = m
        for obj in op.reads:
            self._reader_nodes.setdefault(obj, set()).add(m)

        # New read-write edges: any node that read an object op now
        # overwrites must install first, else replaying its operations
        # after a crash would see the wrong input.
        for obj in op.writes:
            for p in self._reader_nodes.get(obj, ()):
                if p is not m:
                    self._add_edge(p, m)

        # Blind updates un-expose objects held in other nodes' flush
        # sets: remove them there, record the write-write ordering, and
        # protect the dropped values with inverse write-read edges.
        if notexp:
            dropped_by_holder: Dict[RWNode, Set[ObjectId]] = {}
            for obj in notexp:
                p = self._last_write_node.get(obj)
                if p is None or p is m or obj not in p.vars:
                    continue
                dropped_by_holder.setdefault(p, set()).add(obj)
            for p, dropped in dropped_by_holder.items():
                p.vars -= dropped
                # op is in must(op') for op' in ops(p): the blind write
                # overwrites values p's operations wrote, so p installs
                # first (write-write edge).
                self._add_edge(p, m)
                # Inverse write-read edges: any node q that read
                # Lastw(p, X) must install before p so that when p is
                # installed, X's unflushed value is no longer needed.
                for obj in dropped:
                    for q in self._readers_since_write.get(obj, ()):
                        if q is not p:
                            self._add_edge(q, p)

        # Bookkeeping: op's reads happen against current values (before
        # its writes replace them), so an exposed write's own read is
        # against the value it replaces and the new value starts with no
        # readers.
        for obj in op.reads - op.writes:
            self._readers_since_write.setdefault(obj, set()).add(m)
        for obj in op.writes:
            prev = self._last_write_node.get(obj)
            if prev is not None and prev is not m:
                prev._lw_objs.discard(obj)
            self._last_write_node[obj] = m
            m._lw_objs.add(obj)
            self._readers_since_write[obj] = set()

        self._repair_order()
        self._logging = False
        if obs.enabled:
            obs.observe("engine.addop", time.perf_counter() - started)
        # The merge/collapse steps may have replaced m; return the node
        # that now holds op.
        return self._node_of_op[op]

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def minimal_nodes(self) -> List[RWNode]:
        """Nodes with no predecessors — installable by flushing vars(n)."""
        return sorted(self._ready, key=lambda n: n.node_id)

    def remove_node(self, node: RWNode) -> Tuple[Set[ObjectId], Set[ObjectId]]:
        """Remove an installed node; returns ``(vars, Notx)`` at removal.

        The caller must only remove minimal nodes (checked), must have
        flushed ``vars`` atomically, and should advance the rSIs of all
        of ``Writes(n) = vars ∪ Notx``.
        """
        if self._pred[node]:
            raise ValueError(f"{node!r} has uninstalled predecessors")
        self._removals += 1
        flushed, unexposed = set(node.vars), set(node.notx)
        for succ in self._succ.pop(node):
            preds = self._pred[succ]
            preds.discard(node)
            if not preds:
                self._ready.add(succ)
        del self._pred[node]
        self._drop_node(node)
        for op in node.ops:
            del self._node_of_op[op]
        for obj in node._lw_objs:
            del self._last_write_node[obj]
        node._lw_objs = set()
        for obj in node._read_objs:
            readers = self._reader_nodes.get(obj)
            if readers is not None:
                readers.discard(node)
            since = self._readers_since_write.get(obj)
            if since is not None:
                since.discard(node)
        return flushed, unexposed

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def node_of(self, op: Operation) -> Optional[RWNode]:
        """The node containing ``op``, or None if op was installed."""
        return self._node_of_op.get(op)

    def holder_of(self, obj: ObjectId) -> Optional[RWNode]:
        """The node with ``obj`` in vars or Notx via its last writer."""
        return self._last_write_node.get(obj)

    def successors(self, node: RWNode) -> Set[RWNode]:
        """Nodes that must install after ``node``."""
        return set(self._succ[node])

    def predecessors(self, node: RWNode) -> Set[RWNode]:
        """Nodes that must install before ``node``."""
        return set(self._pred[node])

    def edges(self) -> Iterable[Tuple[RWNode, RWNode]]:
        """All flush-order edges."""
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield src, dst

    def is_acyclic(self) -> bool:
        """True when no non-trivial SCC exists (always, post-collapse)."""
        sccs = strongly_connected_components(list(self._nodes), self._succ)
        return all(len(scc) == 1 for scc in sccs)

    def uninstalled_operations(self) -> Set[Operation]:
        """All operations currently held by the graph."""
        return set(self._node_of_op)

    def flush_set_sizes(self) -> List[int]:
        """|vars(n)| for every node — the E4 metric."""
        return [len(n.vars) for n in self._nodes]

    def stats(self) -> Dict[str, object]:
        """Engine counters (the WriteGraphEngine ``stats()`` hook)."""
        return {
            "engine": self.engine_name,
            "operations_added": self._ops_added,
            "live_nodes": len(self._nodes),
            "merges": self._merges,
            "cycle_collapses": self.cycle_collapses,
            "removals": self._removals,
            "full_rebuilds": self.full_rebuilds,
        }

    def __len__(self) -> int:
        return len(self._nodes)
