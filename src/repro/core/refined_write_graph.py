"""The refined write graph ``rW`` (Section 3, Figure 6).

The fundamental insight of the paper: a subsequent update can make an
object *unexposed* — no uninstalled operation needs to read the value an
earlier operation wrote to it — and an unexposed object need not be
flushed to install the operations that wrote it.  ``rW`` captures this:

* unlike ``W``, ``vars(n)`` (the atomic flush set) can be a *strict
  subset* of ``Writes(n)``; the difference ``Notx(n)`` holds the
  not-exposed objects, which are installed without being flushed;
* extra edges — write-write edges to the node of the blind writer, and
  *inverse write-read* edges from readers of an unexposed object's last
  value — ensure it is safe to skip flushing ``Notx(n)``.

The construction is incremental (``add_operation`` is the paper's
``addop_rW``).  Cycles can still arise (the paper's a/b/c application
example); they are collapsed into single nodes exactly as in the
construction of ``W``.

Invariant maintained throughout: for every object X with at least one
uninstalled writer, X belongs to ``vars`` of exactly one node — the node
containing X's *last* uninstalled writer — or to no node's vars if every
remaining writer holds it in ``Notx``.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.common.identifiers import ObjectId
from repro.core.graph_utils import strongly_connected_components
from repro.core.operation import Operation


class RWNode:
    """A node of rW: operations, their flush set vars, and Notx."""

    _ids = itertools.count()

    def __init__(self) -> None:
        self.node_id = next(RWNode._ids)
        self.ops: Set[Operation] = set()
        self.vars: Set[ObjectId] = set()

    @property
    def writes(self) -> Set[ObjectId]:
        """``Writes(n)``: union of writesets of ops(n)."""
        out: Set[ObjectId] = set()
        for op in self.ops:
            out |= op.writes
        return out

    @property
    def reads(self) -> Set[ObjectId]:
        """``Reads(n)``: union of readsets of ops(n)."""
        out: Set[ObjectId] = set()
        for op in self.ops:
            out |= op.reads
        return out

    @property
    def notx(self) -> Set[ObjectId]:
        """``Notx(n) = Writes(n) − vars(n)``: installed without flushing."""
        return self.writes - self.vars

    def max_lsi(self) -> int:
        """Largest log SI among the node's operations (WAL force bound)."""
        return max(op.lsi for op in self.ops)

    def __repr__(self) -> str:
        names = ",".join(sorted(op.name for op in self.ops))
        return (
            f"<rWnode {self.node_id} ops=[{names}] vars={sorted(self.vars)} "
            f"notx={sorted(self.notx)}>"
        )

    def __hash__(self) -> int:
        return self.node_id

    def __eq__(self, other: object) -> bool:
        return self is other


class RefinedWriteGraph:
    """Incrementally-maintained refined write graph."""

    def __init__(self) -> None:
        self.nodes: List[RWNode] = []
        self._succ: Dict[RWNode, Set[RWNode]] = {}
        self._pred: Dict[RWNode, Set[RWNode]] = {}
        #: Node holding X's last uninstalled writer (the vars/Notx holder).
        self._last_write_node: Dict[ObjectId, RWNode] = {}
        #: Nodes containing an operation that read X's *current* value,
        #: i.e. read X since its most recent write.  Feeds the inverse
        #: write-read edges.
        self._readers_since_write: Dict[ObjectId, Set[RWNode]] = {}
        #: Count of node merges forced by cycle collapse (E8 metric).
        self.cycle_collapses: int = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _new_node(self) -> RWNode:
        node = RWNode()
        self.nodes.append(node)
        self._succ[node] = set()
        self._pred[node] = set()
        return node

    def _add_edge(self, src: RWNode, dst: RWNode) -> None:
        if src is dst:
            return
        self._succ[src].add(dst)
        self._pred[dst].add(src)

    def _merge(self, group: List[RWNode]) -> RWNode:
        """Merge ``group`` into a single node, rewriting edges and maps."""
        if len(group) == 1:
            return group[0]
        target = group[0]
        rest = group[1:]
        members = set(group)
        for node in rest:
            target.ops |= node.ops
            target.vars |= node.vars
        # Re-point edges, dropping those internal to the merged set.
        for node in rest:
            for succ in self._succ.pop(node):
                self._pred[succ].discard(node)
                if succ not in members:
                    self._add_edge(target, succ)
            for pred in self._pred.pop(node):
                self._succ[pred].discard(node)
                if pred not in members:
                    self._add_edge(pred, target)
            self.nodes.remove(node)
        # Rewrite bookkeeping references.
        for obj, holder in list(self._last_write_node.items()):
            if holder in members:
                self._last_write_node[obj] = target
        for readers in self._readers_since_write.values():
            if readers & members:
                readers.difference_update(members)
                readers.add(target)
        return target

    def _collapse_cycles(self) -> None:
        """Collapse every non-trivial SCC into one node (second collapse
        of Figure 3, applied on demand after insertions)."""
        sccs = strongly_connected_components(list(self.nodes), self._succ)
        for scc in sccs:
            if len(scc) > 1:
                self.cycle_collapses += 1
                self._merge(sorted(scc, key=lambda n: n.node_id))

    # ------------------------------------------------------------------
    # addop_rW (Figure 6)
    # ------------------------------------------------------------------
    def add_operation(self, op: Operation) -> RWNode:
        """Insert ``op``, presented in conflict order, and return its node."""
        exp = op.exp
        notexp = op.notexp

        # Merge nodes whose flush sets overlap op's exposed updates: op
        # reads those values, so it must install atomically with (and
        # its results flush with) the operations that produced them.
        overlapping = [n for n in self.nodes if n.vars & exp]
        if overlapping:
            m = self._merge(sorted(overlapping, key=lambda n: n.node_id))
        else:
            m = self._new_node()
        m.ops.add(op)
        m.vars |= op.writes

        # New read-write edges: any node that read an object op now
        # overwrites must install first, else replaying its operations
        # after a crash would see the wrong input.
        for p in self.nodes:
            if p is m:
                continue
            if p.reads & op.writes:
                self._add_edge(p, m)

        # Blind updates un-expose objects held in other nodes' flush
        # sets: remove them there, record the write-write ordering, and
        # protect the dropped values with inverse write-read edges.
        if notexp:
            for p in list(self.nodes):
                if p is m:
                    continue
                dropped = p.vars & notexp
                if not dropped:
                    continue
                p.vars -= dropped
                # op is in must(op') for op' in ops(p): the blind write
                # overwrites values p's operations wrote, so p installs
                # first (write-write edge).
                self._add_edge(p, m)
                # Inverse write-read edges: any node q that read
                # Lastw(p, X) must install before p so that when p is
                # installed, X's unflushed value is no longer needed.
                for obj in dropped:
                    for q in self._readers_since_write.get(obj, ()):
                        if q is not p:
                            self._add_edge(q, p)

        # Bookkeeping: op's reads happen against current values (before
        # its writes replace them).
        for obj in op.reads:
            self._readers_since_write.setdefault(obj, set()).add(m)
        for obj in op.writes:
            self._last_write_node[obj] = m
            self._readers_since_write[obj] = set()
            if obj in op.reads:
                # An exposed write reads the old value it replaces; the
                # new value's readers start empty, but the node itself
                # holds the writer so no self-constraint is needed.
                pass

        self._collapse_cycles()
        # The merge/collapse steps may have replaced m; return the node
        # that now holds op.
        return self.node_of(op)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def minimal_nodes(self) -> List[RWNode]:
        """Nodes with no predecessors — installable by flushing vars(n)."""
        return [n for n in self.nodes if not self._pred[n]]

    def remove_node(self, node: RWNode) -> Tuple[Set[ObjectId], Set[ObjectId]]:
        """Remove an installed node; returns ``(vars, Notx)`` at removal.

        The caller must only remove minimal nodes (checked), must have
        flushed ``vars`` atomically, and should advance the rSIs of all
        of ``Writes(n) = vars ∪ Notx``.
        """
        if self._pred[node]:
            raise ValueError(f"{node!r} has uninstalled predecessors")
        flushed, unexposed = set(node.vars), set(node.notx)
        for succ in self._succ.pop(node):
            self._pred[succ].discard(node)
        del self._pred[node]
        self.nodes.remove(node)
        for obj, holder in list(self._last_write_node.items()):
            if holder is node:
                del self._last_write_node[obj]
        for readers in self._readers_since_write.values():
            readers.discard(node)
        return flushed, unexposed

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def node_of(self, op: Operation) -> Optional[RWNode]:
        """The node containing ``op``, or None if op was installed."""
        for node in self.nodes:
            if op in node.ops:
                return node
        return None

    def holder_of(self, obj: ObjectId) -> Optional[RWNode]:
        """The node with ``obj`` in vars or Notx via its last writer."""
        return self._last_write_node.get(obj)

    def successors(self, node: RWNode) -> Set[RWNode]:
        """Nodes that must install after ``node``."""
        return set(self._succ[node])

    def predecessors(self, node: RWNode) -> Set[RWNode]:
        """Nodes that must install before ``node``."""
        return set(self._pred[node])

    def edges(self) -> Iterable[Tuple[RWNode, RWNode]]:
        """All flush-order edges."""
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield src, dst

    def is_acyclic(self) -> bool:
        """True when no non-trivial SCC exists (always, post-collapse)."""
        sccs = strongly_connected_components(list(self.nodes), self._succ)
        return all(len(scc) == 1 for scc in sccs)

    def uninstalled_operations(self) -> Set[Operation]:
        """All operations currently held by the graph."""
        out: Set[Operation] = set()
        for node in self.nodes:
            out |= node.ops
        return out

    def flush_set_sizes(self) -> List[int]:
        """|vars(n)| for every node — the E4 metric."""
        return [len(n.vars) for n in self.nodes]

    def __len__(self) -> int:
        return len(self.nodes)
