"""The installation graph (Section 2).

Nodes are operations; edges constrain the order in which operations may
be *installed* into the stable state.  It is derived from the conflict
graph by:

* keeping all **read-write** edges — O → P when O < P and
  ``readset(O) ∩ writeset(P) ≠ ∅``.  If P's update reached the stable
  state but O's did not, O can no longer be replayed because its input
  was overwritten;
* throwing away all **write-read** edges;
* keeping only some **write-write** edges — O → P when P ∈ must(O) but
  P ∉ can(O).

must()/can() approximation
--------------------------
[8] defines ``must(O)`` as the operations that would have to be
recovered by re-execution were ``writeset(O)`` reset by redoing O, and
``can(O)`` as those recoverable as a side effect of recovering must(O).
The paper pursues the strategy in which recovery **never resets state**
(history is repeated forward), under which write-write order cannot be
violated and no write-write installation edges are required; that is our
default policy, ``WriteWritePolicy.REPEAT_HISTORY``.

``WriteWritePolicy.CONSERVATIVE`` keeps an edge O → P for *every* later
P with an overlapping writeset.  It is sound (it only adds constraints)
and is used by tests and the E8 ablation to quantify how much the
repeat-history strategy buys.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.operation import Operation


class WriteWritePolicy(enum.Enum):
    """Which write-write edges the installation graph keeps."""

    #: Recovery repeats history and never resets installed state, so no
    #: write-write edges arise (the paper's "second strategy").
    REPEAT_HISTORY = "repeat-history"
    #: Keep every overlapping-writeset edge: must(O) with can(O) = ∅.
    CONSERVATIVE = "conservative"


class InstallationGraph:
    """Installation graph over a set of operations in conflict order."""

    def __init__(
        self,
        ops: Iterable[Operation],
        write_write: WriteWritePolicy = WriteWritePolicy.REPEAT_HISTORY,
    ) -> None:
        self.ops: List[Operation] = sorted(ops, key=lambda o: o.op_id)
        self.policy = write_write
        self._succ: Dict[Operation, Set[Operation]] = {o: set() for o in self.ops}
        self._pred: Dict[Operation, Set[Operation]] = {o: set() for o in self.ops}
        self._build()

    def _build(self) -> None:
        ops = self.ops
        for j, later in enumerate(ops):
            for i in range(j):
                earlier = ops[i]
                if self._has_edge(earlier, later):
                    self._succ[earlier].add(later)
                    self._pred[later].add(earlier)

    def _has_edge(self, earlier: Operation, later: Operation) -> bool:
        if earlier.reads & later.writes:
            return True  # read-write edge
        if self.policy is WriteWritePolicy.CONSERVATIVE:
            if earlier.writes & later.writes:
                return True  # conservative write-write edge
        return False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def successors(self, op: Operation) -> Set[Operation]:
        """Operations that must be installed after ``op``."""
        return set(self._succ[op])

    def predecessors(self, op: Operation) -> Set[Operation]:
        """Operations that must be installed before ``op``."""
        return set(self._pred[op])

    def edges(self) -> Iterator[Tuple[Operation, Operation]]:
        """All installation edges as (earlier, later) pairs."""
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield src, dst

    def minimal_operations(
        self, excluding: Optional[Set[Operation]] = None
    ) -> List[Operation]:
        """Operations with no uninstalled installation predecessors.

        ``excluding`` is the set already considered installed; a minimal
        uninstalled operation (Theorem 1) has all its predecessors in
        that set.
        """
        installed = excluding or set()
        return [
            op
            for op in self.ops
            if op not in installed
            and all(p in installed for p in self._pred[op])
        ]

    def installation_order(self) -> List[Operation]:
        """A topological order of the graph (conflict order works:
        every edge goes from an earlier to a later operation)."""
        return list(self.ops)

    def must(self, op: Operation) -> Set[Operation]:
        """Later operations whose writes would be reset by redoing op."""
        return {
            later
            for later in self.ops
            if later.op_id > op.op_id and (later.writes & op.writes)
        }

    def __contains__(self, op: Operation) -> bool:
        return op in self._succ

    def __len__(self) -> int:
        return len(self.ops)
