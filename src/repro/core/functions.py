"""Registry of deterministic transforms named by logical log records.

A logical log record stores a *function identifier* and the ids of the
objects read and written — never the values.  Replay resolves the
identifier here and applies the function to the current recoverable
values of the readset.  Determinism is the contract: given the same
input values and parameters, a registered function must produce the same
writes, or repeat-history recovery is unsound.

The registry ships with the small set of generic transforms the domains
and tests share (copy, sort, concatenation); domains register their own
(application step functions, B-tree split transforms) at import time.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping

from repro.common.errors import UnknownFunctionError

#: A transform takes the mapping of read values (object id -> value) and
#: the record's scalar parameters, and returns the mapping of written
#: values (object id -> new value).
Transform = Callable[..., Dict[str, Any]]


class FunctionRegistry:
    """Mapping from function identifier to deterministic transform."""

    def __init__(self) -> None:
        self._functions: Dict[str, Transform] = {}

    def register(self, name: str, fn: Transform, replace: bool = False) -> None:
        """Register ``fn`` under ``name``.

        Re-registration is an error unless ``replace=True`` — silently
        changing a replay function under a live log would corrupt
        recovery.
        """
        if name in self._functions and not replace:
            raise ValueError(f"transform {name!r} already registered")
        self._functions[name] = fn

    def registered(self, name: str) -> bool:
        """True when ``name`` resolves."""
        return name in self._functions

    def resolve(self, name: str) -> Transform:
        """Return the transform for ``name`` or raise UnknownFunctionError."""
        try:
            return self._functions[name]
        except KeyError:
            raise UnknownFunctionError(
                f"logical log record names unregistered transform {name!r}"
            ) from None

    def child(self) -> "FunctionRegistry":
        """A copy that can gain registrations without affecting this one."""
        clone = FunctionRegistry()
        clone._functions.update(self._functions)
        return clone


def _copy_fn(reads: Mapping[str, Any], src: str, dst: str) -> Dict[str, Any]:
    """``dst <- value(src)``: the paper's file-copy / B-tree-copy shape."""
    if reads[src] is None:
        raise ValueError(f"copy from absent object {src!r}")
    return {dst: reads[src]}


def _sorted_copy_fn(reads: Mapping[str, Any], src: str, dst: str) -> Dict[str, Any]:
    """``dst <- sort(value(src))``: the paper's sort example (op B form)."""
    data = reads[src]
    if data is None:
        raise ValueError(f"sort of absent object {src!r}")
    if isinstance(data, (bytes, bytearray)):
        return {dst: bytes(sorted(data))}
    return {dst: tuple(sorted(data))}


def _concat_fn(
    reads: Mapping[str, Any], dst: str, *sources: str
) -> Dict[str, Any]:
    """``dst <- concat(sources...)``: a multi-input logical transform."""
    parts = [reads[s] for s in sources]
    if all(isinstance(p, (bytes, bytearray)) for p in parts):
        return {dst: b"".join(bytes(p) for p in parts)}
    out = []
    for part in parts:
        out.extend(part)
    return {dst: tuple(out)}


def default_registry() -> FunctionRegistry:
    """A fresh registry pre-loaded with the generic transforms."""
    registry = FunctionRegistry()
    registry.register("copy", _copy_fn)
    registry.register("sorted_copy", _sorted_copy_fn)
    registry.register("concat", _concat_fn)
    return registry
