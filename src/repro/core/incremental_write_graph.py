"""Incremental maintenance of the write graph ``W`` of [8].

The Figure 3 batch construction (kept verbatim in
:class:`repro.core.write_graph.BatchWriteGraph`) computes W from
scratch over the whole uninstalled-operation set: the transitive
closure ``T`` of writeset overlap, the installation graph collapsed
w.r.t. T's classes, and an SCC collapse to make the result acyclic.
Rebuilding that per purge made the cache manager's W mode pay a
quadratic tax the paper's own comparison (Figures 5/7) never intended
— the W-vs-rW contrast is about *flush-set shape*, not about one side
being maintained incrementally and the other not.

This engine maintains the same graph one operation at a time, reusing
the machinery of :class:`~repro.core.refined_write_graph.RefinedWriteGraph`
(inverted last-writer/reader indexes, the ready set, Pearce–Kelly-style
incremental topological maintenance with dual-cone cycle repair) under
W's coarser exposure rule:

* **merging** follows T, not exposure: op's node absorbs every live
  node whose *writeset* overlaps ``op.writes`` — not just the holders
  of op's exposed reads.  Because any two uninstalled writers of an
  object always merge, each object has at most one live writer node
  and the ``_last_write_node`` index answers the overlap scan exactly;
* **vars never shrink**: ``vars(n) = Writes(n)`` always, so nothing is
  ever unexposed, ``Notx(n)`` is empty, and the inverse write-read
  edges (and the ``_readers_since_write`` index that feeds them) are
  never needed;
* **edges** are the installation graph's read-write edges collapsed
  w.r.t. the node partition — every live node that read an object op
  overwrites must install first — answered by ``_reader_nodes``.

The W-mode differential suite in ``tests/test_reference_differential``
holds this engine to node/edge/flush-set equality with batch
``BatchWriteGraph`` rebuilds over randomized streams, including with
installation interleaved.
"""

from __future__ import annotations

import time

from repro.core.operation import Operation
from repro.core.refined_write_graph import RefinedWriteGraph, RWNode


class IncrementalWriteGraph(RefinedWriteGraph):
    """The write graph W of [8], maintained incrementally (no rebuilds)."""

    engine_name = "W"

    # ------------------------------------------------------------------
    # addop_W: Figure 3's T/V/S collapse, one operation at a time
    # ------------------------------------------------------------------
    def add_operation(self, op: Operation) -> RWNode:
        """Insert ``op``, presented in conflict order, and return its node."""
        obs = self.obs
        started = time.perf_counter() if obs.enabled else 0.0
        self._ops_added += 1
        self._edge_log.clear()
        self._logging = True

        # T: merge every live node whose writeset overlaps op's.  All
        # live writers of an object share one node (they merged when
        # the later one arrived), so the last-writer index *is* the
        # writeset-overlap scan.
        overlapping = []
        for obj in op.writes:
            holder = self._last_write_node.get(obj)
            if holder is not None and holder not in overlapping:
                overlapping.append(holder)
        if overlapping:
            m = self._merge(sorted(overlapping, key=lambda n: n.node_id))
            # A sink can take a fresh top rank for free, so the edges
            # about to point at it cannot land against the topological
            # order — the repair pass then usually has nothing to do.
            if not self._succ[m]:
                self._topo[m] = self._next_rank
                self._next_rank += 1
        else:
            m = self._new_node()
        m.ops.add(op)
        # W's inflexibility, by construction: every written object is
        # in the atomic flush set, forever (|vars| only accretes).
        m.vars |= op.writes
        m._read_objs |= op.reads
        self._node_of_op[op] = m
        for obj in op.reads:
            self._reader_nodes.setdefault(obj, set()).add(m)

        # Read-write installation edges, collapsed: any node that read
        # an object op now overwrites must install first.
        for obj in op.writes:
            for p in self._reader_nodes.get(obj, ()):
                if p is not m:
                    self._add_edge(p, m)

        # Last-writer index: op's node is now every written object's
        # holder (the previous holders were merged into m above).
        for obj in op.writes:
            self._last_write_node[obj] = m
            m._lw_objs.add(obj)

        self._repair_order()
        self._logging = False
        if obs.enabled:
            obs.observe("engine.addop", time.perf_counter() - started)
        # The merge/collapse steps may have replaced m; return the node
        # that now holds op.
        return self._node_of_op[op]
