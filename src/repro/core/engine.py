"""The write-graph engine protocol and the ``GraphMode`` factory.

The cache manager's central data structure is a *write-graph engine*: a
live, incrementally-maintained graph over the uninstalled operations
whose nodes carry atomic flush sets and whose edges give the required
flush order.  The paper compares two such graphs — the write graph
``W`` of [8] (Figure 3) and the refined ``rW`` (Figure 6) — and this
module gives them one shared surface:

* :class:`WriteGraphEngine` — the structural protocol every engine
  implements: ``add_operation`` / ``minimal_nodes`` / ``remove_node``
  for the execution and PurgeCache paths, ``node_of`` / ``holder_of`` /
  ``successors`` / ``predecessors`` / ``edges`` for queries,
  ``flush_set_sizes`` for the E4 metric, and a ``stats()`` hook whose
  counters let callers assert hot-path properties (most importantly
  ``full_rebuilds == 0``: no engine may fall back to batch
  reconstruction during normal operation).
* :class:`GraphMode` — which graph a cache manager maintains; it lives
  here (and is re-exported from :mod:`repro.cache.config` for
  compatibility) because the mode selects an *engine*, not a cache
  policy.
* :func:`make_engine` — the ``GraphMode``-driven factory.  Both modes
  now return incremental engines; the Figure 3 batch construction
  survives only as :class:`repro.core.write_graph.BatchWriteGraph`,
  the reference the W-mode differential tests rebuild against.

Implementations:

======================  ====  =========================================
engine                  mode  module
======================  ====  =========================================
``RefinedWriteGraph``   rW    :mod:`repro.core.refined_write_graph`
``IncrementalWriteGraph``  W  :mod:`repro.core.incremental_write_graph`
``ReferenceWriteGraph`` rW    :mod:`repro.core._reference` (test oracle)
======================  ====  =========================================
"""

from __future__ import annotations

import enum
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Set,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.common.identifiers import ObjectId
from repro.core.operation import Operation


class GraphMode(enum.Enum):
    """Which write-graph engine the cache manager maintains."""

    #: The refined write graph rW of this paper (incremental, Figure 6).
    RW = "rW"
    #: The write graph W of [8] (Figure 3), maintained incrementally.
    W = "W"


@runtime_checkable
class WriteGraphEngine(Protocol):
    """Structural protocol for live write-graph engines.

    Nodes are engine-specific objects exposing at least ``node_id``,
    ``ops``, ``vars``, ``notx`` and ``max_lsi()``; the cache manager
    treats them opaquely.  ``remove_node`` requires a *minimal* node
    (no predecessors) and returns the ``(vars, notx)`` partition at
    removal time — for W-mode engines ``notx`` is always empty.
    """

    #: Count of node merges forced by cycle collapse (E8 metric).
    cycle_collapses: int

    def add_operation(self, op: Operation) -> Any:
        """Insert ``op`` (presented in conflict order); return its node."""
        ...

    def minimal_nodes(self) -> List[Any]:
        """Nodes with no predecessors — the installable frontier."""
        ...

    def remove_node(self, node: Any) -> Tuple[Set[ObjectId], Set[ObjectId]]:
        """Remove an installed minimal node; returns ``(vars, notx)``."""
        ...

    def node_of(self, op: Operation) -> Optional[Any]:
        """The node containing ``op``, or None if op was installed."""
        ...

    def holder_of(self, obj: ObjectId) -> Optional[Any]:
        """The node holding ``obj`` via its last uninstalled writer."""
        ...

    def successors(self, node: Any) -> Set[Any]:
        """Nodes that must install after ``node``."""
        ...

    def predecessors(self, node: Any) -> Set[Any]:
        """Nodes that must install before ``node``."""
        ...

    def edges(self) -> Iterable[Tuple[Any, Any]]:
        """All flush-order edges."""
        ...

    def is_acyclic(self) -> bool:
        """True when no non-trivial SCC exists."""
        ...

    def uninstalled_operations(self) -> Set[Operation]:
        """All operations currently held by the graph."""
        ...

    def flush_set_sizes(self) -> List[int]:
        """|vars(n)| for every node — the E4 metric."""
        ...

    def stats(self) -> Dict[str, Any]:
        """Engine counters.  Every engine reports at least ``engine``
        (a mode string), ``operations_added``, ``live_nodes``,
        ``cycle_collapses`` and ``full_rebuilds`` (0 for incremental
        engines, by construction)."""
        ...

    def __len__(self) -> int:
        ...


def make_engine(mode: Union[GraphMode, str]) -> WriteGraphEngine:
    """Build the live engine for ``mode`` (a :class:`GraphMode` or its
    value, ``"rW"`` / ``"W"``)."""
    # Imported here so the protocol module stays import-light and the
    # engines can type-annotate against it without a cycle.
    from repro.core.incremental_write_graph import IncrementalWriteGraph
    from repro.core.refined_write_graph import RefinedWriteGraph

    if isinstance(mode, str):
        mode = GraphMode(mode)
    if mode is GraphMode.RW:
        return RefinedWriteGraph()
    if mode is GraphMode.W:
        return IncrementalWriteGraph()
    raise ValueError(f"unknown graph mode: {mode!r}")  # pragma: no cover
