"""State identifier bookkeeping: the dirty object table with rSIs.

Section 5 generalizes ARIES recovery LSNs: an object's **rSI** is the
lSI of its earliest *uninstalled* operation (whose results are exposed).
The cache manager keeps an rSI for each dirty object in its dirty object
table; the minimum rSI over the table is the redo scan start point, and
checkpoint records carry a snapshot of the table so the analysis pass
can reconstruct it after a crash.

The generalized rule (the paper's key extension): the rSI of an object
advances exactly when operations that *write* it are installed — whether
or not the object itself was flushed.  When a node n of rW is installed
by flushing vars(n), every object of Writes(n) = vars(n) ∪ Notx(n) gets
its rSI advanced to the lSI of its first still-uninstalled writer; an
object with no remaining uninstalled writer leaves the table entirely.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.common.identifiers import NULL_SI, ObjectId, StateId


class DirtyObjectTable:
    """Mapping from dirty object id to its recovery SI."""

    def __init__(self, entries: Optional[Mapping[ObjectId, StateId]] = None):
        self._rsi: Dict[ObjectId, StateId] = dict(entries or {})

    # ------------------------------------------------------------------
    # normal-execution maintenance
    # ------------------------------------------------------------------
    def note_write(self, obj: ObjectId, lsi: StateId) -> None:
        """Record that a logged operation with ``lsi`` wrote ``obj``.

        If the object was clean it becomes dirty with rSI = lsi (the
        first uninstalled operation to update it).  If already dirty its
        rSI is unchanged — rSIs only advance at installation.
        """
        self._rsi.setdefault(obj, lsi)

    def advance(self, obj: ObjectId, rsi: StateId) -> None:
        """Advance ``obj``'s rSI at installation time.

        rSIs are monotone; advancing backwards indicates a bookkeeping
        bug and is rejected.
        """
        current = self._rsi.get(obj, NULL_SI)
        if rsi < current:
            raise ValueError(
                f"rSI of {obj!r} would regress from {current} to {rsi}"
            )
        self._rsi[obj] = rsi

    def remove(self, obj: ObjectId) -> None:
        """Drop a now-clean (or deleted) object from the table."""
        self._rsi.pop(obj, None)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def rsi_of(self, obj: ObjectId) -> Optional[StateId]:
        """The rSI of ``obj``, or None when the object is clean."""
        return self._rsi.get(obj)

    def is_dirty(self, obj: ObjectId) -> bool:
        """True when ``obj`` has uninstalled updates."""
        return obj in self._rsi

    def min_rsi(self) -> Optional[StateId]:
        """The redo scan start point; None when nothing is dirty."""
        if not self._rsi:
            return None
        return min(self._rsi.values())

    def snapshot(self) -> Dict[ObjectId, StateId]:
        """A copy suitable for embedding in a checkpoint record."""
        return dict(self._rsi)

    def items(self) -> Iterator[Tuple[ObjectId, StateId]]:
        return iter(list(self._rsi.items()))

    def __len__(self) -> int:
        return len(self._rsi)

    def __contains__(self, obj: ObjectId) -> bool:
        return obj in self._rsi


class UninstalledWriters:
    """Per-object ordered multiset of uninstalled writer lSIs.

    Supports the installation-time rSI rule: after removing the lSIs of
    the operations just installed, an object's new rSI is the smallest
    remaining writer lSI (or the object is clean when none remain).
    """

    def __init__(self) -> None:
        self._writers: Dict[ObjectId, List[StateId]] = {}

    def note(self, obj: ObjectId, lsi: StateId) -> None:
        """Record an uninstalled write of ``obj`` at ``lsi``.

        Writes arrive in lSI order, so append keeps the list sorted.
        """
        self._writers.setdefault(obj, []).append(lsi)

    def discharge(self, obj: ObjectId, lsi: StateId) -> None:
        """Remove one recorded write (its operation was installed)."""
        writers = self._writers.get(obj)
        if not writers or lsi not in writers:
            raise KeyError(f"no uninstalled write of {obj!r} at lSI {lsi}")
        writers.remove(lsi)
        if not writers:
            del self._writers[obj]

    def first(self, obj: ObjectId) -> Optional[StateId]:
        """The lSI of the first remaining uninstalled writer, if any."""
        writers = self._writers.get(obj)
        return writers[0] if writers else None

    def has_writers(self, obj: ObjectId) -> bool:
        """True while some uninstalled operation writes ``obj``."""
        return obj in self._writers

    def objects(self) -> List[ObjectId]:
        return list(self._writers)
