"""The scan-everything reference construction of rW — kept, not used.

This is the original ``addop_rW`` implementation, preserved verbatim in
spirit: every insert scans all nodes for flush-set overlap, for readers
of the written objects, and for vars holding the blindly-written
objects, then reruns a full-graph SCC pass.  Per-insert cost is
O(nodes) to O(nodes + edges); a stream of N operations costs O(N^2) or
worse.

It exists for two jobs:

* the **differential property tests** (tests/test_reference_differential)
  feed identical randomized op streams to this graph and to the indexed
  :class:`~repro.core.refined_write_graph.RefinedWriteGraph` and require
  node shapes, edges, flush sets, cycle-collapse counts and install
  orders to match exactly;
* the **E10 throughput benchmark** uses it as the pre-optimization
  baseline the indexed engine's speedup is measured against.

Do not optimize this module — its value is being obviously equivalent
to the Figure 6 pseudocode.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.common.identifiers import ObjectId
from repro.core.graph_utils import strongly_connected_components
from repro.core.operation import Operation
from repro.core.refined_write_graph import RWNode


class ReferenceWriteGraph:
    """The naive incrementally-maintained refined write graph."""

    def __init__(self) -> None:
        self.nodes: List[RWNode] = []
        self._succ: Dict[RWNode, Set[RWNode]] = {}
        self._pred: Dict[RWNode, Set[RWNode]] = {}
        #: Node holding X's last uninstalled writer (the vars/Notx holder).
        self._last_write_node: Dict[ObjectId, RWNode] = {}
        #: Nodes containing an operation that read X's *current* value.
        self._readers_since_write: Dict[ObjectId, Set[RWNode]] = {}
        #: Count of node merges forced by cycle collapse (E8 metric).
        self.cycle_collapses: int = 0
        #: stats() bookkeeping (WriteGraphEngine protocol compliance;
        #: counters only — the algorithm itself stays untouched).
        self.full_rebuilds: int = 0
        self._ops_added: int = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _new_node(self) -> RWNode:
        node = RWNode()
        self.nodes.append(node)
        self._succ[node] = set()
        self._pred[node] = set()
        return node

    def _add_edge(self, src: RWNode, dst: RWNode) -> None:
        if src is dst:
            return
        self._succ[src].add(dst)
        self._pred[dst].add(src)

    def _merge(self, group: List[RWNode]) -> RWNode:
        """Merge ``group`` into a single node, rewriting edges and maps."""
        if len(group) == 1:
            return group[0]
        target = group[0]
        rest = group[1:]
        members = set(group)
        for node in rest:
            target.ops |= node.ops
            target.vars |= node.vars
        # Re-point edges, dropping those internal to the merged set.
        for node in rest:
            for succ in self._succ.pop(node):
                self._pred[succ].discard(node)
                if succ not in members:
                    self._add_edge(target, succ)
            for pred in self._pred.pop(node):
                self._succ[pred].discard(node)
                if pred not in members:
                    self._add_edge(pred, target)
            self.nodes.remove(node)
        # Rewrite bookkeeping references.
        for obj, holder in list(self._last_write_node.items()):
            if holder in members:
                self._last_write_node[obj] = target
        for readers in self._readers_since_write.values():
            if readers & members:
                readers.difference_update(members)
                readers.add(target)
        return target

    def _collapse_cycles(self) -> None:
        """Collapse every non-trivial SCC into one node (second collapse
        of Figure 3, applied on demand after insertions)."""
        sccs = strongly_connected_components(list(self.nodes), self._succ)
        for scc in sccs:
            if len(scc) > 1:
                self.cycle_collapses += 1
                self._merge(sorted(scc, key=lambda n: n.node_id))

    # ------------------------------------------------------------------
    # addop_rW (Figure 6), three O(N) scans per insert
    # ------------------------------------------------------------------
    def add_operation(self, op: Operation) -> RWNode:
        """Insert ``op``, presented in conflict order, and return its node."""
        self._ops_added += 1
        exp = op.exp
        notexp = op.notexp

        # Merge nodes whose flush sets overlap op's exposed updates.
        overlapping = [n for n in self.nodes if n.vars & exp]
        if overlapping:
            m = self._merge(sorted(overlapping, key=lambda n: n.node_id))
        else:
            m = self._new_node()
        m.ops.add(op)
        m.vars |= op.writes

        # New read-write edges: readers of objects op overwrites.
        for p in self.nodes:
            if p is m:
                continue
            if p.reads & op.writes:
                self._add_edge(p, m)

        # Blind updates un-expose objects held in other nodes' flush sets.
        if notexp:
            for p in list(self.nodes):
                if p is m:
                    continue
                dropped = p.vars & notexp
                if not dropped:
                    continue
                p.vars -= dropped
                self._add_edge(p, m)
                for obj in dropped:
                    for q in self._readers_since_write.get(obj, ()):
                        if q is not p:
                            self._add_edge(q, p)

        # Bookkeeping: op's reads happen against current values (before
        # its writes replace them), so an exposed write's own read is
        # against the value it replaces and the new value starts with no
        # readers.
        for obj in op.reads:
            self._readers_since_write.setdefault(obj, set()).add(m)
        for obj in op.writes:
            self._last_write_node[obj] = m
            self._readers_since_write[obj] = set()

        self._collapse_cycles()
        return self.node_of(op)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def minimal_nodes(self) -> List[RWNode]:
        """Nodes with no predecessors — installable by flushing vars(n)."""
        return [n for n in self.nodes if not self._pred[n]]

    def remove_node(self, node: RWNode) -> Tuple[Set[ObjectId], Set[ObjectId]]:
        """Remove an installed node; returns ``(vars, Notx)`` at removal."""
        if self._pred[node]:
            raise ValueError(f"{node!r} has uninstalled predecessors")
        flushed, unexposed = set(node.vars), set(node.notx)
        for succ in self._succ.pop(node):
            self._pred[succ].discard(node)
        del self._pred[node]
        self.nodes.remove(node)
        for obj, holder in list(self._last_write_node.items()):
            if holder is node:
                del self._last_write_node[obj]
        for readers in self._readers_since_write.values():
            readers.discard(node)
        return flushed, unexposed

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def node_of(self, op: Operation) -> Optional[RWNode]:
        """The node containing ``op``, or None if op was installed."""
        for node in self.nodes:
            if op in node.ops:
                return node
        return None

    def holder_of(self, obj: ObjectId) -> Optional[RWNode]:
        """The node with ``obj`` in vars or Notx via its last writer."""
        return self._last_write_node.get(obj)

    def successors(self, node: RWNode) -> Set[RWNode]:
        return set(self._succ[node])

    def predecessors(self, node: RWNode) -> Set[RWNode]:
        return set(self._pred[node])

    def edges(self) -> Iterable[Tuple[RWNode, RWNode]]:
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield src, dst

    def is_acyclic(self) -> bool:
        sccs = strongly_connected_components(list(self.nodes), self._succ)
        return all(len(scc) == 1 for scc in sccs)

    def uninstalled_operations(self) -> Set[Operation]:
        out: Set[Operation] = set()
        for node in self.nodes:
            out |= node.ops
        return out

    def flush_set_sizes(self) -> List[int]:
        return [len(n.vars) for n in self.nodes]

    def stats(self) -> Dict[str, object]:
        """Engine counters (the WriteGraphEngine ``stats()`` hook)."""
        return {
            "engine": "rW-reference",
            "operations_added": self._ops_added,
            "live_nodes": len(self.nodes),
            "cycle_collapses": self.cycle_collapses,
            "full_rebuilds": self.full_rebuilds,
        }

    def __len__(self) -> int:
        return len(self.nodes)
