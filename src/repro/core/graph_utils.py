"""Small graph helpers shared by the write-graph implementations.

Both write graphs need strongly-connected-component collapse ("collapse
V with respect to the equivalence classes of nodes in S" in Figure 3)
and a union-find for the writeset-overlap transitive closure.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Set, TypeVar

Node = TypeVar("Node", bound=Hashable)


class UnionFind:
    """Union-find over hashable items, used for transitive closures."""

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}

    def add(self, item: Hashable) -> None:
        """Ensure ``item`` is present as a singleton class."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item: Hashable) -> Hashable:
        """Return the representative of ``item``'s class."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        """Merge the classes of ``a`` and ``b``."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1

    def classes(self) -> List[Set[Hashable]]:
        """All equivalence classes as sets."""
        grouped: Dict[Hashable, Set[Hashable]] = {}
        for item in self._parent:
            grouped.setdefault(self.find(item), set()).add(item)
        return list(grouped.values())


def strongly_connected_components(
    nodes: Iterable[Node], successors: Mapping[Node, Set[Node]]
) -> List[Set[Node]]:
    """Tarjan's algorithm, iteratively, over an adjacency mapping.

    Returns the SCCs in reverse topological order (standard Tarjan
    emission order).  Nodes absent from ``successors`` are treated as
    having no out-edges.
    """
    index: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    components: List[Set[Node]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        # Iterative DFS: each frame is (node, iterator over successors).
        work: List[tuple] = [(root, iter(successors.get(root, ())))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(successors.get(child, ()))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: Set[Node] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components
