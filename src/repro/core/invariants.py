"""Runtime checking of the cache invariant and explainability.

The paper proves (Lemmas 1-3, Theorem 3) that PurgeCache preserves the
invariant Inv(I) and hence stable-database recoverability.  We cannot
re-prove the lemmas at runtime, but we can *check their consequences*
after every installation and after every injected crash:

* the stable state is explainable by the leading-edge installed set
  (all stably-logged operations minus the uninstalled ones the cache
  manager still holds);
* the invariant's part 2 — every conflict-order predecessor of a cached
  uninstalled operation is installed or cached — holds by construction
  in this implementation, and is asserted;
* with the repeat-history write-write policy there are no write-write
  installation edges out of cached operations (part 1), asserted;
* the write graph in use is acyclic.

Tests and the E7 verifier call :func:`check_recoverable` at chosen
points; a failure raises :class:`UnrecoverableStateError` naming the
objects whose stable values cannot be explained.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Set

from repro.common.errors import UnrecoverableStateError
from repro.common.identifiers import ObjectId
from repro.core.explain import (
    exposed_objects,
    explains,
    find_explanation,
    is_prefix_set,
)
from repro.core.history import History
from repro.core.installation_graph import InstallationGraph, WriteWritePolicy
from repro.core.operation import Operation, TOMBSTONE
from repro.core.oracle import Oracle


def leading_edge_installed(
    history: History, uninstalled: Set[Operation]
) -> Set[Operation]:
    """The cache manager's leading-edge I: everything not in the cache."""
    return {op for op in history if op not in uninstalled}


def check_explainable(
    history: History,
    uninstalled: Set[Operation],
    stable_values: Mapping[ObjectId, Any],
    oracle: Oracle,
    search_on_failure: bool = True,
) -> None:
    """Assert the stable state is explainable.

    First tries the leading-edge I (fast path, the explanation the CM
    maintains during normal operation).  If that fails and
    ``search_on_failure`` is set, falls back to searching for *any*
    explaining prefix set over the uninstalled operations — a state can
    be explainable by a smaller I when a crash lost some installations.
    Raises :class:`UnrecoverableStateError` when no explanation exists.
    """
    installed = leading_edge_installed(history, uninstalled)
    if explains(history, installed, stable_values, oracle):
        return
    if search_on_failure:
        graph = InstallationGraph(
            list(history), WriteWritePolicy.REPEAT_HISTORY
        )
        found = find_explanation(
            history, graph, stable_values, oracle, candidates=list(history)
        )
        if found is not None:
            return
    offenders = _unexplained_objects(
        history, installed, stable_values, oracle
    )
    raise UnrecoverableStateError(
        "stable state is not explainable; mismatched exposed objects: "
        f"{sorted(offenders)}"
    )


def _unexplained_objects(
    history: History,
    installed: Set[Operation],
    stable_values: Mapping[ObjectId, Any],
    oracle: Oracle,
) -> Set[ObjectId]:
    from repro.core.explain import installed_values

    ideal = installed_values(history, installed, oracle)
    bad: Set[ObjectId] = set()
    for obj in exposed_objects(history, installed):
        expected = ideal.get(obj, oracle.initial.get(obj))
        actual = stable_values.get(obj, oracle.initial.get(obj))
        if expected is TOMBSTONE:
            expected = None
        if actual is TOMBSTONE:
            actual = None
        if actual != expected:
            bad.add(obj)
    return bad


def check_inv_parts(
    history: History,
    uninstalled: Set[Operation],
    policy: WriteWritePolicy = WriteWritePolicy.REPEAT_HISTORY,
) -> None:
    """Assert parts 1-2 of Inv(I) for the leading-edge explanation."""
    installed = leading_edge_installed(history, uninstalled)
    graph = InstallationGraph(list(history), policy)
    for op in uninstalled:
        # Part 1: no write-write edges from a cached op into I.  Under
        # the repeat-history policy the graph has none at all; under the
        # conservative policy an edge op -> P with P installed would
        # mean an installed operation must re-install after op.
        for succ in graph.successors(op):
            if succ in installed and (op.writes & succ.writes):
                if not (op.reads & succ.writes):
                    raise UnrecoverableStateError(
                        f"write-write installation edge from cached {op!r} "
                        f"to installed {succ!r}"
                    )
        # Part 2: every conflict predecessor is installed or cached.
        for earlier in history:
            if earlier.op_id >= op.op_id:
                break
            if earlier.conflicts_with(op):
                if earlier not in installed and earlier not in uninstalled:
                    raise UnrecoverableStateError(
                        f"conflict predecessor {earlier!r} of cached "
                        f"{op!r} is neither installed nor cached"
                    )


def stable_values_of(store) -> Dict[ObjectId, Any]:
    """Extract a plain value mapping from a stable store, for explains().

    TOMBSTONEs read as deleted (absent); the store's absence of an
    object reads as the initial value.
    """
    values: Dict[ObjectId, Any] = {}
    for obj, version in store.items():
        values[obj] = version.value
    return values
