"""Explainable states (Section 2, executable form).

The definitions:

* A set ``I`` of operations is a **prefix set** if for every O in I,
  every installation-graph predecessor of O is also in I.
* An object ``x`` is **exposed** by I iff either no operation of H − I
  reads or writes x, or the minimal such operation (earliest in
  conflict order) *reads* x.
* I **explains** state S if for every object x exposed by I, the value
  of x in S is the value of x after the last operation of I (in
  conflict order) — equivalently, the oracle value of the sub-history I.
* S is **explainable** if some prefix set explains it.

``find_explanation`` performs the search that no real recovery system
runs (the paper: "No recovery algorithm actually maintains I") but which
our tests and the E7 verifier use to check, after injected crashes, that
cache management kept the stable state explainable — the executable form
of Theorem 3.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set

from repro.common.identifiers import ObjectId
from repro.core.history import History
from repro.core.installation_graph import InstallationGraph
from repro.core.operation import Operation, TOMBSTONE
from repro.core.oracle import Oracle


def is_prefix_set(
    installed: Set[Operation], graph: InstallationGraph
) -> bool:
    """True when ``installed`` is downward-closed under installation edges."""
    return all(
        graph.predecessors(op) <= installed
        for op in installed
    )


def exposed_objects(
    history: History, installed: Set[Operation]
) -> Set[ObjectId]:
    """Objects exposed by the prefix set ``installed``.

    Implements the two-case definition directly: collect every object
    any operation touches; x is exposed unless the minimal uninstalled
    accessor of x writes x without reading it.
    """
    exposed: Set[ObjectId] = set()
    objects: Set[ObjectId] = set()
    for op in history:
        objects |= op.reads | op.writes
    for obj in objects:
        accessors = [
            op
            for op in history.accessors_in_order(obj)
            if op not in installed
        ]
        if not accessors:
            exposed.add(obj)  # condition 1: nothing uninstalled touches x
            continue
        minimal = accessors[0]
        if obj in minimal.reads:
            exposed.add(obj)  # condition 2: minimal uninstalled op reads x
    return exposed


def installed_values(
    history: History,
    installed: Set[Operation],
    oracle: Oracle,
) -> Dict[ObjectId, Any]:
    """For each object, "the value of x after the last operation (in
    conflict order) of I" — in the *actual* execution.

    The definition refers to the values operations wrote in the history
    H, not to a replay of I in isolation: an installed operation may
    have read inputs written by operations outside I (those inputs are
    what make its objects exposed or not, but its written values are
    historical facts).  We therefore evaluate the full-history
    trajectory and pick, per object, the state just after its last
    I-writer.
    """
    trajectory = oracle.trajectory(list(history))
    expected: Dict[ObjectId, Any] = {}
    for op in history:
        if op not in installed:
            continue
        after = trajectory[op.op_id + 1]
        for obj in op.writes:
            expected[obj] = after[obj]
    return expected


def explains(
    history: History,
    installed: Set[Operation],
    state: Mapping[ObjectId, Any],
    oracle: Oracle,
) -> bool:
    """True when ``installed`` explains ``state``.

    ``state`` maps object ids to stable values; objects absent from the
    mapping are treated as holding the oracle's initial value.
    """
    ideal = installed_values(history, installed, oracle)
    for obj in exposed_objects(history, installed):
        expected = ideal.get(obj, oracle.initial.get(obj))
        actual = state.get(obj, oracle.initial.get(obj))
        # A deleted object (TOMBSTONE) and an absent object are the
        # same stable fact.
        if expected is TOMBSTONE:
            expected = None
        if actual is TOMBSTONE:
            actual = None
        if actual != expected:
            return False
    return True


def find_explanation(
    history: History,
    graph: InstallationGraph,
    state: Mapping[ObjectId, Any],
    oracle: Oracle,
    candidates: Optional[Iterable[Operation]] = None,
) -> Optional[Set[Operation]]:
    """Search for a prefix set of ``graph`` explaining ``state``.

    ``candidates`` restricts the search to operations that might be
    uninstalled (everything before them is taken as installed); by
    default all operations of the graph participate.  The search
    enumerates downward-closed subsets in conflict order with
    memoization on the decision frontier, so it is exponential in the
    worst case — suitable for verification on test-sized histories, not
    for production recovery (which never materializes I).

    Returns one explaining prefix set, or None if the state is
    unexplainable (an :class:`UnrecoverableStateError` situation).
    """
    pool: List[Operation] = sorted(
        candidates if candidates is not None else graph.ops,
        key=lambda o: o.op_id,
    )
    always_installed = {
        op for op in history if op not in set(pool)
    }
    n = len(pool)
    seen: Set[FrozenSet[int]] = set()

    def search(index: int, chosen: Set[Operation]) -> Optional[Set[Operation]]:
        if index == n:
            installed = always_installed | chosen
            if explains(history, installed, state, oracle):
                return installed
            return None
        key = frozenset(op.op_id for op in chosen) | {-(index + 1)}
        if key in seen:
            return None
        seen.add(key)
        op = pool[index]
        # Branch 1: include op, legal only if its predecessors (within
        # the pool) were all included — downward closure.
        preds = graph.predecessors(op) if op in graph else set()
        if all(p in chosen or p in always_installed for p in preds):
            result = search(index + 1, chosen | {op})
            if result is not None:
                return result
        # Branch 2: exclude op.
        return search(index + 1, chosen)

    return search(0, set())


def extend(installed: Set[Operation], op: Operation) -> Set[Operation]:
    """``extend(I, O)`` of Theorem 1: the prefix set grown by O."""
    return installed | {op}
