"""Histories and conflict graphs.

A history is the conflict-ordered sequence of operations the system has
executed.  The paper only requires that operations on the log be in
*conflict order*, which is a partial order; any total order consistent
with it is a legal schedule.  Our systems submit operations through one
sequencer, so submission order is such a total order, and ``op_id`` is
the operation's position in it.

The conflict graph itself (edges between every conflicting pair) is
exposed for the explainability machinery, which needs "the last
operation (in conflict order) writing x within I" and "the minimal
operation of H − I reading or writing x".
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.common.identifiers import ObjectId
from repro.core.operation import Operation


class History:
    """An append-only conflict-ordered sequence of operations."""

    def __init__(self, ops: Optional[Iterable[Operation]] = None) -> None:
        self._ops: List[Operation] = []
        self._writers: Dict[ObjectId, List[Operation]] = {}
        self._readers: Dict[ObjectId, List[Operation]] = {}
        if ops:
            for op in ops:
                self.append(op)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append(self, op: Operation) -> Operation:
        """Add ``op`` at the end of conflict order, assigning its op_id."""
        op.op_id = len(self._ops)
        self._ops.append(op)
        for obj in op.writes:
            self._writers.setdefault(obj, []).append(op)
        for obj in op.reads:
            self._readers.setdefault(obj, []).append(op)
        return op

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __getitem__(self, index: int) -> Operation:
        return self._ops[index]

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """The operations in conflict order."""
        return tuple(self._ops)

    def prefix(self, length: int) -> "History":
        """A new History over the first ``length`` operations.

        op_ids are re-assigned but, being positional, coincide with the
        originals.
        """
        sub = History()
        for op in self._ops[:length]:
            sub.append(op)
        return sub

    # ------------------------------------------------------------------
    # conflict structure
    # ------------------------------------------------------------------
    def writers_of(self, obj: ObjectId) -> List[Operation]:
        """Operations writing ``obj``, in conflict order."""
        return list(self._writers.get(obj, []))

    def readers_of(self, obj: ObjectId) -> List[Operation]:
        """Operations reading ``obj``, in conflict order."""
        return list(self._readers.get(obj, []))

    def last_writer(
        self, obj: ObjectId, within: Optional[Set[Operation]] = None
    ) -> Optional[Operation]:
        """The last operation (in conflict order) writing ``obj``.

        With ``within`` given, only operations in that set are
        considered — this is how the explainability definitions ask for
        "the value of x after the last operation of I".
        """
        writers = self._writers.get(obj, [])
        for op in reversed(writers):
            if within is None or op in within:
                return op
        return None

    def conflict_edges(self) -> Iterator[Tuple[Operation, Operation]]:
        """Yield every conflicting ordered pair (O, P) with O < P."""
        ops = self._ops
        for j, later in enumerate(ops):
            for i in range(j):
                if ops[i].conflicts_with(later):
                    yield ops[i], later

    def accessors_in_order(self, obj: ObjectId) -> List[Operation]:
        """Operations reading or writing ``obj``, in conflict order."""
        merged = {
            op.op_id: op
            for op in self._writers.get(obj, [])
        }
        for op in self._readers.get(obj, []):
            merged[op.op_id] = op
        return [merged[k] for k in sorted(merged)]
