"""The paper's contribution: general redo recovery with logical logging.

This package contains the executable form of the framework in Sections
2-5 of Lomet & Tuttle, SIGMOD 1999:

* :mod:`~repro.core.operation` / :mod:`~repro.core.functions` — the
  operation model of Table 1 and the deterministic function registry
  that lets logical log records carry identifiers instead of values.
* :mod:`~repro.core.history` — conflict-ordered histories and conflict
  graphs.
* :mod:`~repro.core.installation_graph` — the installation graph with
  read-write and (approximated) write-write edges.
* :mod:`~repro.core.explain` — prefix sets, exposed objects and
  explainable states (Definitions and Theorem 1, executable).
* :mod:`~repro.core.engine` — the :class:`WriteGraphEngine` protocol,
  :class:`GraphMode`, and the :func:`make_engine` factory shared by
  every write-graph implementation.
* :mod:`~repro.core.write_graph` — write graph ``W`` of [8], batch form
  (Figure 3).
* :mod:`~repro.core.incremental_write_graph` — ``W`` maintained
  incrementally (the live W-mode engine).
* :mod:`~repro.core.refined_write_graph` — the paper's refined write
  graph ``rW`` with incremental construction (Figure 6).
* :mod:`~repro.core.redo` — SI-based REDO tests, including the
  generalized rSI test of Section 5.
* :mod:`~repro.core.recovery` — the analysis + redo recovery passes
  (Figure 2 generalized with rSIs).
* :mod:`~repro.core.invariants` — runtime checking of the cache
  invariant Inv(I) and state explainability.
"""

from repro.core.operation import OpKind, Operation, TOMBSTONE, identity_write
from repro.core.functions import FunctionRegistry, default_registry
from repro.core.history import History
from repro.core.installation_graph import (
    InstallationGraph,
    WriteWritePolicy,
)
from repro.core.explain import (
    exposed_objects,
    is_prefix_set,
    explains,
    find_explanation,
)
from repro.core.engine import GraphMode, WriteGraphEngine, make_engine
from repro.core.write_graph import BatchWriteGraph, WriteGraphNode
from repro.core.incremental_write_graph import IncrementalWriteGraph
from repro.core.refined_write_graph import RefinedWriteGraph, RWNode
from repro.core.redo import (
    RedoDecision,
    RedoTest,
    RedoAll,
    VsiRedoTest,
    GeneralizedRedoTest,
)
from repro.core.recovery import RecoveryManager, RecoveryReport

__all__ = [
    "OpKind",
    "Operation",
    "TOMBSTONE",
    "identity_write",
    "FunctionRegistry",
    "default_registry",
    "History",
    "InstallationGraph",
    "WriteWritePolicy",
    "exposed_objects",
    "is_prefix_set",
    "explains",
    "find_explanation",
    "GraphMode",
    "WriteGraphEngine",
    "make_engine",
    "BatchWriteGraph",
    "WriteGraphNode",
    "IncrementalWriteGraph",
    "RefinedWriteGraph",
    "RWNode",
    "RedoDecision",
    "RedoTest",
    "RedoAll",
    "VsiRedoTest",
    "GeneralizedRedoTest",
    "RecoveryManager",
    "RecoveryReport",
]
