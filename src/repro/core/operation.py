"""The operation model (Table 1 of the paper).

An operation is characterized by the objects it reads (``readset``) and
the objects it writes (``writeset``), plus enough information to
re-execute it deterministically during recovery.  The paper's key
distinction is *what the log record must carry*:

* **logical** operations carry only identifiers — the function id and
  the ids of the objects read and written.  Replay reads the input
  values "from any recoverable object", which is the whole source of
  the logging economy (Figure 1a).
* **physiological** operations transform a single object, ``X ← f(X)``;
  the record carries the function id plus small parameters (e.g. the
  record being inserted into a page).
* **physical** operations carry the written values themselves —
  ``W_P(X, v)`` — which is what logical logging avoids but what the
  paper's baselines ([7]-style application writes, physiological
  simulations of multi-object operations) must do.
* **identity** writes ``W_IP(X, val(X))`` are cache-manager-initiated
  physical writes of an object's *current* value, used to break up
  atomic flush sets (Section 4).

``exp(Op) = writeset ∩ readset`` and ``notexp(Op) = writeset − readset``
are exactly the paper's exposed/not-exposed partition of the writeset,
the pivot of the refined write graph.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.common.identifiers import NULL_SI, ObjectId, StateId
from repro.common.sizes import (
    ID_SIZE,
    RECORD_HEADER_SIZE,
    SCALAR_SIZE,
    size_of,
)


class _Tombstone:
    """Sentinel value marking a deleted object."""

    __slots__ = ()

    #: Byte size charged by the log size model (a delete marker).
    stable_size = 1

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "TOMBSTONE"

    def __reduce__(self):
        # The sentinel is compared with ``is``; pickling (persistent
        # WAL files carry delete payloads) must reproduce the singleton.
        return (_tombstone_singleton, ())


#: Value written by delete operations; the cache and store treat an
#: object whose current value is TOMBSTONE as terminated (Section 5:
#: "When X's lifetime is terminated, as in a delete, rSI becomes the
#: lSI of the delete and the object can be removed from the object
#: table").
TOMBSTONE = _Tombstone()


def _tombstone_singleton() -> "_Tombstone":
    """Unpickling hook: always return the module singleton."""
    return TOMBSTONE


class OpKind(enum.Enum):
    """How an operation is logged, which determines its record size."""

    LOGICAL = "logical"
    PHYSIOLOGICAL = "physiological"
    PHYSICAL = "physical"
    IDENTITY = "identity"


@dataclass
class Operation:
    """One logged, redoable operation.

    Attributes
    ----------
    name:
        Display name, e.g. ``"R(app,f3)"``; used in tables and debugging.
    kind:
        The :class:`OpKind`, determining the log-record size model.
    reads / writes:
        The readset and writeset as frozen sets of object ids.
    fn:
        Identifier of the deterministic transform in the
        :class:`~repro.core.functions.FunctionRegistry`.  Unused for
        PHYSICAL/IDENTITY operations, whose replay simply installs the
        payload values.
    params:
        Small scalar parameters stored in the log record (the
        physiological "delta", a sort key, a split point, ...).
    payload:
        For PHYSICAL and IDENTITY operations only: the values written,
        stored in the log record.
    op_id:
        Position in conflict order, assigned when the operation is
        submitted to a :class:`~repro.core.history.History`.
    lsi:
        The state identifier of this operation's log record, assigned by
        the log manager.  ``NULL_SI`` until logged.
    """

    name: str
    kind: OpKind
    reads: frozenset
    writes: frozenset
    fn: str = ""
    params: Tuple[Any, ...] = ()
    payload: Optional[Mapping[ObjectId, Any]] = None
    op_id: int = -1
    lsi: StateId = NULL_SI

    def __post_init__(self) -> None:
        self.reads = frozenset(self.reads)
        self.writes = frozenset(self.writes)
        if not self.writes:
            raise ValueError(f"operation {self.name!r} writes nothing")
        if self.kind in (OpKind.PHYSICAL, OpKind.IDENTITY):
            if self.payload is None:
                raise ValueError(
                    f"{self.kind.value} operation {self.name!r} needs a payload"
                )
            if set(self.payload) != set(self.writes):
                raise ValueError(
                    f"payload keys of {self.name!r} must equal its writeset"
                )
        if self.kind is OpKind.PHYSIOLOGICAL:
            if len(self.writes) != 1 or self.reads - self.writes:
                raise ValueError(
                    "physiological operations have the form X <- f(X): "
                    f"{self.name!r} reads {set(self.reads)} writes "
                    f"{set(self.writes)}"
                )

    # ------------------------------------------------------------------
    # Table 1 derived attributes
    # ------------------------------------------------------------------
    @property
    def exp(self) -> frozenset:
        """Exposed objects: ``writeset(Op) ∩ readset(Op)``."""
        return self.writes & self.reads

    @property
    def notexp(self) -> frozenset:
        """Not-exposed (blindly written) objects: ``writeset − readset``."""
        return self.writes - self.reads

    @property
    def is_blind(self) -> bool:
        """True when the operation reads nothing (a pure blind write)."""
        return not self.reads

    def conflicts_with(self, other: "Operation") -> bool:
        """True when the two operations access a common object and at
        least one of them writes it."""
        return bool(
            (self.writes & other.writes)
            or (self.writes & other.reads)
            or (self.reads & other.writes)
        )

    # ------------------------------------------------------------------
    # logging cost model (Figure 1)
    # ------------------------------------------------------------------
    def value_bytes(self) -> int:
        """Bytes of *data values* this operation's record carries.

        The payload of physical/identity records, plus any bulk (bytes,
        string, tuple, list) parameters — a physiological simulation of
        a multi-object operation logs the foreign input values as
        parameters (Figure 1(b)'s ``log(X)``), and those count as data
        values too.  Purely logical records carry none.  This is the
        quantity logical logging eliminates.
        """
        total = 0
        if self.payload is not None:
            total += sum(size_of(v) for v in self.payload.values())
        total += sum(
            size_of(p)
            for p in self.params
            if isinstance(p, (bytes, bytearray, tuple, list))
        )
        return total

    def record_size(self) -> int:
        """Modelled log-record size in bytes.

        header + one id per readset/writeset member + the function id
        + parameters (scalars at fixed width, bulk values at full size)
        + (physical/identity only) the written values.
        """
        ids = len(self.reads) + len(self.writes) + 1  # +1 for fn / op name
        param_bytes = 0
        for p in self.params:
            if isinstance(p, str):
                # String parameters are object/function identifiers.
                param_bytes += ID_SIZE
            elif isinstance(p, (bytes, bytearray, tuple, list)):
                # Bulk data values (what physical logging must carry).
                param_bytes += size_of(p)
            else:
                param_bytes += SCALAR_SIZE
        payload_bytes = 0
        if self.payload is not None:
            payload_bytes = sum(size_of(v) for v in self.payload.values())
        return RECORD_HEADER_SIZE + ids * ID_SIZE + param_bytes + payload_bytes

    def __repr__(self) -> str:
        tag = f"#{self.op_id}" if self.op_id >= 0 else ""
        return f"<Op{tag} {self.name} {self.kind.value}>"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


def identity_write(obj: ObjectId, current_value: Any) -> Operation:
    """Build a cache-manager identity write ``W_IP(X, val(X))``.

    The operation "writes the object without changing it and is logged
    as a physical operation by writing the value of X to the log".  It
    reads nothing, so its entire writeset is not-exposed — feeding it
    through ``addop_rW`` removes ``obj`` from every other node's flush
    set, which is exactly how the cache manager breaks up atomic flush
    sets (Section 4).
    """
    return Operation(
        name=f"W_IP({obj})",
        kind=OpKind.IDENTITY,
        reads=frozenset(),
        writes=frozenset({obj}),
        payload={obj: current_value},
    )


def delete_object(obj: ObjectId) -> Operation:
    """Build a delete operation: a blind physical write of TOMBSTONE."""
    return Operation(
        name=f"delete({obj})",
        kind=OpKind.PHYSICAL,
        reads=frozenset(),
        writes=frozenset({obj}),
        payload={obj: TOMBSTONE},
    )


def execute_transform(
    op: Operation,
    read_values: Mapping[ObjectId, Any],
    registry: "FunctionRegistry",
) -> Dict[ObjectId, Any]:
    """Compute the values ``op`` writes, given its input values.

    For physical/identity operations the result is the logged payload;
    for logical/physiological operations the registered function is
    applied to the read values.  The returned mapping's keys must equal
    the declared writeset — recovery relies on this to detect operations
    whose trial execution "attempts to update more than the original
    writeset" (Section 5 voiding rule b).
    """
    if op.kind in (OpKind.PHYSICAL, OpKind.IDENTITY):
        assert op.payload is not None
        return dict(op.payload)
    fn = registry.resolve(op.fn)
    produced = fn(dict(read_values), *op.params)
    if not isinstance(produced, dict):
        raise TypeError(
            f"transform {op.fn!r} must return a dict of writes, got "
            f"{type(produced).__name__}"
        )
    return produced


# Imported at the bottom to avoid a cycle: functions.py needs nothing
# from this module at import time, but the type name is used above.
from repro.core.functions import FunctionRegistry  # noqa: E402  (cycle guard)
