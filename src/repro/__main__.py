"""Command-line entry: ``python -m repro [command]``.

* no command / ``demo`` — a compact end-to-end scenario (logical
  operations across three domains, a crash, recovery, verification) and
  the I/O and logging ledger.  A smoke check that an installation works.
* ``torture sweep`` — enumerate every numbered I/O point of a seeded
  workload and crash-recover it under every must-survive fault kind.
* ``torture fuzz`` — N seeded random fault schedules; any failure
  prints the seed that reproduces it exactly
  (``python -m repro torture fuzz --runs 1 --seed <that seed>``).
* ``torture v2`` — the recovery-resilience campaign: crash/tear/flip
  every numbered *recovery-phase* I/O point (including nested crashes
  during restarted recoveries), then fuzz schedules spanning both
  phases, all driven through the supervisor's escalation ladder.  A
  failing run prints its structured recovery supervision report.
* ``torture v3`` — the live-fire campaign: concurrent clients drive a
  real served workload over sockets while the storage misbehaves, the
  daemon is killed (in-process SIGKILL model, plus real SIGKILL/SIGTERM
  subprocess lanes), restarted over the debris, and every
  client-acknowledged write is audited for durability.
* ``torture v4`` — the sharded live-fire campaign: one shard worker of
  a multi-shard daemon is killed mid-serve; surviving shards must keep
  acknowledging writes during the outage, the victim is revived through
  supervised recovery, and every acked write of the whole run (the
  victim's included) is audited for durability.  ``--store`` tortures
  a durable per-shard backend (e.g. ``logstore``) instead of the
  in-memory simulated store.
* ``torture v5`` — the replication campaign: a primary/witness pair
  over real sockets; the primary is killed (or left a zombie) at a
  seeded ack count, the witness is promoted, clients fail over, and
  every acked write is audited against the promoted witness — plus the
  fencing invariant that a deposed primary never acks past the
  promotion watermark.
* ``serve --data-dir PATH`` — run the long-lived daemon itself:
  supervised recovery over whatever the directory contains, then
  health-gated serving with deadlines, backpressure, a ``/metrics`` +
  ``/healthz`` endpoint, graceful SIGTERM drain.  ``--store`` selects
  the durable store backend (``file`` or ``logstore``; reopen with the
  backend that created the directory).  ``--shards N`` serves
  a sharded topology: N recovery domains with per-shard WAL streams
  under ``data-dir/shard-K``, per-shard admission gates and watchdogs,
  and fence-protocol cross-shard operations.  ``--replicate`` accepts
  a witness subscription and gates every ack on the witness's durable
  receipt; ``--witness-of HOST:PORT`` runs the *witness* side —
  subscribe to that primary, continuously redo its shipped WAL, and
  serve only after promotion.
* ``promote --port N`` — tell a witness daemon to promote: fence the
  old epoch, converge the adopted log through recovery, start serving
  as primary.  Promotion is an operator decision (a witness cannot
  tell a dead primary from a partition), which is why it is a command
  and not an automatism.
* ``metrics <file.jsonl>`` — render a telemetry file exported with
  ``--metrics-out`` (or :func:`repro.obs.dump_jsonl`) as
  Prometheus-style exposition text; ``--summary`` prints the condensed
  counter/latency table (histogram p50/p95/p99 included) instead.
* ``trace <file.jsonl> [more.jsonl ...]`` — stitch the span exports of
  every process on a request's path (client, primary, shards, witness)
  back into causal trace trees with per-stage latency attribution.
  ``--list`` enumerates the trace ids present; ``--trace-id`` renders
  one; ``--expect a,b,c`` exits non-zero unless some complete tree
  contains all the named stages (the CI trace-smoke assertion).

Every torture mode accepts ``--metrics-out PATH``: the campaign runs
with a shared :class:`~repro.obs.metrics.MetricsRegistry` attached to
every system it builds, and the registry (spans included) is written
to PATH as JSONL when the campaign finishes.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile
import threading
from typing import List, Optional

from repro import RecoverableSystem, verify_recovered
from repro.analysis import (
    Table,
    failure_summary,
    fault_summary,
    format_bytes,
    obs_summary,
)
from repro.domains import (
    ApplicationRuntime,
    RecoverableBTree,
    RecoverableFileSystem,
)
from repro.kernel.system import SystemConfig
from repro.kernel.torture import TortureConfig, TortureHarness, TortureReport
from repro.obs import MetricsRegistry, dump_jsonl, load_jsonl, render_prometheus
from repro.persist.faulty_log import FaultyFileLog
from repro.persist.file_log import FileLogManager
from repro.replica import (
    ReplicaLiveFireConfig,
    ReplicaLiveFireHarness,
    ReplicationConfig,
    WitnessConfig,
    WitnessDaemon,
)
from repro.serve import (
    DaemonClient,
    DaemonConfig,
    LiveFireConfig,
    LiveFireHarness,
    LiveFireReport,
    RetryPolicy,
    ServeDaemon,
    ServeError,
    ShardedDaemonConfig,
    ShardedServeDaemon,
    ShardLiveFireConfig,
    ShardLiveFireHarness,
)
from repro.shard import ShardedSystem
from repro.storage.faults import FaultModel, FuzzRates
from repro.storage.registry import (
    make_store,
    recommended_cache_config,
    resolve_backend,
    store_backends,
)
from repro.workloads import register_workload_functions


def demo() -> int:
    print("repro — Lomet & Tuttle, SIGMOD 1999, self-demo\n")
    system = RecoverableSystem()
    fs = RecoverableFileSystem(system)
    app = ApplicationRuntime(system, "app:demo", program="checksum")
    tree = RecoverableBTree(system, capacity=4)

    for index in range(6):
        name = f"doc{index}"
        fs.write_file(name, f"document number {index} ".encode() * 40)
        app.run_pipeline(fs.object_id(name), fs.object_id(f"{name}.sum"))
        tree.insert(index, fs.read_file(f"{name}.sum"))
    fs.sort("doc0", "doc0.sorted")
    fs.delete("doc5")
    tree.delete(5)

    system.log.force()
    for _ in range(5):
        system.purge()

    print(f"executed {len(system.history)} operations "
          f"({system.stats.log_records} log records)")
    system.crash()
    report = system.recover()
    verify_recovered(system)
    print(f"crashed and recovered: {report.ops_redone} re-executed, "
          f"{report.skipped()} bypassed — state verified against the "
          f"oracle\n")

    snapshot = system.stats.snapshot()
    table = Table("ledger", ["metric", "value"])
    table.add_row("log bytes", format_bytes(snapshot["log_bytes"]))
    table.add_row(
        "data values logged", format_bytes(snapshot["log_value_bytes"])
    )
    table.add_row("device object writes", snapshot["object_writes"])
    table.add_row("log forces", snapshot["log_forces"])
    table.add_row("identity writes", snapshot["identity_writes"])
    table.add_row("multi-object atomic flushes", snapshot["atomic_flushes"])
    print(table.render())
    print("\nOK — see examples/ and benchmarks/ for the full tour.")
    return 0


def _torture_config(args: argparse.Namespace) -> TortureConfig:
    backend = getattr(args, "store", "memory")
    return TortureConfig(
        objects=args.objects,
        operations=args.ops,
        workload_seed=args.workload_seed,
        store_backend=backend,
        cache_factory=lambda: recommended_cache_config(backend),
    )


def _harness(args: argparse.Namespace) -> TortureHarness:
    metrics = MetricsRegistry() if args.metrics_out else None
    return TortureHarness(_torture_config(args), metrics=metrics)


def _dump_metrics(harness: TortureHarness, args: argparse.Namespace) -> None:
    if harness.obs is not None:
        dump_jsonl(harness.obs, args.metrics_out)
        print(f"telemetry written to {args.metrics_out}")


def _report_torture(report: TortureReport) -> int:
    print(report.summary())
    fault_summary(report.totals).print()
    if report.ok:
        return 0
    print("\nfailing schedules:")
    for outcome in report.failures():
        repro_hint = (
            f"  (reproduce: --runs 1 --seed {outcome.seed})"
            if outcome.seed is not None
            else ""
        )
        print(f"  {outcome.description}: {outcome.error}{repro_hint}")
        if outcome.trace:
            print(f"    faults applied: {', '.join(outcome.trace)}")
        if outcome.failure_report is not None:
            print(failure_summary(outcome.failure_report).render())
    return 1


def torture_sweep(args: argparse.Namespace) -> int:
    harness = _harness(args)
    print(
        f"sweeping {harness.count_points()} I/O points "
        f"(workload seed {args.workload_seed}, {args.ops} operations)"
    )
    status = _report_torture(harness.sweep())
    _dump_metrics(harness, args)
    return status


def torture_fuzz(args: argparse.Namespace) -> int:
    harness = _harness(args)
    rates = FuzzRates(
        transient=args.p_transient,
        torn=args.p_torn,
        corrupt=args.p_corrupt,
    )
    print(
        f"fuzzing {args.runs} schedules from seed {args.seed} "
        f"(workload seed {args.workload_seed})"
    )
    status = _report_torture(harness.fuzz(args.runs, args.seed, rates))
    _dump_metrics(harness, args)
    return status


def torture_v2(args: argparse.Namespace) -> int:
    harness = _harness(args)
    points = harness.recovery_points()
    print(
        f"torture v2: sweeping {points} recovery-phase I/O points "
        f"(workload seed {args.workload_seed}, {args.ops} operations)"
    )
    sweep = harness.sweep_recovery()
    status = _report_torture(sweep)
    if args.fuzz_runs > 0:
        print(
            f"\nfuzzing {args.fuzz_runs} two-phase schedules "
            f"from seed {args.seed}"
        )
        rates = FuzzRates(
            torn=args.p_torn, corrupt=args.p_corrupt, crash=args.p_crash
        )
        fuzz = harness.fuzz_recovery(args.fuzz_runs, args.seed, rates)
        status = _report_torture(fuzz) or status
    _dump_metrics(harness, args)
    return status


def _report_livefire(report: LiveFireReport) -> int:
    print(report.summary())
    if report.ok:
        return 0
    print("\nfailing runs:")
    for outcome in report.failures():
        print(f"  {outcome.description}: {outcome.error}")
        for loss in outcome.losses:
            print(f"    lost: {loss}")
    return 1


def torture_v3(args: argparse.Namespace) -> int:
    metrics = MetricsRegistry() if args.metrics_out else None
    harness = LiveFireHarness(
        LiveFireConfig(
            clients=args.clients,
            requests_per_client=args.requests,
        ),
        metrics=metrics,
    )
    print(
        f"torture v3: {args.runs} in-process live-fire runs from seed "
        f"{args.seed} ({args.clients} clients x {args.requests} requests)"
    )
    status = _report_livefire(harness.campaign(args.runs, args.seed))
    if not args.no_subprocess:
        print("\nsubprocess lanes: real SIGKILL, then SIGTERM drain")
        sub = LiveFireReport(mode="subprocess")
        for graceful in (False, True):
            with tempfile.TemporaryDirectory(prefix="repro-v3-") as workdir:
                sub.outcomes.append(
                    harness.subprocess_run(
                        workdir,
                        seed=args.seed + int(graceful),
                        graceful=graceful,
                    )
                )
        status = _report_livefire(sub) or status
    if metrics is not None:
        dump_jsonl(metrics, args.metrics_out)
        print(f"telemetry written to {args.metrics_out}")
    return status


def _shard_components(args: argparse.Namespace, index: int):
    """Store + log for one shard, under ``data-dir/shard-<index>``."""
    shard_dir = os.path.join(args.data_dir, f"shard-{index}")
    backend = getattr(args, "store", "file")
    if args.fault_seed is not None:
        model = FaultModel.fuzz(
            args.fault_seed + index,
            FuzzRates(
                transient=args.p_transient,
                torn=args.p_torn,
                corrupt=args.p_corrupt,
            ),
        )
        return make_store(backend, shard_dir, model=model), FaultyFileLog(
            shard_dir, model
        )
    return make_store(backend, shard_dir), FileLogManager(shard_dir)


def torture_v4(args: argparse.Namespace) -> int:
    metrics = MetricsRegistry() if args.metrics_out else None
    harness = ShardLiveFireHarness(
        ShardLiveFireConfig(
            shards=args.shards,
            clients=args.clients,
            requests_per_client=args.requests,
            store_backend=args.store,
        ),
        metrics=metrics,
    )
    print(
        f"torture v4: {args.runs} shard-kill runs from seed {args.seed} "
        f"({args.shards} shards, {args.clients} clients x "
        f"{args.requests} requests, store {args.store})"
    )
    report = harness.campaign(args.runs, args.seed)
    print(report.summary())
    status = 0
    if not report.ok:
        print("\nfailing runs:")
        for outcome in report.failures():
            print(f"  {outcome.description}: {outcome.error}")
            for loss in outcome.losses:
                print(f"    lost: {loss}")
        status = 1
    if metrics is not None:
        dump_jsonl(metrics, args.metrics_out)
        print(f"telemetry written to {args.metrics_out}")
    return status


def torture_v5(args: argparse.Namespace) -> int:
    metrics = MetricsRegistry() if args.metrics_out else None
    harness = ReplicaLiveFireHarness(
        ReplicaLiveFireConfig(
            clients=args.clients,
            requests_per_client=args.requests,
            zombie_ratio=args.zombie_ratio,
        ),
        metrics=metrics,
    )
    print(
        f"torture v5: {args.runs} primary-kill/promote runs from seed "
        f"{args.seed} ({args.clients} clients x {args.requests} requests, "
        f"zombie ratio {args.zombie_ratio})"
    )
    report = harness.campaign(args.runs, args.seed)
    print(report.summary())
    status = 0
    if not report.ok:
        print("\nfailing runs:")
        for outcome in report.failures():
            print(f"  {outcome.description}: {outcome.error}")
            for loss in outcome.losses:
                print(f"    lost: {loss}")
        status = 1
    if metrics is not None:
        dump_jsonl(metrics, args.metrics_out)
        print(f"telemetry written to {args.metrics_out}")
    return status


def promote_witness(args: argparse.Namespace) -> int:
    client = DaemonClient(
        args.host,
        args.port,
        policy=RetryPolicy(attempts=args.attempts, base_delay=0.05,
                           deadline=args.deadline),
    )
    try:
        response = client.request("promote")
    except (ServeError, OSError) as exc:
        print(f"promotion failed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 1
    finally:
        client.close()
    print(
        f"promoted: role={response.get('role')} "
        f"epoch={response.get('epoch')} watermark={response.get('watermark')}"
        + (" (already promoted)" if response.get("already_promoted") else "")
    )
    return 0


def _parse_primary(spec: str) -> tuple:
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(
            f"--witness-of expects HOST:PORT, got {spec!r}"
        )
    return (host or "127.0.0.1", int(port))


def serve_daemon(args: argparse.Namespace) -> int:
    system_config = SystemConfig(
        cache=recommended_cache_config(args.store),
        group_commit=args.group_commit,
        group_commit_interval_ms=args.group_commit_interval_ms,
    )
    metrics = MetricsRegistry()
    if args.shards > 1 and (args.witness_of or args.replicate):
        print(
            "replication serves one recovery domain per daemon; "
            "--witness-of/--replicate cannot combine with --shards > 1",
            file=sys.stderr,
        )
        return 2
    if args.shards > 1:
        # Sharded topology: each shard recovers its own directory (its
        # own WAL stream) independently; the daemon gates admission and
        # supervises per shard.
        stores_logs = [
            _shard_components(args, index) for index in range(args.shards)
        ]
        sharded = ShardedSystem.build(
            args.shards,
            config_factory=lambda index: system_config,
            store_factory=lambda index: stores_logs[index][0],
            log_factory=lambda index: stores_logs[index][1],
        )
        register_workload_functions(sharded.registry)
        for shard_system in sharded.systems:
            # Cold start per shard (see the single-kernel comment).
            shard_system.crash()
        daemon = ShardedServeDaemon(
            sharded,
            ShardedDaemonConfig(
                host=args.host,
                port=args.port,
                http_port=None if args.no_http else args.http_port,
                max_queue=args.max_queue,
                default_deadline_ms=args.default_deadline_ms,
                allow_chaos=args.allow_chaos,
                flightrec_path=os.path.join(
                    args.data_dir, "flightrec.jsonl"
                ),
            ),
        )
        daemon.start()
        health = daemon.aggregate_health()
        print(
            f"serving {args.data_dir} on {args.host}:{daemon.port} "
            f"({args.shards} shards, health: {health.value}"
            + (f", http: {daemon.http_port}" if daemon.http_port else "")
            + ")",
            flush=True,
        )
        return _serve_wait(daemon, args, metrics=daemon.obs)
    if args.fault_seed is not None:
        model = FaultModel.fuzz(
            args.fault_seed,
            FuzzRates(
                transient=args.p_transient,
                torn=args.p_torn,
                corrupt=args.p_corrupt,
            ),
        )
        store = make_store(args.store, args.data_dir, model=model)
        log = FaultyFileLog(args.data_dir, model)
    else:
        store = make_store(args.store, args.data_dir)
        log = FileLogManager(args.data_dir)
    system = RecoverableSystem(system_config, store=store, log=log)
    register_workload_functions(system.registry)
    system.attach_metrics(metrics)
    # Cold start: whatever the directory contains — a clean shutdown,
    # SIGKILL debris — the daemon's supervised startup must recover it
    # before the listener opens.  Entering the crashed state makes the
    # watchdog run the full escalation ladder.
    system.crash()
    daemon_config = DaemonConfig(
        host=args.host,
        port=args.port,
        http_port=None if args.no_http else args.http_port,
        max_queue=args.max_queue,
        default_deadline_ms=args.default_deadline_ms,
        flightrec_path=os.path.join(args.data_dir, "flightrec.jsonl"),
    )
    if args.witness_of:
        primary_host, primary_port = _parse_primary(args.witness_of)
        daemon = WitnessDaemon(
            system,
            daemon_config,
            witness=WitnessConfig(
                primary_host=primary_host,
                primary_port=primary_port,
                epoch_root=args.data_dir,
            ),
        )
    elif args.replicate:
        daemon = ServeDaemon(
            system,
            daemon_config,
            replication=ReplicationConfig(epoch_root=args.data_dir),
        )
    else:
        daemon = ServeDaemon(system, daemon_config)
    daemon.start()
    role = f", role: {daemon.role}" if daemon.role != "primary" else ""
    print(
        f"serving {args.data_dir} on {args.host}:{daemon.port} "
        f"(health: {system.health.value}{role}"
        + (f", http: {daemon.http_port}" if daemon.http_port else "")
        + ")",
        flush=True,
    )
    return _serve_wait(daemon, args, metrics=metrics)


def _serve_wait(daemon, args: argparse.Namespace, metrics) -> int:
    if args.port_file:
        payload = {
            "port": daemon.port,
            "http_port": daemon.http_port,
            "pid": os.getpid(),
        }
        tmp = args.port_file + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, args.port_file)
    stop = threading.Event()

    def _on_signal(signum: int, _frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    stop.wait()
    print("draining for shutdown", flush=True)
    status = daemon.stop(graceful=True)
    if args.metrics_out and metrics is not None:
        dump_jsonl(metrics, args.metrics_out)
    print(f"shutdown complete (status {status})", flush=True)
    return status


def metrics_view(args: argparse.Namespace) -> int:
    try:
        loaded = load_jsonl(args.path)
        snapshot = loaded["snapshot"]
        if not loaded["meta"] and not snapshot:
            # Parseable JSONL, but none of it is telemetry.
            raise ValueError("no telemetry records found")
        rendered = (
            obs_summary(snapshot).render()
            if args.summary
            else render_prometheus(snapshot)
        )
    except OSError as exc:
        print(f"cannot read telemetry file: {exc}", file=sys.stderr)
        return 1
    except (ValueError, KeyError, TypeError, AttributeError) as exc:
        print(
            f"{args.path} is not a telemetry JSONL file (expected the "
            f"format written by --metrics-out): {type(exc).__name__}: "
            f"{exc}",
            file=sys.stderr,
        )
        return 1
    if args.summary:
        print(rendered)
    else:
        print(rendered, end="")
    return 0


def trace_view(args: argparse.Namespace) -> int:
    from repro.obs.tracetree import main as trace_main

    expect = None
    if args.expect:
        expect = [part.strip() for part in args.expect.split(",")
                  if part.strip()]
    try:
        return trace_main(
            args.paths,
            trace_id=args.trace_id,
            list_only=args.list_traces,
            expect=expect,
        )
    except OSError as exc:
        print(f"cannot read telemetry file: {exc}", file=sys.stderr)
        return 1
    except (ValueError, KeyError, TypeError) as exc:
        print(
            f"not a telemetry JSONL export: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("demo", help="run the self-demo (the default)")

    torture = sub.add_parser(
        "torture", help="fault-injection recovery torture"
    )
    tsub = torture.add_subparsers(dest="mode", required=True)

    backend_names = store_backends()

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--ops", type=int, default=20,
                       help="workload operations (default 20)")
        p.add_argument("--objects", type=int, default=5,
                       help="object population (default 5)")
        p.add_argument("--workload-seed", type=int, default=0,
                       help="workload/interleave seed (default 0)")
        p.add_argument("--store", default="memory", choices=backend_names,
                       help="stable-store backend under torture "
                       "(default memory)")
        p.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write campaign telemetry (JSONL) to PATH")

    sweep = tsub.add_parser(
        "sweep", help="every I/O point x every must-survive fault kind"
    )
    common(sweep)
    sweep.set_defaults(fn=torture_sweep)

    fuzz = tsub.add_parser("fuzz", help="seeded random fault schedules")
    common(fuzz)
    fuzz.add_argument("--runs", type=int, default=500,
                      help="number of schedules (default 500)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="base schedule seed (run i uses seed+i)")
    fuzz.add_argument("--p-transient", type=float, default=0.02,
                      help="per-point transient-fault rate")
    fuzz.add_argument("--p-torn", type=float, default=0.01,
                      help="per-point torn-write rate")
    fuzz.add_argument("--p-corrupt", type=float, default=0.01,
                      help="per-point corruption rate")
    fuzz.set_defaults(fn=torture_fuzz)

    v2 = tsub.add_parser(
        "v2", help="crash recovery itself: recovery-point sweep "
        "(incl. nested crashes) + two-phase fuzz via the supervisor"
    )
    common(v2)
    v2.add_argument("--fuzz-runs", type=int, default=200,
                    help="two-phase fuzz schedules after the sweep "
                    "(default 200; 0 skips the fuzz stage)")
    v2.add_argument("--seed", type=int, default=0,
                    help="base schedule seed (run i uses seed+i)")
    v2.add_argument("--p-torn", type=float, default=0.005,
                    help="per-point torn-write rate")
    v2.add_argument("--p-corrupt", type=float, default=0.005,
                    help="per-point corruption rate")
    v2.add_argument("--p-crash", type=float, default=0.01,
                    help="per-point clean-crash rate")
    v2.set_defaults(fn=torture_v2)

    v3 = tsub.add_parser(
        "v3", help="live fire: client workloads over sockets at a "
        "served daemon under faults and kills; every acked write "
        "audited for durability after recovery"
    )
    v3.add_argument("--runs", type=int, default=25,
                    help="in-process seeded runs (default 25)")
    v3.add_argument("--seed", type=int, default=0,
                    help="base run seed (run i uses seed+i)")
    v3.add_argument("--clients", type=int, default=3,
                    help="concurrent client threads per run (default 3)")
    v3.add_argument("--requests", type=int, default=12,
                    help="put requests per client (default 12)")
    v3.add_argument("--no-subprocess", action="store_true",
                    help="skip the real-SIGKILL/SIGTERM subprocess lanes")
    v3.add_argument("--metrics-out", default=None, metavar="PATH",
                    help="write campaign telemetry (JSONL) to PATH")
    v3.set_defaults(fn=torture_v3)

    v4 = tsub.add_parser(
        "v4", help="sharded live fire: kill one shard worker mid-serve; "
        "surviving shards must keep acking, and every acked write "
        "(the victim's included) must survive its recovery"
    )
    v4.add_argument("--runs", type=int, default=25,
                    help="seeded runs (default 25)")
    v4.add_argument("--seed", type=int, default=0,
                    help="base run seed (run i uses seed+i)")
    v4.add_argument("--shards", type=int, default=2,
                    help="recovery domains per run (default 2)")
    v4.add_argument("--clients", type=int, default=3,
                    help="concurrent client threads per run (default 3)")
    v4.add_argument("--requests", type=int, default=14,
                    help="requests per client (default 14)")
    v4.add_argument("--store", default="memory", choices=backend_names,
                    help="per-shard stable-store backend under torture "
                    "(default memory)")
    v4.add_argument("--metrics-out", default=None, metavar="PATH",
                    help="write campaign telemetry (JSONL) to PATH")
    v4.set_defaults(fn=torture_v4)

    v5 = tsub.add_parser(
        "v5", help="replication live fire: kill (or zombie) the primary "
        "of a primary/witness pair mid-serve, promote the witness, fail "
        "clients over, and audit every acked write against the promoted "
        "witness plus the epoch-fencing invariant"
    )
    v5.add_argument("--runs", type=int, default=25,
                    help="seeded runs (default 25)")
    v5.add_argument("--seed", type=int, default=0,
                    help="base run seed (run i uses seed+i)")
    v5.add_argument("--clients", type=int, default=3,
                    help="concurrent client threads per run (default 3)")
    v5.add_argument("--requests", type=int, default=10,
                    help="put requests per client (default 10)")
    v5.add_argument("--zombie-ratio", type=float, default=0.2,
                    help="fraction of runs that leave the primary alive "
                    "through the promotion (default 0.2)")
    v5.add_argument("--metrics-out", default=None, metavar="PATH",
                    help="write campaign telemetry (JSONL) to PATH")
    v5.set_defaults(fn=torture_v5)

    serve = sub.add_parser(
        "serve", help="run the serving daemon over a database directory"
    )
    serve.add_argument("--data-dir", required=True,
                       help="database directory (created if missing)")
    serve.add_argument("--store", default="file",
                       choices=[name for name in store_backends()
                                if resolve_backend(name).requires_root],
                       help="durable store backend for the data "
                       "directory (default file; a directory must be "
                       "reopened with the backend that created it)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="request port (default 0 = ephemeral)")
    serve.add_argument("--http-port", type=int, default=0,
                       help="/metrics + /healthz port (default ephemeral)")
    serve.add_argument("--no-http", action="store_true",
                       help="disable the HTTP scrape endpoint")
    serve.add_argument("--port-file", default=None, metavar="PATH",
                       help="write bound ports + pid to PATH as JSON "
                       "once the listener is open")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="admission backlog bound (default 64)")
    serve.add_argument("--default-deadline-ms", type=int, default=5000,
                       help="deadline for requests that carry none")
    serve.add_argument("--group-commit", action="store_true",
                       help="enable group-commit WAL forcing")
    serve.add_argument("--group-commit-interval-ms", type=float,
                       default=None, metavar="MS",
                       help="also force the WAL on a timer every MS "
                       "milliseconds (implies --group-commit)")
    serve.add_argument("--shards", type=int, default=1,
                       help="recovery domains; > 1 serves a sharded "
                       "topology with per-shard WALs under "
                       "data-dir/shard-K (default 1)")
    serve.add_argument("--allow-chaos", action="store_true",
                       help="accept kill_shard/revive_shard chaos "
                       "requests (sharded topologies; harness/CI only)")
    serve.add_argument("--replicate", action="store_true",
                       help="accept a witness subscription and gate "
                       "every write ack on the witness's durable "
                       "receipt (semi-synchronous replication)")
    serve.add_argument("--witness-of", default=None, metavar="HOST:PORT",
                       help="run as the witness of the primary at "
                       "HOST:PORT: subscribe, adopt and continuously "
                       "redo its shipped WAL; serve only after "
                       "'python -m repro promote'")
    serve.add_argument("--fault-seed", type=int, default=None,
                       help="arm a seeded fuzz fault model over the "
                       "on-disk store and log (live-fire testing)")
    serve.add_argument("--p-transient", type=float, default=0.01,
                       help="per-point transient rate (with --fault-seed)")
    serve.add_argument("--p-torn", type=float, default=0.002,
                       help="per-point torn-write rate (with --fault-seed)")
    serve.add_argument("--p-corrupt", type=float, default=0.002,
                       help="per-point corruption rate (with --fault-seed)")
    serve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="dump telemetry JSONL at graceful shutdown")
    serve.set_defaults(fn=serve_daemon)

    promote = sub.add_parser(
        "promote", help="promote a witness daemon to primary (fences "
        "the old epoch; an operator decision, never automatic)"
    )
    promote.add_argument("--host", default="127.0.0.1")
    promote.add_argument("--port", type=int, required=True,
                         help="the witness daemon's request port")
    promote.add_argument("--attempts", type=int, default=5,
                         help="client retry attempts (default 5)")
    promote.add_argument("--deadline", type=float, default=30.0,
                         help="overall promotion deadline in seconds")
    promote.set_defaults(fn=promote_witness)

    metrics = sub.add_parser(
        "metrics", help="render an exported telemetry JSONL file"
    )
    metrics.add_argument("path", help="JSONL file written by --metrics-out")
    metrics.add_argument("--summary", action="store_true",
                         help="condensed counter/latency table instead of "
                         "Prometheus exposition text")
    metrics.set_defaults(fn=metrics_view)

    trace = sub.add_parser(
        "trace", help="reconstruct distributed trace trees from "
        "exported telemetry JSONL (one file per process on the path)"
    )
    trace.add_argument("paths", nargs="+", metavar="PATH",
                       help="JSONL exports (client, primary, witness, "
                       "...); spans sharing a trace id are stitched")
    trace.add_argument("--trace-id", default=None,
                       help="render only this trace id")
    trace.add_argument("--list", action="store_true", dest="list_traces",
                       help="list trace ids instead of rendering trees")
    trace.add_argument("--expect", default=None, metavar="A,B,C",
                       help="comma-separated stage-name substrings; "
                       "exit 1 unless one complete tree contains all")
    trace.set_defaults(fn=trace_view)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command in (None, "demo"):
        return demo()
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
