"""Command-line entry: ``python -m repro [command]``.

* no command / ``demo`` — a compact end-to-end scenario (logical
  operations across three domains, a crash, recovery, verification) and
  the I/O and logging ledger.  A smoke check that an installation works.
* ``torture sweep`` — enumerate every numbered I/O point of a seeded
  workload and crash-recover it under every must-survive fault kind.
* ``torture fuzz`` — N seeded random fault schedules; any failure
  prints the seed that reproduces it exactly
  (``python -m repro torture fuzz --runs 1 --seed <that seed>``).
* ``torture v2`` — the recovery-resilience campaign: crash/tear/flip
  every numbered *recovery-phase* I/O point (including nested crashes
  during restarted recoveries), then fuzz schedules spanning both
  phases, all driven through the supervisor's escalation ladder.  A
  failing run prints its structured recovery supervision report.
* ``metrics <file.jsonl>`` — render a telemetry file exported with
  ``--metrics-out`` (or :func:`repro.obs.dump_jsonl`) as
  Prometheus-style exposition text; ``--summary`` prints the condensed
  counter/latency table instead.

Every torture mode accepts ``--metrics-out PATH``: the campaign runs
with a shared :class:`~repro.obs.metrics.MetricsRegistry` attached to
every system it builds, and the registry (spans included) is written
to PATH as JSONL when the campaign finishes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import RecoverableSystem, verify_recovered
from repro.analysis import (
    Table,
    failure_summary,
    fault_summary,
    format_bytes,
    obs_summary,
)
from repro.domains import (
    ApplicationRuntime,
    RecoverableBTree,
    RecoverableFileSystem,
)
from repro.kernel.torture import TortureConfig, TortureHarness, TortureReport
from repro.obs import MetricsRegistry, dump_jsonl, load_jsonl, render_prometheus
from repro.storage.faults import FuzzRates


def demo() -> int:
    print("repro — Lomet & Tuttle, SIGMOD 1999, self-demo\n")
    system = RecoverableSystem()
    fs = RecoverableFileSystem(system)
    app = ApplicationRuntime(system, "app:demo", program="checksum")
    tree = RecoverableBTree(system, capacity=4)

    for index in range(6):
        name = f"doc{index}"
        fs.write_file(name, f"document number {index} ".encode() * 40)
        app.run_pipeline(fs.object_id(name), fs.object_id(f"{name}.sum"))
        tree.insert(index, fs.read_file(f"{name}.sum"))
    fs.sort("doc0", "doc0.sorted")
    fs.delete("doc5")
    tree.delete(5)

    system.log.force()
    for _ in range(5):
        system.purge()

    print(f"executed {len(system.history)} operations "
          f"({system.stats.log_records} log records)")
    system.crash()
    report = system.recover()
    verify_recovered(system)
    print(f"crashed and recovered: {report.ops_redone} re-executed, "
          f"{report.skipped()} bypassed — state verified against the "
          f"oracle\n")

    snapshot = system.stats.snapshot()
    table = Table("ledger", ["metric", "value"])
    table.add_row("log bytes", format_bytes(snapshot["log_bytes"]))
    table.add_row(
        "data values logged", format_bytes(snapshot["log_value_bytes"])
    )
    table.add_row("device object writes", snapshot["object_writes"])
    table.add_row("log forces", snapshot["log_forces"])
    table.add_row("identity writes", snapshot["identity_writes"])
    table.add_row("multi-object atomic flushes", snapshot["atomic_flushes"])
    print(table.render())
    print("\nOK — see examples/ and benchmarks/ for the full tour.")
    return 0


def _torture_config(args: argparse.Namespace) -> TortureConfig:
    return TortureConfig(
        objects=args.objects,
        operations=args.ops,
        workload_seed=args.workload_seed,
    )


def _harness(args: argparse.Namespace) -> TortureHarness:
    metrics = MetricsRegistry() if args.metrics_out else None
    return TortureHarness(_torture_config(args), metrics=metrics)


def _dump_metrics(harness: TortureHarness, args: argparse.Namespace) -> None:
    if harness.obs is not None:
        dump_jsonl(harness.obs, args.metrics_out)
        print(f"telemetry written to {args.metrics_out}")


def _report_torture(report: TortureReport) -> int:
    print(report.summary())
    fault_summary(report.totals).print()
    if report.ok:
        return 0
    print("\nfailing schedules:")
    for outcome in report.failures():
        repro_hint = (
            f"  (reproduce: --runs 1 --seed {outcome.seed})"
            if outcome.seed is not None
            else ""
        )
        print(f"  {outcome.description}: {outcome.error}{repro_hint}")
        if outcome.trace:
            print(f"    faults applied: {', '.join(outcome.trace)}")
        if outcome.failure_report is not None:
            print(failure_summary(outcome.failure_report).render())
    return 1


def torture_sweep(args: argparse.Namespace) -> int:
    harness = _harness(args)
    print(
        f"sweeping {harness.count_points()} I/O points "
        f"(workload seed {args.workload_seed}, {args.ops} operations)"
    )
    status = _report_torture(harness.sweep())
    _dump_metrics(harness, args)
    return status


def torture_fuzz(args: argparse.Namespace) -> int:
    harness = _harness(args)
    rates = FuzzRates(
        transient=args.p_transient,
        torn=args.p_torn,
        corrupt=args.p_corrupt,
    )
    print(
        f"fuzzing {args.runs} schedules from seed {args.seed} "
        f"(workload seed {args.workload_seed})"
    )
    status = _report_torture(harness.fuzz(args.runs, args.seed, rates))
    _dump_metrics(harness, args)
    return status


def torture_v2(args: argparse.Namespace) -> int:
    harness = _harness(args)
    points = harness.recovery_points()
    print(
        f"torture v2: sweeping {points} recovery-phase I/O points "
        f"(workload seed {args.workload_seed}, {args.ops} operations)"
    )
    sweep = harness.sweep_recovery()
    status = _report_torture(sweep)
    if args.fuzz_runs > 0:
        print(
            f"\nfuzzing {args.fuzz_runs} two-phase schedules "
            f"from seed {args.seed}"
        )
        rates = FuzzRates(
            torn=args.p_torn, corrupt=args.p_corrupt, crash=args.p_crash
        )
        fuzz = harness.fuzz_recovery(args.fuzz_runs, args.seed, rates)
        status = _report_torture(fuzz) or status
    _dump_metrics(harness, args)
    return status


def metrics_view(args: argparse.Namespace) -> int:
    try:
        loaded = load_jsonl(args.path)
    except OSError as exc:
        print(f"cannot read telemetry file: {exc}", file=sys.stderr)
        return 1
    if args.summary:
        obs_summary(loaded["snapshot"]).print()
        return 0
    print(render_prometheus(loaded["snapshot"]), end="")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("demo", help="run the self-demo (the default)")

    torture = sub.add_parser(
        "torture", help="fault-injection recovery torture"
    )
    tsub = torture.add_subparsers(dest="mode", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--ops", type=int, default=20,
                       help="workload operations (default 20)")
        p.add_argument("--objects", type=int, default=5,
                       help="object population (default 5)")
        p.add_argument("--workload-seed", type=int, default=0,
                       help="workload/interleave seed (default 0)")
        p.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write campaign telemetry (JSONL) to PATH")

    sweep = tsub.add_parser(
        "sweep", help="every I/O point x every must-survive fault kind"
    )
    common(sweep)
    sweep.set_defaults(fn=torture_sweep)

    fuzz = tsub.add_parser("fuzz", help="seeded random fault schedules")
    common(fuzz)
    fuzz.add_argument("--runs", type=int, default=500,
                      help="number of schedules (default 500)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="base schedule seed (run i uses seed+i)")
    fuzz.add_argument("--p-transient", type=float, default=0.02,
                      help="per-point transient-fault rate")
    fuzz.add_argument("--p-torn", type=float, default=0.01,
                      help="per-point torn-write rate")
    fuzz.add_argument("--p-corrupt", type=float, default=0.01,
                      help="per-point corruption rate")
    fuzz.set_defaults(fn=torture_fuzz)

    v2 = tsub.add_parser(
        "v2", help="crash recovery itself: recovery-point sweep "
        "(incl. nested crashes) + two-phase fuzz via the supervisor"
    )
    common(v2)
    v2.add_argument("--fuzz-runs", type=int, default=200,
                    help="two-phase fuzz schedules after the sweep "
                    "(default 200; 0 skips the fuzz stage)")
    v2.add_argument("--seed", type=int, default=0,
                    help="base schedule seed (run i uses seed+i)")
    v2.add_argument("--p-torn", type=float, default=0.005,
                    help="per-point torn-write rate")
    v2.add_argument("--p-corrupt", type=float, default=0.005,
                    help="per-point corruption rate")
    v2.add_argument("--p-crash", type=float, default=0.01,
                    help="per-point clean-crash rate")
    v2.set_defaults(fn=torture_v2)

    metrics = sub.add_parser(
        "metrics", help="render an exported telemetry JSONL file"
    )
    metrics.add_argument("path", help="JSONL file written by --metrics-out")
    metrics.add_argument("--summary", action="store_true",
                         help="condensed counter/latency table instead of "
                         "Prometheus exposition text")
    metrics.set_defaults(fn=metrics_view)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command in (None, "demo"):
        return demo()
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
