"""Self-demo: ``python -m repro``.

Runs a compact end-to-end scenario — logical operations across three
domains, a crash, recovery, and verification — and prints the I/O and
logging ledger.  A smoke check that an installation works.
"""

from __future__ import annotations

from repro import RecoverableSystem, verify_recovered
from repro.analysis import Table, format_bytes
from repro.domains import (
    ApplicationRuntime,
    RecoverableBTree,
    RecoverableFileSystem,
)


def main() -> int:
    print("repro — Lomet & Tuttle, SIGMOD 1999, self-demo\n")
    system = RecoverableSystem()
    fs = RecoverableFileSystem(system)
    app = ApplicationRuntime(system, "app:demo", program="checksum")
    tree = RecoverableBTree(system, capacity=4)

    for index in range(6):
        name = f"doc{index}"
        fs.write_file(name, f"document number {index} ".encode() * 40)
        app.run_pipeline(fs.object_id(name), fs.object_id(f"{name}.sum"))
        tree.insert(index, fs.read_file(f"{name}.sum"))
    fs.sort("doc0", "doc0.sorted")
    fs.delete("doc5")
    tree.delete(5)

    system.log.force()
    for _ in range(5):
        system.purge()

    print(f"executed {len(system.history)} operations "
          f"({system.stats.log_records} log records)")
    system.crash()
    report = system.recover()
    verify_recovered(system)
    print(f"crashed and recovered: {report.ops_redone} re-executed, "
          f"{report.skipped()} bypassed — state verified against the "
          f"oracle\n")

    snapshot = system.stats.snapshot()
    table = Table("ledger", ["metric", "value"])
    table.add_row("log bytes", format_bytes(snapshot["log_bytes"]))
    table.add_row(
        "data values logged", format_bytes(snapshot["log_value_bytes"])
    )
    table.add_row("device object writes", snapshot["object_writes"])
    table.add_row("log forces", snapshot["log_forces"])
    table.add_row("identity writes", snapshot["identity_writes"])
    table.add_row("multi-object atomic flushes", snapshot["atomic_flushes"])
    print(table.render())
    print("\nOK — see examples/ and benchmarks/ for the full tour.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
