"""Unified observability: one registry, spans, exportable telemetry.

``repro.obs`` is the telemetry layer the rest of the system reports
into.  A :class:`MetricsRegistry` holds counters, gauges and
bounded-bucket histograms; a :class:`Span` times a (possibly nested)
phase and lands its duration in a histogram keyed by the span name;
*collectors* absorb the pre-existing counter ledgers (``IOStats``,
engine ``stats()``) behind compatibility accessors; *sinks*
(:class:`repro.analysis.trace.Tracer`) subscribe to the registry's
event stream instead of being wired as a parallel mechanism.

The whole layer follows the null-object pattern: every instrumented
component holds :data:`NULL_OBS` by default, whose ``enabled`` flag is
False and whose methods do nothing — the hot paths guard their timing
work behind ``if obs.enabled`` so an un-instrumented system pays ~one
attribute check (asserted by the E10 overhead lane).

Exporters: :func:`render_prometheus` (text exposition format) and
:func:`dump_jsonl` / :func:`load_jsonl` (span events + final snapshot,
round-trippable), surfaced as ``python -m repro metrics`` and the
``--metrics-out`` flags on ``torture`` and the E10/E11 benchmarks.

Distributed tracing rides on the same span machinery:
:class:`TraceContext` (``repro.obs.tracing``) crosses process
boundaries as a ``"trace"`` wire field, traced spans carry
``trace``/``span``/``parent_span`` tags, and ``repro.obs.tracetree``
(``python -m repro trace``) reconstructs the causal tree from the
JSONL exports of every process involved.  :class:`FlightRecorder`
(``repro.obs.flightrec``) taps the registry's event stream into a
bounded ring persisted as ``flightrec.jsonl`` for crash post-mortems.
"""

from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    MS_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_OBS,
    NullRegistry,
    Span,
)
from repro.obs.export import (
    dump_jsonl,
    load_jsonl,
    render_prometheus,
)
from repro.obs.flightrec import FlightRecorder, load_flightrec
from repro.obs.http import ObsHTTPServer
from repro.obs.tracing import TraceContext

__all__ = [
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS",
    "MS_BUCKETS",
    "FlightRecorder",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NullRegistry",
    "ObsHTTPServer",
    "Span",
    "TraceContext",
    "dump_jsonl",
    "load_flightrec",
    "load_jsonl",
    "render_prometheus",
]
