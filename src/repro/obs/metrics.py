"""Metrics registry, bounded-bucket histograms, and phase spans.

One :class:`MetricsRegistry` per :class:`~repro.kernel.system.RecoverableSystem`
(or :class:`~repro.persist.database.PersistentSystem`) aggregates:

- **counters** — monotonically increasing event tallies,
- **gauges** — last-write-wins point samples,
- **histograms** — bounded-bucket distributions (latencies, cone
  sizes, batch sizes) with p50/p99 read off the cumulative counts,
- **spans** — timed, nestable phases whose durations land in the
  histogram of the same name and whose tagged completion events sit in
  a bounded deque for export,
- **collectors** — callables polled at snapshot time that absorb the
  pre-existing counter ledgers (``IOStats.snapshot()``, engine
  ``stats()``) under a prefix, and
- **sinks** — subscribers (e.g. ``Tracer``) receiving the ``emit()``
  event stream that previously went through ``CacheManager.tracer``.

:data:`NULL_OBS` is the shared null object: ``enabled`` is False and
every method is a no-op, so instrumented hot paths cost ~one attribute
check when no registry is attached.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS",
    "MS_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NullRegistry",
    "Span",
]

#: Default histogram boundaries for durations, in seconds.  Exponential
#: from 1 microsecond to 10 seconds; values above the last boundary land
#: in the overflow (+Inf) bucket.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0,
)

#: Default histogram boundaries for counts/sizes (cone sizes, batch
#: sizes): powers of two up to 64k.
COUNT_BUCKETS: Tuple[float, ...] = tuple(float(1 << n) for n in range(17))

#: Histogram boundaries for millisecond-denominated stage latencies
#: (the ``ack.*_ms`` request-stage histograms): 10 microseconds to
#: 10 seconds, expressed in ms.  Spans whose name ends in ``_ms``
#: observe into these buckets automatically.
MS_BUCKETS: Tuple[float, ...] = (
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 25.0, 50.0,
    100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


class Histogram:
    """A bounded-bucket histogram with cumulative-count quantiles.

    ``boundaries`` are inclusive upper bounds (Prometheus ``le``
    semantics): an observation ``v`` lands in the first bucket whose
    boundary satisfies ``v <= boundary``, or in the overflow bucket
    past the last boundary.  Memory is fixed at ``len(boundaries)+1``
    ints regardless of observation volume.
    """

    __slots__ = ("name", "boundaries", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, boundaries: Iterable[float] = LATENCY_BUCKETS):
        self.name = name
        self.boundaries: Tuple[float, ...] = tuple(sorted(float(b) for b in boundaries))
        if not self.boundaries:
            raise ValueError("histogram needs at least one bucket boundary")
        # One slot per boundary plus the overflow (+Inf) bucket.
        self.buckets: List[int] = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.buckets[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Upper bucket boundary at quantile ``q`` (0 < q <= 1).

        Returns 0.0 for an empty histogram.  Observations in the
        overflow bucket report the observed maximum (the only bound we
        have above the last boundary).
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket in enumerate(self.buckets):
            cumulative += bucket
            if cumulative >= rank and bucket:
                if index < len(self.boundaries):
                    return min(self.boundaries[index], self.max)
                return self.max
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "boundaries": list(self.boundaries),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class Span:
    """A timed phase.  Use as a context manager:

    ``with registry.span("recovery.attempt", attempt=2) as span:``

    On exit — **including via an exception** — the span observes its
    duration into the histogram named after it, records a completion
    event (name, parent, seconds, tags) in the registry's bounded span
    deque, and pops itself off the nesting stack.  An exception adds
    ``outcome="error"`` and ``error=repr(exc)`` tags before re-raising.
    """

    __slots__ = ("registry", "name", "tags", "parent", "ts", "_start", "_closed")

    def __init__(self, registry: "MetricsRegistry", name: str, tags: Dict[str, Any]):
        self.registry = registry
        self.name = name
        self.tags = tags
        self.parent: Optional[str] = None
        #: Wall-clock start time — lets cross-process trace events be
        #: ordered even though durations come from the monotonic clock.
        self.ts = 0.0
        self._start = 0.0
        self._closed = False

    def tag(self, **tags: Any) -> "Span":
        self.tags.update(tags)
        return self

    def __enter__(self) -> "Span":
        stack = self.registry._span_stack
        self.parent = stack[-1].name if stack else None
        stack.append(self)
        self.ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        if exc is not None:
            self.tags.setdefault("outcome", "error")
            self.tags.setdefault("error", repr(exc))
        self._close(elapsed)
        return None  # never swallow the exception

    def _close(self, elapsed: float) -> None:
        if self._closed:
            return
        self._closed = True
        stack = self.registry._span_stack
        # Defensive pop: tolerate a mis-nested close without corrupting
        # the stack for outer spans.
        if self in stack:
            while stack.pop() is not self:
                pass
        self.registry._record_span(self, elapsed)


class _NullSpan:
    """Shared do-nothing span handed out by :class:`NullRegistry`."""

    __slots__ = ()

    def tag(self, **tags: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class MetricsRegistry:
    """The single telemetry hub a system reports into."""

    enabled = True

    def __init__(self, max_span_events: int = 10000):
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.spans: Deque[Dict[str, Any]] = deque(maxlen=max_span_events)
        self._span_stack: List[Span] = []
        self._sinks: List[Any] = []
        self._collectors: List[Tuple[str, Callable[[], Mapping[str, Any]]]] = []

    # -- primitives ---------------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram(self, name: str,
                  boundaries: Iterable[float] = LATENCY_BUCKETS) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(name, boundaries)
        return hist

    def observe(self, name: str, value: float,
                boundaries: Iterable[float] = LATENCY_BUCKETS) -> None:
        self.histogram(name, boundaries).observe(value)

    def span(self, name: str, **tags: Any) -> Span:
        return Span(self, name, tags)

    def _record_span(self, span: Span, elapsed: float) -> None:
        # Spans named ``*_ms`` are request-stage timers: their histogram
        # is denominated in milliseconds over MS_BUCKETS, matching the
        # exported metric name.  Everything else stays in seconds.
        if span.name.endswith("_ms"):
            self.observe(span.name, elapsed * 1000.0, MS_BUCKETS)
        else:
            self.observe(span.name, elapsed)
        self.spans.append({
            "name": span.name,
            "parent": span.parent,
            "seconds": elapsed,
            "ts": span.ts,
            "tags": dict(span.tags),
        })

    def record_span(self, name: str, seconds: float,
                    ts: Optional[float] = None,
                    parent: Optional[str] = None, **tags: Any) -> None:
        """Record an externally timed phase as a span event.

        Stages whose start and end live on different threads (queue
        wait) or whose timing is measured around a blocking call can't
        use the context-manager form; this records the same event shape
        — including trace tags — from a measured duration.
        """
        if name.endswith("_ms"):
            self.observe(name, seconds * 1000.0, MS_BUCKETS)
        else:
            self.observe(name, seconds)
        self.spans.append({
            "name": name,
            "parent": parent,
            "seconds": seconds,
            "ts": time.time() - seconds if ts is None else ts,
            "tags": dict(tags),
        })

    def span_events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        if name is None:
            return list(self.spans)
        return [event for event in self.spans if event["name"] == name]

    # -- event stream (sinks) -----------------------------------------

    def subscribe(self, sink: Any) -> None:
        """Register an event sink: any object with ``emit(kind, **details)``."""
        if sink not in self._sinks:
            self._sinks.append(sink)

    def unsubscribe(self, sink: Any) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def emit(self, kind: str, **details: Any) -> None:
        self.count("events." + kind)
        for sink in self._sinks:
            sink.emit(kind, **details)

    # -- collectors (compatibility with existing counter ledgers) -----

    def add_collector(self, prefix: str,
                      fn: Callable[[], Mapping[str, Any]]) -> None:
        """Poll ``fn()`` at snapshot time, exposing its numeric items as
        ``<prefix>.<key>`` counters.  Re-adding a prefix replaces the
        previous collector, so re-attaching across crash/rebuild cycles
        does not accumulate stale sources.
        """
        self._collectors = [(p, f) for (p, f) in self._collectors if p != prefix]
        self._collectors.append((prefix, fn))

    def counter_value(self, name: str) -> float:
        """Compatibility accessor: registry counters first, then
        collector-backed values addressed as ``<prefix>.<key>``."""
        if name in self.counters:
            return self.counters[name]
        for prefix, fn in self._collectors:
            head = prefix + "."
            if name.startswith(head):
                value = fn().get(name[len(head):])
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    return value
        return 0

    # -- snapshot ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        counters = dict(self.counters)
        info: Dict[str, str] = {}
        for prefix, fn in self._collectors:
            for key, value in fn().items():
                full = f"{prefix}.{key}"
                if isinstance(value, bool):
                    counters[full] = int(value)
                elif isinstance(value, (int, float)):
                    counters[full] = value
                else:
                    info[full] = str(value)
        return {
            "counters": counters,
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.snapshot()
                for name, hist in sorted(self.histograms.items())
            },
            "info": info,
            "span_events": len(self.spans),
        }

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.spans.clear()
        self._span_stack.clear()


class NullRegistry:
    """Null object standing in when no registry is attached.

    Every instrumented component defaults to :data:`NULL_OBS`; hot
    paths guard real work behind ``if obs.enabled``, and the remaining
    unconditional calls (``emit``, ``span``) are no-ops here.
    """

    enabled = False
    _NULL_SPAN = _NullSpan()

    def count(self, name: str, amount: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float,
                boundaries: Iterable[float] = LATENCY_BUCKETS) -> None:
        pass

    def span(self, name: str, **tags: Any) -> _NullSpan:
        return self._NULL_SPAN

    def record_span(self, name: str, seconds: float,
                    ts: Optional[float] = None,
                    parent: Optional[str] = None, **tags: Any) -> None:
        pass

    def span_events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        return []

    def subscribe(self, sink: Any) -> None:
        pass

    def unsubscribe(self, sink: Any) -> None:
        pass

    def emit(self, kind: str, **details: Any) -> None:
        pass

    def add_collector(self, prefix: str,
                      fn: Callable[[], Mapping[str, Any]]) -> None:
        pass

    def counter_value(self, name: str) -> float:
        return 0

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}, "info": {},
                "span_events": 0}


#: The shared null registry — ``enabled`` is False, all methods no-op.
NULL_OBS = NullRegistry()
