"""Request-scoped trace context, propagated across process boundaries.

A *trace* follows one client request through every process it touches:
the client mints a ``trace_id`` and a root span id, attaches them to
the wire frame as a ``"trace"`` field, and every stage downstream —
admission queue, apply, WAL force, replication ship, witness adopt —
opens spans tagged with the same trace id and a fresh span id whose
``parent_span`` points at the stage that caused it.  The span events
land in each process's ordinary :class:`~repro.obs.metrics.MetricsRegistry`
deque and JSONL export; ``python -m repro trace`` stitches the exports
back into one causal tree.

Design constraints, in order:

- **Zero cost when off.**  Nothing here runs unless a real registry is
  attached; ids are only minted for traced requests.
- **Tolerant of old peers.**  ``from_wire`` never raises: absent,
  malformed, or wrong-typed trace fields from old clients (or hand-rolled
  ones) parse to ``None`` and the request proceeds untraced.
- **No clock agreement required.**  Span events carry the local
  wall-clock ``ts`` for *ordering* hints only; durations are measured
  per-process on the monotonic clock, so attribution never subtracts
  timestamps from two machines.
"""

from __future__ import annotations

import uuid
from typing import Any, Dict, Optional

__all__ = [
    "TRACE_FIELD",
    "TraceContext",
    "new_span_id",
    "new_trace_id",
]

#: Wire-frame key carrying trace context: ``{"id": ..., "span": ...}``.
TRACE_FIELD = "trace"


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id, unique across processes."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-char span id, unique across processes."""
    return uuid.uuid4().hex[:16]


class TraceContext:
    """One node of a distributed trace: (trace id, this span's id).

    ``child()`` derives the context for a caused stage; ``to_wire()`` /
    ``from_wire()`` cross process boundaries; ``tags()`` is splatted
    into ``registry.span(...)`` so the span event carries the ids.
    """

    __slots__ = ("trace_id", "span_id", "parent_span")

    def __init__(self, trace_id: str, span_id: Optional[str] = None,
                 parent_span: Optional[str] = None):
        self.trace_id = trace_id
        self.span_id = span_id if span_id is not None else new_span_id()
        self.parent_span = parent_span

    @classmethod
    def mint(cls) -> "TraceContext":
        """Start a new trace (the client-side root)."""
        return cls(new_trace_id())

    def child(self) -> "TraceContext":
        """Context for a stage caused by this one."""
        return TraceContext(self.trace_id, new_span_id(), self.span_id)

    def tags(self) -> Dict[str, str]:
        """Span tags that make the event reconstructable into a tree."""
        tags = {"trace": self.trace_id, "span": self.span_id}
        if self.parent_span:
            tags["parent_span"] = self.parent_span
        return tags

    def to_wire(self) -> Dict[str, str]:
        """The ``"trace"`` field value for an outgoing frame."""
        return {"id": self.trace_id, "span": self.span_id}

    @staticmethod
    def from_wire(frame: Any) -> Optional["TraceContext"]:
        """Tolerantly parse the trace context out of a decoded frame.

        Accepts the frame dict itself (looks up :data:`TRACE_FIELD`) or
        the field value directly.  Anything that is not a dict with
        non-empty string ``id``/``span`` values parses to ``None`` —
        old clients and malformed senders must never break serving.
        """
        value = frame
        if isinstance(frame, dict) and TRACE_FIELD in frame:
            value = frame.get(TRACE_FIELD)
        if not isinstance(value, dict):
            return None
        trace_id = value.get("id")
        span_id = value.get("span")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        if not isinstance(span_id, str) or not span_id:
            return None
        # The wire span is the *remote parent*: local stages derived
        # from it become its children.
        return TraceContext(trace_id, span_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceContext(trace_id={self.trace_id!r}, "
                f"span_id={self.span_id!r}, parent_span={self.parent_span!r})")
