"""Crash flight recorder: a bounded ring of recent structured events.

Post-mortems of a killed daemon used to be archaeology — the metrics
snapshot dies with the process and the WAL records *what* was applied,
not *what the daemon was doing*.  The flight recorder keeps the last N
structured events (health transitions, watchdog restarts, epoch
changes, fault points, shard kills) in a lock-cheap in-memory ring and
persists them two ways:

- **continuous append** — every event is written and flushed to
  ``flightrec.jsonl`` as it happens, so even a ``SIGKILL`` leaves a
  parseable file whose last lines are the daemon's final moments (a
  torn final line is tolerated by :func:`load_flightrec`);
- **atomic dump** — on FAILED, SIGTERM drain, or on demand via the
  ``/debug/flightrec`` endpoint, the ring is rewritten to the same
  path via ``os.replace`` so the file is exactly the ring, bounded
  and ordered, with a ``flightrec.dump`` trailer naming the reason.

The recorder is an ordinary :class:`~repro.obs.metrics.MetricsRegistry`
event sink (``emit(kind, **details)``), so subscribing it taps the
event stream every instrumented component already produces; it also
watches for ``health.transition`` events into ``failed`` and dumps
itself — the daemon does not need to be alive enough to ask.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = [
    "FlightRecorder",
    "load_flightrec",
]

#: Rewrite the live file once the append-only tail grows past this many
#: lines beyond the ring capacity, so the on-disk file stays bounded
#: even between explicit dumps.
_COMPACT_SLACK = 4


class FlightRecorder:
    """Bounded event ring with crash-surviving JSONL persistence."""

    def __init__(self, path: Optional[str] = None, capacity: int = 2048):
        self.path = path
        self.capacity = capacity
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._handle = None
        self._appended = 0
        self._closed = False
        if path is not None:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            self._repair_torn_tail(path)
            self._handle = open(path, "a", encoding="utf-8")

    @staticmethod
    def _repair_torn_tail(path: str) -> None:
        """Drop a torn final line left by a previous SIGKILL'd process.

        Without this, the first append of a restarted daemon would fuse
        onto the partial line, turning an expected torn *tail* into a
        malformed *interior* line that :func:`load_flightrec` rejects.
        """
        try:
            if not os.path.exists(path) or os.path.getsize(path) == 0:
                return
            with open(path, "rb") as existing:
                data = existing.read()
            if data.endswith(b"\n"):
                return
            keep = data[: data.rfind(b"\n") + 1] if b"\n" in data else b""
            tmp = path + ".tmp"
            with open(tmp, "wb") as handle:
                handle.write(keep)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            return

    # -- sink interface ------------------------------------------------

    def emit(self, kind: str, **details: Any) -> None:
        """Registry-sink entry point: record the event, and self-dump
        when the system transitions into FAILED."""
        self.record(kind, details)
        if kind == "health.transition" and details.get("to") == "failed":
            self.dump("failed")

    # -- recording -----------------------------------------------------

    def record(self, kind: str, details: Optional[Dict[str, Any]] = None) -> None:
        event = {"ts": time.time(), "kind": kind}
        if details:
            for key, value in details.items():
                if isinstance(value, (str, int, float, bool)) or value is None:
                    event[key] = value
                else:
                    event[key] = str(value)
        with self._lock:
            self._ring.append(event)
            if self._handle is None or self._closed:
                return
            try:
                json.dump(event, self._handle, sort_keys=True)
                self._handle.write("\n")
                self._handle.flush()
                self._appended += 1
            except (OSError, ValueError):
                return
        if self._appended > self.capacity * _COMPACT_SLACK:
            self.dump("compact")

    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._ring)

    # -- persistence ---------------------------------------------------

    def dump(self, reason: str) -> Optional[str]:
        """Atomically rewrite the file to exactly the current ring.

        Returns the path written, or ``None`` when the recorder has no
        backing path.  The live append handle is reopened afterwards so
        recording continues seamlessly.
        """
        if self.path is None:
            return None
        trailer = {"ts": time.time(), "kind": "flightrec.dump",
                   "reason": reason}
        with self._lock:
            if self._closed:
                return None
            events = list(self._ring)
            self._ring.append(trailer)
            tmp = self.path + ".tmp"
            try:
                with open(tmp, "w", encoding="utf-8") as handle:
                    for event in events + [trailer]:
                        json.dump(event, handle, sort_keys=True)
                        handle.write("\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                if self._handle is not None:
                    self._handle.close()
                os.replace(tmp, self.path)
                self._handle = open(self.path, "a", encoding="utf-8")
                self._appended = 0
            except OSError:
                return None
        return self.path

    def close(self, reason: str = "close") -> None:
        """Final dump and release the file handle."""
        self.dump(reason)
        with self._lock:
            self._closed = True
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None


def load_flightrec(path: str) -> List[Dict[str, Any]]:
    """Parse a flight-recorder file, tolerating a torn final line.

    A SIGKILL can land mid-write; every complete line is returned and a
    trailing partial line is ignored.  A malformed *interior* line
    raises — that is corruption, not a torn tail.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except ValueError:
            remainder = [l for l in lines[index + 1:] if l.strip()]
            if remainder:
                raise ValueError(
                    f"{path}: malformed interior line {index + 1}"
                )
            break  # torn tail from an abrupt kill — expected
    return events
