"""HTTP scrape endpoint: ``/metrics`` (Prometheus text) + ``/healthz``.

PR 5 left the Prometheus text renderer one HTTP listener short of
scrapeable; this module is that listener.  It is deliberately tiny — a
:class:`ThreadingHTTPServer` with two routes — and completely decoupled
from the serving daemon: it takes *providers* (zero-argument callables)
so it can serve any registry/health source without holding references
into the kernel:

* ``GET /metrics`` — ``render_prometheus`` over the provided registry
  (or snapshot dict), ``text/plain; version=0.0.4``;
* ``GET /healthz`` — **liveness**: JSON ``{"health": ..., ...}`` from
  the health provider.  The serving daemon answers 200 for any state
  the process can work its own way out of (HEALTHY, RECOVERING,
  DEGRADED) and 503 only when an operator is required (FAILED) — a
  restart-on-liveness orchestrator should not kill a daemon that is
  mid-ladder;
* ``GET /healthz?ready=1`` — **readiness**: the readiness provider's
  verdict, 503 while the server should not receive traffic (still
  RECOVERING, draining, a replication witness not yet caught up to the
  primary's watermark).  Falls back to the health provider when no
  readiness provider was given, so bare deployments keep the old
  one-endpoint behavior;
* ``GET /debug/flightrec`` — the flight recorder's in-memory event
  ring as JSON (``?dump=1`` additionally forces an atomic rewrite of
  ``flightrec.jsonl`` on disk).  404 when no recorder is wired.

Scrapes are read-only and run on their own threads; the providers must
therefore be cheap and safe to call concurrently with the serving loop
(registry snapshots and health-attribute reads both are).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.obs.export import render_prometheus

__all__ = ["ObsHTTPServer"]

#: Signature of the health/readiness providers.
_Provider = Callable[[], Tuple[int, Dict[str, Any]]]


class _Handler(BaseHTTPRequestHandler):
    # Providers are attached to the *server* instance by ObsHTTPServer.
    server: "_Server"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parts = urlsplit(self.path)
        if parts.path == "/metrics":
            self._send_metrics()
        elif parts.path == "/healthz":
            query = parse_qs(parts.query)
            want_ready = query.get("ready", ["0"])[-1] not in ("", "0")
            self._send_health(ready=want_ready)
        elif parts.path == "/debug/flightrec":
            query = parse_qs(parts.query)
            dump = query.get("dump", ["0"])[-1] not in ("", "0")
            self._send_flightrec(dump=dump)
        else:
            self._send(404, "text/plain; charset=utf-8", b"not found\n")

    def _send_metrics(self) -> None:
        source = self.server.metrics_provider()
        if source is None:
            self._send(
                503, "text/plain; charset=utf-8", b"no metrics registry\n"
            )
            return
        body = render_prometheus(source).encode("utf-8")
        self._send(200, "text/plain; version=0.0.4; charset=utf-8", body)

    def _send_flightrec(self, dump: bool = False) -> None:
        recorder = self.server.flightrec_provider()
        if recorder is None:
            self._send(
                404, "text/plain; charset=utf-8", b"no flight recorder\n"
            )
            return
        dumped = recorder.dump("endpoint") if dump else None
        payload = {"events": recorder.events(), "dumped": dumped}
        body = (json.dumps(payload) + "\n").encode("utf-8")
        self._send(200, "application/json", body)

    def _send_health(self, ready: bool = False) -> None:
        provider = self.server.health_provider
        if ready and self.server.ready_provider is not None:
            provider = self.server.ready_provider
        status, payload = provider()
        body = (json.dumps(payload) + "\n").encode("utf-8")
        self._send(status, "application/json", body)

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args: Any) -> None:  # noqa: D102
        pass  # scrapes are high-frequency; stderr chatter helps nobody


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    metrics_provider: Callable[[], Optional[Any]]
    health_provider: _Provider
    ready_provider: Optional[_Provider]
    flightrec_provider: Callable[[], Optional[Any]]


class ObsHTTPServer:
    """Serve ``/metrics`` and ``/healthz`` for one observable system.

    ``metrics_provider`` returns a live registry or snapshot dict (or
    ``None`` when no registry is attached); ``health_provider`` returns
    ``(http_status, json_payload)`` for liveness; ``ready_provider``
    (optional) answers ``/healthz?ready=1`` readiness probes.
    ``start`` binds and spins a daemon thread; ``port`` reports the
    bound port (useful with ``port=0``).
    """

    def __init__(
        self,
        metrics_provider: Callable[[], Optional[Any]],
        health_provider: _Provider,
        host: str = "127.0.0.1",
        port: int = 0,
        ready_provider: Optional[_Provider] = None,
        flightrec_provider: Optional[Callable[[], Optional[Any]]] = None,
    ) -> None:
        self._metrics_provider = metrics_provider
        self._health_provider = health_provider
        self._ready_provider = ready_provider
        self._flightrec_provider = flightrec_provider
        self._host = host
        self._requested_port = port
        self._httpd: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> Optional[int]:
        """The bound port once started (``None`` before)."""
        if self._httpd is None:
            return None
        return self._httpd.server_address[1]

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        if self._httpd is not None:
            return self.port  # type: ignore[return-value]
        httpd = _Server((self._host, self._requested_port), _Handler)
        httpd.metrics_provider = self._metrics_provider
        httpd.health_provider = self._health_provider
        httpd.ready_provider = self._ready_provider
        httpd.flightrec_provider = (
            self._flightrec_provider
            if self._flightrec_provider is not None
            else lambda: None
        )
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-obs-http",
            daemon=True,
        )
        self._thread.start()
        return self.port  # type: ignore[return-value]

    def stop(self) -> None:
        """Shut the listener down and join its thread."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None
