"""Exporters for :class:`~repro.obs.metrics.MetricsRegistry`.

Two formats:

- :func:`render_prometheus` — text exposition format (``name_total``
  counters, ``name_bucket{le="..."}`` cumulative histogram series with
  ``_sum``/``_count``), suitable for eyeballing or scraping.
- :func:`dump_jsonl` / :func:`load_jsonl` — one JSON object per line:
  a ``meta`` header, one ``span`` line per completed span event, and a
  final ``snapshot`` line.  ``load_jsonl(dump_jsonl(r, p))`` returns a
  snapshot whose counters equal ``r.snapshot()["counters"]``.

Both accept either a live registry or a snapshot dict, so
``python -m repro metrics`` can re-render a saved JSONL artifact.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Union

__all__ = ["dump_jsonl", "load_jsonl", "render_prometheus", "sanitize_metric_name"]

#: Format version stamped into the JSONL ``meta`` line.
JSONL_FORMAT = 1

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus grammar."""
    clean = _NAME_RE.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


def _as_snapshot(source: Union[Mapping[str, Any], Any]) -> Dict[str, Any]:
    if isinstance(source, Mapping):
        return dict(source)
    return source.snapshot()


def _fmt(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(source: Union[Mapping[str, Any], Any],
                      prefix: str = "repro") -> str:
    """Render a registry (or snapshot dict) as Prometheus text format."""
    snap = _as_snapshot(source)
    lines: List[str] = []
    for name, value in sorted(snap.get("counters", {}).items()):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_fmt(value)}")
    for name, value in sorted(snap.get("gauges", {}).items()):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")
    for name, hist in sorted(snap.get("histograms", {}).items()):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        boundaries = hist.get("boundaries", [])
        buckets = hist.get("buckets", [])
        for boundary, bucket in zip(boundaries, buckets):
            cumulative += bucket
            lines.append(f'{metric}_bucket{{le="{boundary:g}"}} {cumulative}')
        cumulative += buckets[len(boundaries)] if len(buckets) > len(boundaries) else 0
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {hist.get('sum', 0.0)!r}")
        lines.append(f"{metric}_count {hist.get('count', 0)}")
    return "\n".join(lines) + "\n"


def dump_jsonl(source: Union[Mapping[str, Any], Any], path: str) -> str:
    """Write span events + a final snapshot as JSONL.  Returns ``path``.

    ``source`` is a live registry (span events come from its bounded
    deque) or a snapshot dict (no span lines).
    """
    if isinstance(source, Mapping):
        spans: List[Dict[str, Any]] = []
        snap = dict(source)
    else:
        spans = source.span_events()
        snap = source.snapshot()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"type": "meta", "format": JSONL_FORMAT}) + "\n")
        for event in spans:
            line = {"type": "span"}
            line.update(event)
            handle.write(json.dumps(line, default=str) + "\n")
        handle.write(json.dumps({"type": "snapshot", "data": snap}, default=str) + "\n")
    return path


def load_jsonl(path: str) -> Dict[str, Any]:
    """Parse a :func:`dump_jsonl` artifact.

    Returns ``{"meta": {...}, "spans": [...], "snapshot": {...}}``;
    unknown line types are ignored so the format can grow.
    """
    meta: Dict[str, Any] = {}
    spans: List[Dict[str, Any]] = []
    snapshot: Dict[str, Any] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            line = json.loads(raw)
            kind = line.get("type")
            if kind == "meta":
                meta = {k: v for k, v in line.items() if k != "type"}
            elif kind == "span":
                spans.append({k: v for k, v in line.items() if k != "type"})
            elif kind == "snapshot":
                snapshot = line.get("data", {})
    return {"meta": meta, "spans": spans, "snapshot": snapshot}
