"""Reconstruct distributed trace trees from exported span JSONL.

Each process in a traced request's path — client, primary, shard
coordinator, witness — exports its span events through
:func:`~repro.obs.export.dump_jsonl` independently.  This module
stitches those files back together: spans sharing a ``trace`` tag are
grouped, parent links are resolved through the ``span``/``parent_span``
tags (which cross process boundaries, unlike the registry-local
``parent`` name), and the result is rendered as an indented causal
tree with per-stage latency attribution.

``python -m repro trace`` is the CLI front-end; CI's trace-smoke step
uses ``--expect`` to assert a live run produced at least one complete
client→force→witness-ack tree.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs.export import load_jsonl

__all__ = [
    "TraceNode",
    "build_trace",
    "collect_spans",
    "list_traces",
    "render_tree",
]


class TraceNode:
    """One span in a reconstructed trace tree."""

    __slots__ = ("name", "span_id", "parent_span", "seconds", "ts",
                 "tags", "source", "children")

    def __init__(self, event: Dict[str, Any], source: str):
        tags = event.get("tags") or {}
        self.name = str(event.get("name", "?"))
        self.span_id = tags.get("span")
        self.parent_span = tags.get("parent_span")
        self.seconds = float(event.get("seconds", 0.0) or 0.0)
        self.ts = float(event.get("ts", 0.0) or 0.0)
        self.tags = {k: v for k, v in tags.items()
                     if k not in ("trace", "span", "parent_span")}
        self.source = source
        self.children: List["TraceNode"] = []

    @property
    def ms(self) -> float:
        return self.seconds * 1000.0

    def self_ms(self) -> float:
        """Duration not attributed to any child span (clamped at 0)."""
        return max(0.0, self.ms - sum(child.ms for child in self.children))

    def walk(self) -> List["TraceNode"]:
        nodes = [self]
        for child in self.children:
            nodes.extend(child.walk())
        return nodes


def collect_spans(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """Load span events from JSONL exports, tagging each with its file.

    Only spans carrying a ``trace`` tag participate in reconstruction;
    untraced spans (internal phases) are dropped here.
    """
    collected: List[Dict[str, Any]] = []
    for path in paths:
        doc = load_jsonl(path)
        for event in doc["spans"]:
            tags = event.get("tags") or {}
            if isinstance(tags, dict) and tags.get("trace"):
                event = dict(event)
                event["_source"] = path
                collected.append(event)
    return collected


def list_traces(spans: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Summaries of every trace id present, newest first."""
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    for event in spans:
        by_trace.setdefault(event["tags"]["trace"], []).append(event)
    summaries = []
    for trace_id, events in by_trace.items():
        summaries.append({
            "trace": trace_id,
            "spans": len(events),
            "ts": min(float(e.get("ts", 0.0) or 0.0) for e in events),
            "stages": sorted({str(e.get("name")) for e in events}),
        })
    summaries.sort(key=lambda s: s["ts"], reverse=True)
    return summaries


def build_trace(spans: Sequence[Dict[str, Any]],
                trace_id: str) -> List[TraceNode]:
    """Build the causal tree(s) for one trace id.

    Returns the list of roots: spans whose ``parent_span`` is absent or
    refers to a span not present in any loaded file (a missing export
    produces a forest rather than an error — partial evidence is still
    evidence in a post-mortem).
    """
    nodes: List[TraceNode] = []
    by_span: Dict[str, TraceNode] = {}
    for event in spans:
        if event["tags"].get("trace") != trace_id:
            continue
        node = TraceNode(event, event.get("_source", "?"))
        nodes.append(node)
        if node.span_id:
            by_span[node.span_id] = node
    roots: List[TraceNode] = []
    for node in nodes:
        parent = by_span.get(node.parent_span) if node.parent_span else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes:
        node.children.sort(key=lambda child: child.ts)
    roots.sort(key=lambda root: root.ts)
    return roots


def render_tree(roots: Sequence[TraceNode], trace_id: str) -> str:
    """ASCII causal tree with per-stage latency attribution."""
    lines = [f"trace {trace_id}"]
    totals: Dict[str, float] = {}

    def visit(node: TraceNode, depth: int) -> None:
        pad = "  " * depth
        detail = "".join(
            f" {k}={v}" for k, v in sorted(node.tags.items())
            if k not in ("outcome",)
        )
        outcome = node.tags.get("outcome")
        flag = f" [{outcome}]" if outcome and outcome != "ok" else ""
        lines.append(
            f"{pad}{node.name}  {node.ms:.3f} ms"
            f" (self {node.self_ms():.3f} ms){flag}{detail}"
            f"  <{node.source}>"
        )
        totals[node.name] = totals.get(node.name, 0.0) + node.self_ms()
        for child in node.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 1)
    total_ms = sum(root.ms for root in roots)
    lines.append("")
    lines.append("stage attribution (self time):")
    for name, self_ms in sorted(totals.items(), key=lambda kv: -kv[1]):
        share = (self_ms / total_ms * 100.0) if total_ms > 0 else 0.0
        lines.append(f"  {name:<28} {self_ms:10.3f} ms  {share:5.1f}%")
    lines.append(f"  {'total (root spans)':<28} {total_ms:10.3f} ms")
    return "\n".join(lines)


def trace_has_stages(roots: Sequence[TraceNode],
                     stages: Sequence[str]) -> bool:
    """True when the forest contains every expected stage name and is
    rooted in a single span (a *complete* tree, per the CI bar)."""
    if len(roots) != 1:
        return False
    names = {node.name for node in roots[0].walk()}
    return all(any(stage in name for name in names) for stage in stages)


def main(paths: Sequence[str], trace_id: Optional[str] = None,
         list_only: bool = False,
         expect: Optional[Sequence[str]] = None) -> int:
    """CLI body for ``python -m repro trace``.  Returns an exit code."""
    spans = collect_spans(paths)
    if not spans:
        print("no traced spans found in the given files")
        return 1
    summaries = list_traces(spans)
    if list_only:
        for summary in summaries:
            print(f"{summary['trace']}  {summary['spans']:4d} spans  "
                  f"stages: {', '.join(summary['stages'])}")
        return 0
    wanted = [trace_id] if trace_id else [s["trace"] for s in summaries]
    matched = False
    for tid in wanted:
        roots = build_trace(spans, tid)
        if not roots:
            continue
        print(render_tree(roots, tid))
        print()
        if expect and trace_has_stages(roots, expect):
            matched = True
    if expect:
        if matched:
            print(f"OK: found a complete trace containing: {', '.join(expect)}")
            return 0
        print(f"FAIL: no complete trace contains all of: {', '.join(expect)}")
        return 1
    return 0
