"""Multiple applications exchanging data through recoverable files:
the producer/consumer chain [7] motivates, end to end with crashes.

Producer reads a source file, transforms it, writes an intermediate
file; consumer reads the intermediate, transforms it, writes the final
output.  All reads and writes are logical, so the exchange costs only
identifiers on the log, and the write graph serializes the flushes
across *both* applications' state objects.
"""

import pytest

from repro import RecoverableSystem, verify_recovered
from repro.domains import AppLoggingMode, ApplicationRuntime, RecoverableFileSystem


@pytest.fixture
def chain():
    system = RecoverableSystem()
    fs = RecoverableFileSystem(system)
    producer = ApplicationRuntime(system, "app:producer", program="upper")
    consumer = ApplicationRuntime(system, "app:consumer", program="reverse")
    return system, fs, producer, consumer


def _run_chain(fs, producer, consumer, tag: str, data: bytes) -> None:
    fs.write_file(f"src-{tag}", data)
    producer.run_pipeline(
        fs.object_id(f"src-{tag}"), fs.object_id(f"mid-{tag}")
    )
    consumer.run_pipeline(
        fs.object_id(f"mid-{tag}"), fs.object_id(f"out-{tag}")
    )


class TestChain:
    def test_data_flows_through(self, chain):
        system, fs, producer, consumer = chain
        _run_chain(fs, producer, consumer, "a", b"hello")
        assert fs.read_file("mid-a") == b"HELLO"
        assert fs.read_file("out-a") == b"OLLEH"

    def test_logical_exchange_logs_no_values(self, chain):
        system, fs, producer, consumer = chain
        fs.write_file("src-b", b"x" * 8192)
        before = system.stats.log_value_bytes
        producer.run_pipeline(fs.object_id("src-b"), fs.object_id("mid-b"))
        consumer.run_pipeline(fs.object_id("mid-b"), fs.object_id("out-b"))
        assert system.stats.log_value_bytes == before

    def test_flush_order_spans_applications(self, chain):
        """The consumer read the producer's intermediate file: the
        write graph must order the consumer's state flush relative to
        later overwrites of that file, across application boundaries."""
        system, fs, producer, consumer = chain
        _run_chain(fs, producer, consumer, "c", b"data")
        # Overwrite the intermediate (blind) — the consumer's read of
        # the old value makes its state flush-ordered before this.
        fs.write_file("mid-c", b"NEWVALUE")
        graph = system.cache.engine
        assert graph.is_acyclic()
        # Drain fully and verify crash consistency at every step.
        while system.purge():
            pass
        system.crash()
        system.recover()
        verify_recovered(system)

    def test_crash_between_producer_and_consumer(self, chain):
        system, fs, producer, consumer = chain
        fs.write_file("src-d", b"payload")
        producer.run_pipeline(fs.object_id("src-d"), fs.object_id("mid-d"))
        system.log.force()
        consumer.read(fs.object_id("mid-d"))  # consumer started...
        system.crash()  # ...but its read never became durable
        system.recover()
        verify_recovered(system)
        # Producer's work survives; consumer restarts cleanly.
        fs2 = RecoverableFileSystem(system)
        assert fs2.read_file("mid-d") == b"PAYLOAD"
        consumer2 = ApplicationRuntime(
            system, "app:consumer", program="reverse"
        )
        assert consumer2.step == 0
        consumer2.run_pipeline(
            fs2.object_id("mid-d"), fs2.object_id("out-d")
        )
        assert fs2.read_file("out-d") == b"DAOLYAP"

    def test_mixed_modes_interoperate(self):
        """A logical producer can feed an ICDE-98-style consumer: the
        schemes differ only in what they log, not in the values."""
        system = RecoverableSystem()
        fs = RecoverableFileSystem(system)
        producer = ApplicationRuntime(
            system, "app:p", "upper", AppLoggingMode.LOGICAL
        )
        consumer = ApplicationRuntime(
            system, "app:c", "reverse", AppLoggingMode.ICDE98
        )
        _run_chain(fs, producer, consumer, "e", b"abc")
        assert fs.read_file("out-e") == b"CBA"
        system.flush_all()
        system.crash()
        system.recover()
        verify_recovered(system)
