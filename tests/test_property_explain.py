"""Property-based tests of the explainability theory (Section 2).

Checks Theorem 1's install step and the consistency of exposed-object
computation over random histories with real (executable) values.
"""

from tests.conftest import examples
from hypothesis import given, settings, strategies as st

from repro.core.explain import (
    explains,
    exposed_objects,
    extend,
    is_prefix_set,
)
from repro.core.functions import default_registry
from repro.core.history import History
from repro.core.installation_graph import InstallationGraph
from repro.core.operation import Operation, OpKind, execute_transform
from repro.core.oracle import Oracle
from repro.workloads import LogicalWorkload, LogicalWorkloadConfig
from repro.workloads.generator import register_workload_functions


def _registry():
    registry = default_registry()
    register_workload_functions(registry)
    return registry


def _history(seed: int, count: int) -> History:
    workload = LogicalWorkload(
        LogicalWorkloadConfig(
            objects=4, operations=count, object_size=16, p_delete=0.1
        ),
        seed=seed,
    )
    history = History()
    for op in workload.operations():
        history.append(op)
    return history


class TestTheorem1:
    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=examples(60), deadline=None)
    def test_installing_minimal_ops_preserves_explanation(self, seed):
        """Starting from I = {} (which explains the empty state),
        repeatedly install a minimal uninstalled operation; after each
        step extend(I, O) must explain the new state."""
        registry = _registry()
        oracle = Oracle(registry)
        history = _history(seed, 14)
        graph = InstallationGraph(list(history))
        installed = set()
        state = {}
        assert explains(history, installed, state, oracle)
        while len(installed) < len(history):
            minimal = graph.minimal_operations(excluding=installed)
            assert minimal, "acyclic installation graph must have minima"
            # Theorem 1 allows ANY minimal op; take the earliest for
            # determinism (conflict order is one valid choice).
            op = minimal[0]
            reads = {obj: state.get(obj) for obj in op.reads}
            state.update(execute_transform(op, reads, registry))
            installed = extend(installed, op)
            assert is_prefix_set(installed, graph)
            assert explains(history, installed, state, oracle)

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=examples(60), deadline=None)
    def test_exposed_objects_shrink_as_blind_writes_become_minimal(
        self, seed
    ):
        """Unexposed objects are exactly those whose minimal uninstalled
        accessor writes blindly; check the definition's two cases by
        direct recomputation."""
        history = _history(seed, 12)
        graph = InstallationGraph(list(history))
        installed = set()
        for op in graph.installation_order():
            exposed = exposed_objects(history, installed)
            objects = set()
            for any_op in history:
                objects |= any_op.reads | any_op.writes
            for obj in objects:
                accessors = [
                    o
                    for o in history.accessors_in_order(obj)
                    if o not in installed
                ]
                if not accessors:
                    assert obj in exposed
                elif obj in accessors[0].reads:
                    assert obj in exposed
                else:
                    assert obj not in exposed
            installed = installed | {op}


class TestFullInstallationAlwaysExplains:
    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=examples(40), deadline=None)
    def test_final_state_explained_by_full_history(self, seed):
        registry = _registry()
        oracle = Oracle(registry)
        history = _history(seed, 16)
        final = oracle.replay(list(history))
        assert explains(history, set(history), final, oracle)
