"""Tests for the recovery manager (repro.core.recovery): analysis pass,
redo pass, trial execution with voiding, flush-transaction repair."""

import pytest

from repro.core.functions import default_registry
from repro.core.operation import Operation, OpKind
from repro.core.recovery import RecoveryManager
from repro.core.redo import GeneralizedRedoTest, VsiRedoTest
from repro.storage import IOStats, StableStore
from repro.storage.stable_store import StoredVersion
from repro.wal.log_manager import LogManager
from repro.wal.records import (
    CheckpointRecord,
    FlushRecord,
    InstallationRecord,
)


def _physical(obj, data):
    return Operation(
        f"wp({obj})",
        OpKind.PHYSICAL,
        reads=set(),
        writes={obj},
        payload={obj: data},
    )


def _copy(src, dst):
    return Operation(
        f"cp({src},{dst})",
        OpKind.LOGICAL,
        reads={src},
        writes={dst},
        fn="copy",
        params=(src, dst),
    )


def _manager(log, store, test=None):
    return RecoveryManager(
        log, store, default_registry(), test or GeneralizedRedoTest(), IOStats()
    )


class TestAnalysisPass:
    def test_empty_log(self):
        log, store = LogManager(), StableStore()
        outcome = _manager(log, store).run()
        assert outcome.report.ops_redone == 0
        assert outcome.volatile == {}

    def test_operation_records_dirty_objects(self):
        log, store = LogManager(), StableStore()
        op = _physical("x", b"v")
        log.append_operation(op)
        log.force()
        outcome = _manager(log, store).run()
        assert outcome.dirty.rsi_of("x") == op.lsi
        assert outcome.report.ops_redone == 1
        assert outcome.volatile["x"] == (b"v", op.lsi)

    def test_checkpoint_seeds_dirty_table(self):
        log, store = LogManager(), StableStore()
        op = _physical("x", b"v")
        log.append_operation(op)
        log.append(CheckpointRecord({"x": op.lsi}))
        log.force()
        outcome = _manager(log, store).run()
        assert outcome.report.checkpoint_lsi > 0
        assert outcome.report.ops_redone == 1

    def test_flush_record_cleans_object(self):
        log, store = LogManager(), StableStore()
        op = _physical("x", b"v")
        log.append_operation(op)
        store.write("x", b"v", op.lsi)  # the flush that was logged
        log.append(FlushRecord("x", op.lsi))
        log.force()
        outcome = _manager(log, store).run()
        assert not outcome.dirty.is_dirty("x")
        assert outcome.report.ops_redone == 0

    def test_installation_record_advances_rsi(self):
        log, store = LogManager(), StableStore()
        first = _physical("x", b"old")
        blind = _physical("x", b"new")
        log.append_operation(first)
        log.append_operation(blind)
        # first was installed without flushing x (rSI -> blind's lSI).
        log.append(
            InstallationRecord(
                flushed={}, unexposed={"x": blind.lsi},
                installed_lsis=(first.lsi,),
            )
        )
        log.force()
        outcome = _manager(log, store).run()
        # Only the blind write is redone; 'first' is bypassed without
        # even being scanned: the advanced rSI moved the redo scan
        # start point past its record.
        assert outcome.report.ops_redone == 1
        assert outcome.report.redo_start_lsi == blind.lsi
        assert outcome.report.ops_considered == 1
        assert outcome.volatile["x"] == (b"new", blind.lsi)

    def test_installation_record_with_none_removes(self):
        log, store = LogManager(), StableStore()
        op = _physical("x", b"v")
        log.append_operation(op)
        store.write("x", b"v", op.lsi)
        log.append(
            InstallationRecord(
                flushed={"x": None}, unexposed={}, installed_lsis=(op.lsi,)
            )
        )
        log.force()
        outcome = _manager(log, store).run()
        assert outcome.report.ops_redone == 0


class TestFlushTxnRepair:
    def test_committed_txn_reapplied(self):
        log, store = LogManager(), StableStore()
        # A flush transaction committed but its in-place writes were
        # torn: only 'a' landed.
        log.append_flush_transaction(
            {
                "a": StoredVersion(b"A", 5),
                "b": StoredVersion(b"B", 6),
            }
        )
        log.force()
        store.write("a", b"A", 5)  # 'b' never made it
        outcome = _manager(log, store).run()
        assert outcome.report.flush_txns_reapplied == 1
        assert store.peek("b").value == b"B"

    def test_uncommitted_txn_ignored(self):
        from repro.wal.records import FlushTxnValuesRecord

        log, store = LogManager(), StableStore()
        log.append(FlushTxnValuesRecord(1, {"a": (b"A", 5)}))
        # no commit record
        log.force()
        outcome = _manager(log, store).run()
        assert outcome.report.flush_txns_reapplied == 0
        assert not store.contains("a")


class TestRedoPass:
    def test_repeat_history_order(self):
        log, store = LogManager(), StableStore()
        init = _physical("x", b"data")
        cp = _copy("x", "y")
        blind = _physical("x", b"data2")
        for op in (init, cp, blind):
            log.append_operation(op)
        log.force()
        outcome = _manager(log, store).run()
        assert outcome.volatile["y"][0] == b"data"  # copied pre-blind value
        assert outcome.volatile["x"][0] == b"data2"
        assert [op.name for op in outcome.redone_ops] == [
            init.name,
            cp.name,
            blind.name,
        ]

    def test_vsi_skip_counts(self):
        log, store = LogManager(), StableStore()
        op = _physical("x", b"v")
        log.append_operation(op)
        log.force()
        store.write("x", b"v", op.lsi)  # already flushed
        outcome = _manager(log, store, VsiRedoTest()).run()
        assert outcome.report.ops_skipped_installed == 1
        assert outcome.report.ops_redone == 0

    def test_stable_ops_include_pre_checkpoint(self):
        log, store = LogManager(), StableStore()
        first = _physical("x", b"1")
        log.append_operation(first)
        log.append(CheckpointRecord({"x": first.lsi}))
        second = _physical("y", b"2")
        log.append_operation(second)
        log.force()
        outcome = _manager(log, store).run()
        assert [op.name for op in outcome.stable_ops] == [
            first.name,
            second.name,
        ]


class TestTrialExecutionVoiding:
    def test_exception_voids(self):
        log, store = LogManager(), StableStore()
        registry = default_registry()
        registry.register(
            "explode", lambda reads, o: (_ for _ in ()).throw(ValueError())
        )
        op = Operation(
            "boom",
            OpKind.LOGICAL,
            reads=set(),
            writes={"x"},
            fn="explode",
            params=("x",),
        )
        log.append_operation(op)
        log.force()
        manager = RecoveryManager(
            log, store, registry, GeneralizedRedoTest(), IOStats()
        )
        outcome = manager.run()
        assert outcome.report.ops_voided == 1
        assert "x" not in outcome.volatile

    def test_unknown_function_fails_loudly(self):
        """An unregistered transform is a deployment error, not an
        inapplicable-state symptom — recovery must not void it."""
        from repro.common.errors import UnknownFunctionError

        log, store = LogManager(), StableStore()
        registry = default_registry()
        registry.register("will_vanish", lambda reads, o: {o: b"v"})
        op = Operation(
            "orphan",
            OpKind.LOGICAL,
            reads=set(),
            writes={"x"},
            fn="will_vanish",
            params=("x",),
        )
        log.append_operation(op)
        log.force()
        # Recovery runs with a registry missing the transform.
        manager = RecoveryManager(
            log, store, default_registry(), GeneralizedRedoTest(), IOStats()
        )
        with pytest.raises(UnknownFunctionError):
            manager.run()

    def test_writeset_expansion_voids(self):
        log, store = LogManager(), StableStore()
        registry = default_registry()
        registry.register(
            "sprawl", lambda reads, o: {o: b"v", "other": b"w"}
        )
        op = Operation(
            "sprawl",
            OpKind.LOGICAL,
            reads=set(),
            writes={"x"},
            fn="sprawl",
            params=("x",),
        )
        log.append_operation(op)
        log.force()
        manager = RecoveryManager(
            log, store, registry, GeneralizedRedoTest(), IOStats()
        )
        outcome = manager.run()
        assert outcome.report.ops_voided == 1
        assert outcome.volatile == {}
