"""The sharded daemon: routing, per-shard gates, rendezvous, chaos.

Every test runs a real 2-shard (or 3-shard) daemon on an ephemeral
port and talks to it over real sockets.  What these pin down is the
partial-outage contract: responses carry the shard they came from,
admission gates per shard, one killed shard answers UNAVAILABLE with
its index while the others keep acking, and cross-shard applies run
the fence protocol under the rendezvous.
"""

from __future__ import annotations

import hashlib
import json
import urllib.error
import urllib.request

import pytest

from repro.kernel.system import SystemHealth
from repro.serve import (
    BadRequestError,
    DaemonClient,
    RetryPolicy,
    ServerUnavailableError,
)
from repro.serve.sharded import ShardedDaemonConfig, ShardedServeDaemon
from repro.shard import ShardedSystem
from repro.workloads import register_workload_functions

ONE_SHOT = RetryPolicy(attempts=1)


def _daemon(shards: int = 2, **config_kw) -> ShardedServeDaemon:
    sharded = ShardedSystem.build(shards)
    register_workload_functions(sharded.registry)
    config_kw.setdefault("port", 0)
    config_kw.setdefault("http_port", None)
    config_kw.setdefault("max_queue", 8)
    return ShardedServeDaemon(
        sharded, ShardedDaemonConfig(**config_kw)
    ).start()


@pytest.fixture
def served():
    daemon = _daemon()
    try:
        yield daemon
    finally:
        daemon.stop(graceful=False)


@pytest.fixture
def chaotic():
    daemon = _daemon(allow_chaos=True)
    try:
        yield daemon
    finally:
        daemon.stop(graceful=False)


def client_for(daemon, **kw):
    kw.setdefault("policy", RetryPolicy(attempts=1))
    return DaemonClient("127.0.0.1", daemon.port, **kw)


def key_on(daemon, shard: int, tag: str = "k") -> str:
    router = daemon.sharded.router
    probe = 0
    while True:
        key = f"{tag}:{probe}"
        if router.shard_of(key) == shard:
            return key
        probe += 1


class TestRoutingAndLabels:
    def test_put_and_get_carry_the_owning_shard(self, served):
        with client_for(served) as client:
            for shard in range(served.shards):
                key = key_on(served, shard)
                response = client.request("put", obj=key, value="du")
                assert response["shard"] == shard
                response = client.request("get", obj=key)
                assert response["shard"] == shard

    def test_shards_serve_disjoint_logs(self, served):
        with client_for(served) as client:
            a, b = key_on(served, 0, "a"), key_on(served, 1, "b")
            lsi_a = client.put(a, b"va")
            lsi_b = client.put(b, b"vb")
        # Per-shard WALs assign lSIs independently: both streams start
        # at the beginning, so fresh writes land on equal early lSIs.
        assert lsi_a == lsi_b
        for shard, key, value in ((0, a, b"va"), (1, b, b"vb")):
            system = served.sharded.systems[shard]
            assert system.read(key) == value
            assert system.log.is_stable(lsi_a)

    def test_ping_reports_shard_count(self, served):
        with client_for(served) as client:
            response = client.ping()
        assert response["shards"] == 2
        assert response["health"] == "healthy"

    def test_health_is_per_shard(self, served):
        with client_for(served) as client:
            health = client.health()
        assert set(health["shards"]) == {"0", "1"}
        for entry in health["shards"].values():
            assert entry["health"] == "healthy"
            assert entry["killed"] is False
            assert entry["restarts"] == 0
        assert health["draining"] is False


class TestCrossShard:
    def test_cross_apply_runs_fence_protocol(self, served):
        with client_for(served) as client:
            src, dst = key_on(served, 0, "src"), key_on(served, 1, "dst")
            client.put(src, b"seed")
            response = client.apply(
                "wl_derive",
                reads=[src],
                writes=[dst],
                params=[src, dst],
                name="xapply",
            )
            assert response["cross"] is True
            assert sorted(response["shards"]) == [0, 1]
            expected = hashlib.sha256(b"derive" + b"seed").digest()
            value, _vsi = client.get(dst)
            assert value == expected
        audit = served.sharded.fence_audit()
        assert audit.ok and len(audit.complete) == 1

    def test_single_shard_apply_is_not_cross(self, served):
        with client_for(served) as client:
            src = key_on(served, 0, "s")
            dst = key_on(served, 0, "d")
            client.put(src, b"seed")
            response = client.apply(
                "wl_derive",
                reads=[src],
                writes=[dst],
                params=[src, dst],
            )
            assert response.get("cross") is None
            assert response["shard"] == 0
            assert "lsi" in response
        assert not served.sharded.fence_audit().complete

    def test_cross_survives_full_crash(self, served):
        with client_for(served) as client:
            src, dst = key_on(served, 0, "s"), key_on(served, 1, "d")
            client.put(src, b"x")
            response = client.apply(
                "wl_derive", reads=[src], writes=[dst], params=[src, dst]
            )
            expected = response["writes"][dst]
        served.stop(graceful=False)
        served.sharded.crash_all()
        served.sharded.recover_all()
        from repro.serve import protocol

        assert served.sharded.read(dst) == protocol.decode_value(expected)


class TestChaos:
    def test_chaos_disabled_by_default(self, served):
        with client_for(served) as client:
            with pytest.raises(BadRequestError):
                client.request("kill_shard", shard=0)

    def test_bad_shard_index_rejected(self, chaotic):
        with client_for(chaotic) as client:
            with pytest.raises(BadRequestError):
                client.request("kill_shard", shard=7)
            with pytest.raises(BadRequestError):
                client.request("revive_shard", shard=0)  # not killed

    def test_kill_isolates_one_shard(self, chaotic):
        victim, survivor = 1, 0
        with client_for(chaotic) as client:
            vkey = key_on(chaotic, victim, "v")
            skey = key_on(chaotic, survivor, "s")
            client.put(vkey, b"acked-before-kill")
            assert client.request("kill_shard", shard=victim)["ok"]
            # The survivor keeps acking while the victim is down...
            assert client.put(skey, b"still-up") > 0
            # ...and the victim's requests answer UNAVAILABLE with the
            # shard label, so clients back off that shard only.
            with pytest.raises(ServerUnavailableError):
                client.request("get", obj=vkey)
            health = client.health()
            assert health["shards"][str(victim)]["killed"] is True
            assert health["shards"][str(survivor)]["killed"] is False
            # Revive through supervised recovery: the acked write is
            # there (it was forced before the ack).
            assert client.request("revive_shard", shard=victim)["ok"]
            value, _vsi = client.get(vkey)
            assert value == b"acked-before-kill"

    def test_cross_naming_victim_is_unavailable(self, chaotic):
        with client_for(chaotic) as client:
            src, dst = key_on(chaotic, 0, "s"), key_on(chaotic, 1, "d")
            client.put(src, b"x")
            assert client.request("kill_shard", shard=1)["ok"]
            with pytest.raises(ServerUnavailableError):
                client.apply(
                    "wl_derive",
                    reads=[src],
                    writes=[dst],
                    params=[src, dst],
                )
            # The healthy participant was not poisoned by the refusal.
            assert client.put(src, b"y") > 0


class TestShutdown:
    def test_graceful_stop_forces_all_shards(self):
        daemon = _daemon()
        with client_for(daemon) as client:
            keys = [key_on(daemon, shard) for shard in range(2)]
            lsis = [client.put(key, b"v") for key in keys]
        assert daemon.stop(graceful=True) == 0
        for shard, lsi in enumerate(lsis):
            assert daemon.sharded.systems[shard].log.is_stable(lsi)

    def test_stop_is_idempotent(self, served):
        assert served.stop(graceful=True) == 0
        assert served.stop(graceful=True) == 0


class TestObservability:
    def test_healthz_and_shardwise_metrics(self):
        daemon = _daemon(http_port=0, allow_chaos=True)
        try:
            with client_for(daemon) as client:
                client.put(key_on(daemon, 0), b"v")
                url = f"http://127.0.0.1:{daemon.http_port}/healthz"
                with urllib.request.urlopen(url, timeout=5) as resp:
                    body = json.load(resp)
                assert resp.status == 200
                assert body["health"] == "healthy"
                assert body["killed"] == []
                url = f"http://127.0.0.1:{daemon.http_port}/metrics"
                with urllib.request.urlopen(url, timeout=5) as resp:
                    text = resp.read().decode()
                # Daemon-level and shard-prefixed kernel series both
                # appear in the one merged rendering.
                assert "serve_shard_0_acked_writes" in text.replace(".", "_")
                assert "shard0" in text
                # With one shard down: liveness stays 200 (nothing is
                # terminally FAILED) but readiness flips to 503.
                client.request("kill_shard", shard=1)
                url = f"http://127.0.0.1:{daemon.http_port}/healthz"
                with urllib.request.urlopen(url, timeout=5) as resp:
                    body = json.load(resp)
                assert resp.status == 200
                assert 1 in body["killed"]
                url = f"http://127.0.0.1:{daemon.http_port}/healthz?ready=1"
                try:
                    with urllib.request.urlopen(url, timeout=5) as resp:
                        status = resp.status
                        body = json.load(resp)
                except urllib.error.HTTPError as exc:
                    status = exc.code
                    body = json.load(exc)
                assert status == 503
                assert body["ready"] is False
        finally:
            daemon.stop(graceful=False)

    def test_stats_merges_shard_registries(self, served):
        with client_for(served) as client:
            client.put(key_on(served, 0), b"v")
            stats = client.stats()
        counters = stats["counters"]
        assert counters.get("serve.acked_writes", 0) >= 1
        assert counters.get("serve.shard.0.acked_writes", 0) >= 1
        # Kernel series surface under the shard prefix.
        assert any(name.startswith("shard0.") for name in counters)
