"""Torture campaigns swept across storage backends.

The heavyweight per-backend sweeps run in CI (``python -m repro torture
v2 --store ...``); these bounded campaigns pin the harness mechanics:
every registered durable backend must survive forward-phase fuzz and
recovery-phase fuzz through the same ``make_store`` threading the CLI
uses, with the backend's recommended cache configuration."""

from __future__ import annotations

import pytest

from repro.kernel.torture import TortureConfig, TortureHarness
from repro.storage.faults import FuzzRates
from repro.storage.registry import recommended_cache_config

BACKENDS = ["memory", "file", "logstore"]


def _config(backend: str) -> TortureConfig:
    return TortureConfig(
        objects=3,
        operations=10,
        store_backend=backend,
        cache_factory=lambda: recommended_cache_config(backend),
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_forward_fuzz_survives(backend):
    harness = TortureHarness(_config(backend))
    report = harness.fuzz(
        runs=6, seed=0, rates=FuzzRates(transient=0.05, torn=0.03, corrupt=0.03)
    )
    assert report.ok, report.summary() + "".join(
        f"\n  {o.description}: {o.error}" for o in report.failures()
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_recovery_fuzz_converges(backend):
    harness = TortureHarness(_config(backend))
    report = harness.fuzz_recovery(
        runs=4, seed=0, rates=FuzzRates(torn=0.02, corrupt=0.02, crash=0.03)
    )
    assert report.ok, report.summary() + "".join(
        f"\n  {o.description}: {o.error}" for o in report.failures()
    )


@pytest.mark.parametrize("backend", ["file", "logstore"])
def test_durable_backends_have_faultable_device_points(backend):
    """The durable backends must expose *more* numbered I/O than the
    in-memory model (their device writes fire too) — otherwise the
    per-backend sweep silently degenerates to the memory campaign."""
    harness = TortureHarness(_config(backend))
    assert harness.count_points() >= TortureHarness(
        _config("memory")
    ).count_points()


def test_scratch_directories_are_reclaimed(tmp_path, monkeypatch):
    import tempfile

    monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
    harness = TortureHarness(_config("logstore"))
    harness.fuzz(runs=2, seed=0)
    assert list(tmp_path.iterdir()) == []
