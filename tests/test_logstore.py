"""The log-structured stable store (repro.storage.logstore): append-only
segments, index rebuild by scan, batch-frame atomicity, tombstones,
torn-tail repair, maximal widening on damage, and compaction."""

import os
import random

import pytest

from repro.common.identifiers import NULL_SI
from repro.storage import framing
from repro.storage.file_store import FileStableStore
from repro.storage.logstore import LogStructuredStableStore, _segment_name
from repro.storage.stable_store import StoredVersion


@pytest.fixture
def dbdir(tmp_path):
    return str(tmp_path / "db")


def _segments_dir(dbdir):
    return os.path.join(dbdir, "segments")


def _segment_files(dbdir):
    return sorted(
        name
        for name in os.listdir(_segments_dir(dbdir))
        if name.endswith(".seg")
    )


class TestRoundTrip:
    def test_write_read_across_instances(self, dbdir):
        store = LogStructuredStableStore(dbdir)
        store.write("obj:1", b"value", 7)
        again = LogStructuredStableStore(dbdir)
        version = again.peek("obj:1")
        assert (version.value, version.vsi) == (b"value", 7)

    def test_latest_record_wins(self, dbdir):
        store = LogStructuredStableStore(dbdir)
        store.write("x", b"old", 1)
        store.write("x", b"new", 2)
        again = LogStructuredStableStore(dbdir)
        assert again.peek("x").value == b"new"
        assert again.vsi_of("x") == 2

    def test_delete_survives_reopen(self, dbdir):
        store = LogStructuredStableStore(dbdir)
        store.write("x", b"v", 1)
        store.delete("x")
        assert not LogStructuredStableStore(dbdir).contains("x")

    def test_delete_of_unknown_object_appends_nothing(self, dbdir):
        store = LogStructuredStableStore(dbdir)
        before = store.total_bytes()
        store.delete("never-written")
        assert store.total_bytes() == before

    def test_ids_with_special_characters(self, dbdir):
        store = LogStructuredStableStore(dbdir)
        weird = "file:dir/sub file:with spaces%and:colons"
        store.write(weird, b"v", 1)
        assert LogStructuredStableStore(dbdir).peek(weird).value == b"v"


class TestSegments:
    def test_active_segment_rolls_at_threshold(self, dbdir):
        store = LogStructuredStableStore(
            dbdir, segment_bytes=256, auto_compact=False
        )
        for index in range(20):
            store.write(f"obj:{index}", b"x" * 64, index)
        assert store.segment_count() > 1
        assert len(_segment_files(dbdir)) == store.segment_count()

    def test_rebuild_replays_segments_in_id_order(self, dbdir):
        store = LogStructuredStableStore(
            dbdir, segment_bytes=256, auto_compact=False
        )
        for index in range(20):
            store.write("x", f"value-{index}".encode(), index)
        again = LogStructuredStableStore(dbdir, auto_compact=False)
        assert again.peek("x").value == b"value-19"
        assert again.vsi_of("x") == 19


class TestBatchFrames:
    def test_atomic_write_many_is_one_frame(self, dbdir):
        store = LogStructuredStableStore(dbdir)
        before = store.total_bytes()
        versions = {
            f"obj:{i}": StoredVersion(f"v{i}".encode(), i) for i in range(5)
        }
        store.write_many(versions, atomic=True)
        data_len = store.total_bytes() - before
        # One frame: exactly one magic marker in the appended bytes.
        path = os.path.join(_segments_dir(dbdir), _segment_files(dbdir)[-1])
        with open(path, "rb") as handle:
            appended = handle.read()[-data_len:]
        assert appended.count(framing.MAGIC) == 1

    def test_atomic_write_many_survives_reopen(self, dbdir):
        store = LogStructuredStableStore(dbdir)
        versions = {
            f"obj:{i}": StoredVersion(f"v{i}".encode(), 10 + i)
            for i in range(5)
        }
        store.write_many(versions, atomic=True)
        again = LogStructuredStableStore(dbdir)
        for i in range(5):
            assert again.peek(f"obj:{i}").value == f"v{i}".encode()
            assert again.vsi_of(f"obj:{i}") == 10 + i

    def test_non_atomic_write_many_survives_reopen(self, dbdir):
        store = LogStructuredStableStore(dbdir)
        versions = {"a": StoredVersion(b"1", 1), "b": StoredVersion(b"2", 2)}
        store.write_many(versions, atomic=False)
        again = LogStructuredStableStore(dbdir)
        assert again.peek("a").value == b"1"
        assert again.peek("b").value == b"2"


class TestDamage:
    def test_torn_tail_truncated_and_widened(self, dbdir):
        store = LogStructuredStableStore(dbdir)
        store.write("x", b"intact", 3)
        path = os.path.join(_segments_dir(dbdir), _segment_files(dbdir)[-1])
        good_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(framing.frame(("put", "x", b"torn"), 4)[:10])
        again = LogStructuredStableStore(dbdir)
        # The intact prefix survives; the partial frame is gone for good.
        assert again.peek("x").value == b"intact"
        assert os.path.getsize(path) == good_size
        assert again.stats.checksum_failures == 1
        # Damage may have hidden a newer record: widen maximally.
        assert again.media_redo_pending == NULL_SI + 1

    def test_mid_segment_damage_salvages_later_records(self, dbdir):
        store = LogStructuredStableStore(dbdir)
        store.write("victim", b"first", 1)
        boundary = store.total_bytes()
        store.write("survivor", b"second", 2)
        path = os.path.join(_segments_dir(dbdir), _segment_files(dbdir)[-1])
        with open(path, "r+b") as handle:
            handle.seek(boundary // 2)
            flipped = handle.read(1)[0] ^ 0x40
            handle.seek(boundary // 2)
            handle.write(bytes([flipped]))
        again = LogStructuredStableStore(dbdir)
        # The scan resynchronizes at the next frame magic.
        assert again.peek("survivor").value == b"second"
        assert again.media_redo_pending == NULL_SI + 1

    def test_clean_reopen_does_not_widen(self, dbdir):
        store = LogStructuredStableStore(dbdir)
        store.write("x", b"v", 1)
        again = LogStructuredStableStore(dbdir)
        assert again.media_redo_pending is None
        assert again.stats.checksum_failures == 0

    def test_scrub_reports_flipped_live_record(self, dbdir):
        store = LogStructuredStableStore(dbdir)
        store.write("x", b"target-value", 1)
        loc = store._index["x"]
        path = os.path.join(
            _segments_dir(dbdir), _segment_name(loc.seg_id)
        )
        with open(path, "r+b") as handle:
            handle.seek(loc.offset + loc.length - 3)
            byte = handle.read(1)[0] ^ 0x40
            handle.seek(loc.offset + loc.length - 3)
            handle.write(bytes([byte]))
        assert store.scrub() == ["x"]
        store.quarantine("x")
        assert store.scrub() == []

    def test_scrub_fails_every_object_of_a_damaged_batch(self, dbdir):
        store = LogStructuredStableStore(dbdir)
        store.write_many(
            {"a": StoredVersion(b"1", 1), "b": StoredVersion(b"2", 2)},
            atomic=True,
        )
        loc = store._index["a"]
        path = os.path.join(_segments_dir(dbdir), _segment_name(loc.seg_id))
        with open(path, "r+b") as handle:
            handle.seek(loc.offset + loc.length - 3)
            byte = handle.read(1)[0] ^ 0x40
            handle.seek(loc.offset + loc.length - 3)
            handle.write(bytes([byte]))
        assert store.scrub() == ["a", "b"]


class TestMarker:
    def test_marker_round_trip(self, dbdir):
        store = LogStructuredStableStore(dbdir)
        store.media_redo_pending = 17
        assert LogStructuredStableStore(dbdir).media_redo_pending == 17
        store.media_redo_pending = None
        assert LogStructuredStableStore(dbdir).media_redo_pending is None


class TestCompaction:
    def test_compact_collapses_to_one_segment(self, dbdir):
        store = LogStructuredStableStore(
            dbdir, segment_bytes=256, auto_compact=False
        )
        for index in range(30):
            store.write(f"obj:{index % 3}", b"x" * 40, index)
        assert store.segment_count() > 1
        copied = store.compact()
        assert copied == 3
        assert store.segment_count() == 1
        assert store.dead_ratio() == 0.0
        again = LogStructuredStableStore(dbdir)
        for obj in range(3):
            assert again.contains(f"obj:{obj}")

    def test_compact_preserves_values_and_vsis(self, dbdir):
        store = LogStructuredStableStore(dbdir, auto_compact=False)
        for index in range(10):
            store.write("x", f"v{index}".encode(), index)
        store.delete("x")
        store.write("y", b"keep", 99)
        store.compact()
        again = LogStructuredStableStore(dbdir)
        assert not again.contains("x")
        assert again.peek("y").value == b"keep"
        assert again.vsi_of("y") == 99

    def test_compact_with_nothing_live_leaves_no_segments(self, dbdir):
        store = LogStructuredStableStore(dbdir, auto_compact=False)
        store.write("x", b"v", 1)
        store.delete("x")
        assert store.compact() == 0
        assert _segment_files(dbdir) == []
        assert not LogStructuredStableStore(dbdir).contains("x")

    def test_auto_compaction_triggers_on_dead_ratio(self, dbdir):
        store = LogStructuredStableStore(
            dbdir,
            segment_bytes=512,
            compact_ratio=0.5,
            compact_min_bytes=1024,
        )
        for index in range(200):
            store.write("hot", b"x" * 64, index)
        assert store.stats.extra.get("compactions", 0) >= 1
        assert store.stats.compaction_copies >= 1
        # The survivor is intact after however many compactions ran.
        assert LogStructuredStableStore(dbdir).vsi_of("hot") == 199

    def test_writes_after_compaction_win_over_copies(self, dbdir):
        store = LogStructuredStableStore(dbdir, auto_compact=False)
        for index in range(5):
            store.write("x", f"v{index}".encode(), index)
        store.compact()
        store.write("x", b"after", 50)
        again = LogStructuredStableStore(dbdir)
        assert again.peek("x").value == b"after"
        assert again.vsi_of("x") == 50


class TestRestore:
    def test_restore_versions_replaces_the_log(self, dbdir):
        store = LogStructuredStableStore(dbdir, auto_compact=False)
        for index in range(10):
            store.write(f"obj:{index}", b"old", index)
        image = {"a": StoredVersion(b"1", 1), "b": StoredVersion(b"2", 2)}
        store.restore_versions(image)
        again = LogStructuredStableStore(dbdir)
        assert sorted(again.object_ids()) == ["a", "b"]
        assert again.peek("a").value == b"1"

    def test_restore_version_none_appends_tombstone(self, dbdir):
        store = LogStructuredStableStore(dbdir)
        store.write("x", b"v", 1)
        store.restore_version("x", None)
        assert not LogStructuredStableStore(dbdir).contains("x")

    def test_restore_version_value_is_durable(self, dbdir):
        store = LogStructuredStableStore(dbdir)
        store.restore_version("x", StoredVersion(b"restored", 9))
        assert LogStructuredStableStore(dbdir).peek("x").value == b"restored"


class TestRebuildParity:
    """Randomized workloads: the rebuilt logstore state must match a
    FileStableStore fed the same operations — the backends implement one
    contract over disjoint layouts."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_workload_parity_after_reopen(self, tmp_path, seed):
        rng = random.Random(seed)
        log_store = LogStructuredStableStore(
            str(tmp_path / "log"), segment_bytes=512
        )
        file_store = FileStableStore(str(tmp_path / "file"))
        objects = [f"obj:{i}" for i in range(8)]
        for step in range(120):
            obj = rng.choice(objects)
            action = rng.random()
            if action < 0.15:
                log_store.delete(obj)
                file_store.delete(obj)
            elif action < 0.3:
                batch = {
                    o: StoredVersion(f"{o}@{step}".encode(), step)
                    for o in rng.sample(objects, 3)
                }
                log_store.write_many(batch, atomic=True)
                file_store.write_many(batch, atomic=True)
            else:
                value = f"{obj}@{step}".encode()
                log_store.write(obj, value, step)
                file_store.write(obj, value, step)
        log_again = LogStructuredStableStore(str(tmp_path / "log"))
        file_again = FileStableStore(str(tmp_path / "file"))
        assert sorted(log_again.object_ids()) == sorted(file_again.object_ids())
        for obj in file_again.object_ids():
            assert log_again.peek(obj).value == file_again.peek(obj).value
            assert log_again.vsi_of(obj) == file_again.vsi_of(obj)
