"""Differential property tests: incremental engines vs naive rebuilds.

Two oracles, one per graph mode:

* rW — ``repro.core._reference.ReferenceWriteGraph`` is the
  scan-everything Figure 6 construction, kept deliberately naive.  The
  indexed :class:`~repro.core.refined_write_graph.RefinedWriteGraph`
  must match it *exactly* — node shapes, flush sets, edges,
  cycle-collapse counts, and install orders — including with node
  installation interleaved into the stream.
* W — :class:`~repro.core.write_graph.BatchWriteGraph` is the verbatim
  Figure 3 batch algorithm.  The live
  :class:`~repro.core.incremental_write_graph.IncrementalWriteGraph`
  must produce the same graph (nodes, vars, edges, flush-set sizes,
  minimal sets, unordered) as a batch rebuild over the surviving
  operations, at every checkpoint and after every install.

Nodes are compared by their operation-name sets: the engines mint
their own node instances, but a node *is* its set of operations.
"""

from __future__ import annotations

import random
from typing import FrozenSet

import pytest

from repro.core._reference import ReferenceWriteGraph
from repro.core.history import History
from repro.core.incremental_write_graph import IncrementalWriteGraph
from repro.core.installation_graph import InstallationGraph
from repro.core.refined_write_graph import RefinedWriteGraph
from repro.core.write_graph import BatchWriteGraph
from repro.workloads import LogicalWorkload, LogicalWorkloadConfig

MIXES = [
    ("physiological", dict(w_physical=0.2, w_touch=0.8, w_combine=0.0, w_derive=0.0)),
    ("mixed", dict(w_physical=0.15, w_touch=0.35, w_combine=0.3, w_derive=0.2)),
    ("heavy-logical", dict(w_physical=0.1, w_touch=0.15, w_combine=0.45, w_derive=0.3)),
    ("deleting", dict(w_physical=0.2, w_touch=0.3, w_combine=0.3, w_derive=0.2, p_delete=0.15)),
]


def _stream(mix: dict, seed: int, operations: int = 120, objects: int = 8):
    config = LogicalWorkloadConfig(
        objects=objects, operations=operations, object_size=16, **mix
    )
    workload = LogicalWorkload(config, seed=seed)
    history = History()
    ops = []
    for op in workload.operations():
        history.append(op)
        op.lsi = op.op_id + 1
        ops.append(op)
    return ops


def _key(node) -> FrozenSet[str]:
    return frozenset(op.name for op in node.ops)


def _shape(graph) -> dict:
    """Everything observable about a graph, keyed by op-name sets."""
    by_key = {_key(n): n for n in graph.nodes}
    return {
        "order": [_key(n) for n in graph.nodes],
        "vars": {k: set(n.vars) for k, n in by_key.items()},
        "notx": {k: set(n.notx) for k, n in by_key.items()},
        "edges": {(_key(a), _key(b)) for a, b in graph.edges()},
        "collapses": graph.cycle_collapses,
        "flush_sizes": sorted(graph.flush_set_sizes()),
        "minimal": [_key(n) for n in graph.minimal_nodes()],
    }


def _assert_same(ref: ReferenceWriteGraph, idx: RefinedWriteGraph) -> None:
    a, b = _shape(ref), _shape(idx)
    assert a["order"] == b["order"]
    assert a["vars"] == b["vars"]
    assert a["notx"] == b["notx"]
    assert a["edges"] == b["edges"]
    assert a["collapses"] == b["collapses"]
    assert a["flush_sizes"] == b["flush_sizes"]
    assert a["minimal"] == b["minimal"]
    assert idx.is_acyclic()


@pytest.mark.parametrize("mix_name,mix", MIXES)
@pytest.mark.parametrize("seed", range(4))
def test_insertion_stream_matches(mix_name, mix, seed):
    ops = _stream(mix, seed)
    ref, idx = ReferenceWriteGraph(), RefinedWriteGraph()
    for op in ops:
        node_ref = ref.add_operation(op)
        node_idx = idx.add_operation(op)
        assert _key(node_ref) == _key(node_idx), op.name
    _assert_same(ref, idx)


@pytest.mark.parametrize("mix_name,mix", MIXES)
@pytest.mark.parametrize("seed", range(3))
def test_interleaved_installation_matches(mix_name, mix, seed):
    """Install minimal nodes mid-stream; orders and results must track."""
    rng = random.Random(seed * 7919 + 13)
    ops = _stream(mix, seed + 100)
    ref, idx = ReferenceWriteGraph(), RefinedWriteGraph()
    for op in ops:
        ref.add_operation(op)
        idx.add_operation(op)
        if rng.random() < 0.25 and ref.nodes:
            minimal_ref = ref.minimal_nodes()
            minimal_idx = idx.minimal_nodes()
            assert [_key(n) for n in minimal_ref] == [
                _key(n) for n in minimal_idx
            ]
            if minimal_ref:
                flushed_ref = ref.remove_node(minimal_ref[0])
                flushed_idx = idx.remove_node(minimal_idx[0])
                assert flushed_ref == flushed_idx
    _assert_same(ref, idx)
    # Drain both graphs completely: the full install order must match.
    while len(ref):
        minimal_ref = ref.minimal_nodes()
        minimal_idx = idx.minimal_nodes()
        assert [_key(n) for n in minimal_ref] == [
            _key(n) for n in minimal_idx
        ]
        assert ref.remove_node(minimal_ref[0]) == idx.remove_node(
            minimal_idx[0]
        )
    assert len(idx) == 0
    assert idx.uninstalled_operations() == set()


@pytest.mark.parametrize("seed", range(3))
def test_adversarial_tiny_population(seed):
    """Few objects and many logical ops maximize merge/cycle pressure."""
    ops = _stream(
        dict(w_physical=0.1, w_touch=0.1, w_combine=0.5, w_derive=0.3),
        seed=seed,
        operations=150,
        objects=3,
    )
    ref, idx = ReferenceWriteGraph(), RefinedWriteGraph()
    for op in ops:
        ref.add_operation(op)
        idx.add_operation(op)
    _assert_same(ref, idx)
    # Tiny populations force real collapses, or the test is vacuous.
    assert ref.cycle_collapses > 0


def test_queries_match_after_stream():
    ops = _stream(dict(MIXES[2][1]), seed=5)
    ref, idx = ReferenceWriteGraph(), RefinedWriteGraph()
    for op in ops:
        ref.add_operation(op)
        idx.add_operation(op)
    for op in ops:
        node_ref, node_idx = ref.node_of(op), idx.node_of(op)
        assert (node_ref is None) == (node_idx is None)
        if node_ref is not None:
            assert _key(node_ref) == _key(node_idx)
    objects = {obj for op in ops for obj in op.writes | op.reads}
    for obj in objects:
        holder_ref, holder_idx = ref.holder_of(obj), idx.holder_of(obj)
        assert (holder_ref is None) == (holder_idx is None), obj
        if holder_ref is not None:
            assert _key(holder_ref) == _key(holder_idx), obj
    assert ref.uninstalled_operations() == idx.uninstalled_operations()


# ----------------------------------------------------------------------
# W mode: incremental engine vs the Figure 3 batch construction
# ----------------------------------------------------------------------
#
# The incremental W engine never rebuilds; BatchWriteGraph rebuilds from
# the surviving operations every time it is asked.  Batch node order and
# node identity are arbitrary, so W shapes are compared *unordered* by
# op-name sets — unlike the rW suite above, which also checks order.


def _w_shape(graph) -> dict:
    by_key = {_key(n): n for n in graph.nodes}
    assert len(by_key) == len(graph.nodes)
    return {
        "nodes": set(by_key),
        "vars": {k: set(n.vars) for k, n in by_key.items()},
        "edges": {(_key(a), _key(b)) for a, b in graph.edges()},
        "flush_sizes": sorted(graph.flush_set_sizes()),
        "minimal": {_key(n) for n in graph.minimal_nodes()},
    }


def _assert_w_same(live_ops, incremental: IncrementalWriteGraph) -> None:
    batch = BatchWriteGraph(InstallationGraph(list(live_ops)))
    a, b = _w_shape(batch), _w_shape(incremental)
    assert a["nodes"] == b["nodes"]
    assert a["vars"] == b["vars"]
    assert a["edges"] == b["edges"]
    assert a["flush_sizes"] == b["flush_sizes"]
    assert a["minimal"] == b["minimal"]
    assert incremental.is_acyclic()
    # W never unexposes: vars(n) = Writes(n) and Notx(n) = ∅, always.
    for node in incremental.nodes:
        assert not node.notx
        assert set(node.vars) == {
            obj for op in node.ops for obj in op.writes
        }


@pytest.mark.parametrize("mix_name,mix", MIXES)
@pytest.mark.parametrize("seed", range(4))
def test_w_insertion_stream_matches_batch(mix_name, mix, seed):
    ops = _stream(mix, seed)
    incremental = IncrementalWriteGraph()
    for count, op in enumerate(ops, start=1):
        incremental.add_operation(op)
        if count % 30 == 0:
            _assert_w_same(ops[:count], incremental)
    _assert_w_same(ops, incremental)
    assert incremental.stats()["full_rebuilds"] == 0


@pytest.mark.parametrize("mix_name,mix", MIXES)
@pytest.mark.parametrize("seed", range(3))
def test_w_interleaved_installation_matches_batch(mix_name, mix, seed):
    """Install minimal W nodes mid-stream; the surviving graph must
    equal a batch rebuild of the surviving operations."""
    rng = random.Random(seed * 6007 + 29)
    live = []
    incremental = IncrementalWriteGraph()
    for op in _stream(mix, seed + 200):
        incremental.add_operation(op)
        live.append(op)
        if rng.random() < 0.2 and incremental.nodes:
            node = min(incremental.minimal_nodes(), key=_key)
            flushed, notx = incremental.remove_node(node)
            assert notx == set()
            assert flushed == {o for op_ in node.ops for o in op_.writes}
            installed = set(node.ops)
            live = [o for o in live if o not in installed]
            _assert_w_same(live, incremental)
    _assert_w_same(live, incremental)
    # Drain fully; every removal must stay consistent with a rebuild.
    while len(incremental):
        node = min(incremental.minimal_nodes(), key=_key)
        incremental.remove_node(node)
        installed = set(node.ops)
        live = [o for o in live if o not in installed]
        _assert_w_same(live, incremental)
    assert live == []
    assert incremental.uninstalled_operations() == set()


@pytest.mark.parametrize("seed", range(3))
def test_w_adversarial_tiny_population(seed):
    """Few objects, heavy logical mix: writeset overlap merges nearly
    everything, the W engine's worst case."""
    ops = _stream(
        dict(w_physical=0.1, w_touch=0.1, w_combine=0.5, w_derive=0.3),
        seed=seed,
        operations=150,
        objects=3,
    )
    incremental = IncrementalWriteGraph()
    for op in ops:
        incremental.add_operation(op)
    _assert_w_same(ops, incremental)
    assert incremental.stats()["merges"] > 0
