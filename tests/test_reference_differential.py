"""Differential property tests: indexed engine vs the naive reference.

``repro.core._reference.ReferenceWriteGraph`` is the scan-everything
Figure 6 construction, kept deliberately naive.  These tests feed
identical randomized operation streams to it and to the indexed
:class:`~repro.core.refined_write_graph.RefinedWriteGraph` and require
the results to match *exactly* — node shapes, flush sets, edges,
cycle-collapse counts, and install orders — including with node
installation interleaved into the stream.

Nodes are compared by their operation-name sets: both engines mint
their own ``RWNode`` instances, but a node *is* its set of operations.
"""

from __future__ import annotations

import random
from typing import FrozenSet

import pytest

from repro.core._reference import ReferenceWriteGraph
from repro.core.history import History
from repro.core.refined_write_graph import RefinedWriteGraph
from repro.workloads import LogicalWorkload, LogicalWorkloadConfig

MIXES = [
    ("physiological", dict(w_physical=0.2, w_touch=0.8, w_combine=0.0, w_derive=0.0)),
    ("mixed", dict(w_physical=0.15, w_touch=0.35, w_combine=0.3, w_derive=0.2)),
    ("heavy-logical", dict(w_physical=0.1, w_touch=0.15, w_combine=0.45, w_derive=0.3)),
    ("deleting", dict(w_physical=0.2, w_touch=0.3, w_combine=0.3, w_derive=0.2, p_delete=0.15)),
]


def _stream(mix: dict, seed: int, operations: int = 120, objects: int = 8):
    config = LogicalWorkloadConfig(
        objects=objects, operations=operations, object_size=16, **mix
    )
    workload = LogicalWorkload(config, seed=seed)
    history = History()
    ops = []
    for op in workload.operations():
        history.append(op)
        op.lsi = op.op_id + 1
        ops.append(op)
    return ops


def _key(node) -> FrozenSet[str]:
    return frozenset(op.name for op in node.ops)


def _shape(graph) -> dict:
    """Everything observable about a graph, keyed by op-name sets."""
    by_key = {_key(n): n for n in graph.nodes}
    return {
        "order": [_key(n) for n in graph.nodes],
        "vars": {k: set(n.vars) for k, n in by_key.items()},
        "notx": {k: set(n.notx) for k, n in by_key.items()},
        "edges": {(_key(a), _key(b)) for a, b in graph.edges()},
        "collapses": graph.cycle_collapses,
        "flush_sizes": sorted(graph.flush_set_sizes()),
        "minimal": [_key(n) for n in graph.minimal_nodes()],
    }


def _assert_same(ref: ReferenceWriteGraph, idx: RefinedWriteGraph) -> None:
    a, b = _shape(ref), _shape(idx)
    assert a["order"] == b["order"]
    assert a["vars"] == b["vars"]
    assert a["notx"] == b["notx"]
    assert a["edges"] == b["edges"]
    assert a["collapses"] == b["collapses"]
    assert a["flush_sizes"] == b["flush_sizes"]
    assert a["minimal"] == b["minimal"]
    assert idx.is_acyclic()


@pytest.mark.parametrize("mix_name,mix", MIXES)
@pytest.mark.parametrize("seed", range(4))
def test_insertion_stream_matches(mix_name, mix, seed):
    ops = _stream(mix, seed)
    ref, idx = ReferenceWriteGraph(), RefinedWriteGraph()
    for op in ops:
        node_ref = ref.add_operation(op)
        node_idx = idx.add_operation(op)
        assert _key(node_ref) == _key(node_idx), op.name
    _assert_same(ref, idx)


@pytest.mark.parametrize("mix_name,mix", MIXES)
@pytest.mark.parametrize("seed", range(3))
def test_interleaved_installation_matches(mix_name, mix, seed):
    """Install minimal nodes mid-stream; orders and results must track."""
    rng = random.Random(seed * 7919 + 13)
    ops = _stream(mix, seed + 100)
    ref, idx = ReferenceWriteGraph(), RefinedWriteGraph()
    for op in ops:
        ref.add_operation(op)
        idx.add_operation(op)
        if rng.random() < 0.25 and ref.nodes:
            minimal_ref = ref.minimal_nodes()
            minimal_idx = idx.minimal_nodes()
            assert [_key(n) for n in minimal_ref] == [
                _key(n) for n in minimal_idx
            ]
            if minimal_ref:
                flushed_ref = ref.remove_node(minimal_ref[0])
                flushed_idx = idx.remove_node(minimal_idx[0])
                assert flushed_ref == flushed_idx
    _assert_same(ref, idx)
    # Drain both graphs completely: the full install order must match.
    while len(ref):
        minimal_ref = ref.minimal_nodes()
        minimal_idx = idx.minimal_nodes()
        assert [_key(n) for n in minimal_ref] == [
            _key(n) for n in minimal_idx
        ]
        assert ref.remove_node(minimal_ref[0]) == idx.remove_node(
            minimal_idx[0]
        )
    assert len(idx) == 0
    assert idx.uninstalled_operations() == set()


@pytest.mark.parametrize("seed", range(3))
def test_adversarial_tiny_population(seed):
    """Few objects and many logical ops maximize merge/cycle pressure."""
    ops = _stream(
        dict(w_physical=0.1, w_touch=0.1, w_combine=0.5, w_derive=0.3),
        seed=seed,
        operations=150,
        objects=3,
    )
    ref, idx = ReferenceWriteGraph(), RefinedWriteGraph()
    for op in ops:
        ref.add_operation(op)
        idx.add_operation(op)
    _assert_same(ref, idx)
    # Tiny populations force real collapses, or the test is vacuous.
    assert ref.cycle_collapses > 0


def test_queries_match_after_stream():
    ops = _stream(dict(MIXES[2][1]), seed=5)
    ref, idx = ReferenceWriteGraph(), RefinedWriteGraph()
    for op in ops:
        ref.add_operation(op)
        idx.add_operation(op)
    for op in ops:
        node_ref, node_idx = ref.node_of(op), idx.node_of(op)
        assert (node_ref is None) == (node_idx is None)
        if node_ref is not None:
            assert _key(node_ref) == _key(node_idx)
    objects = {obj for op in ops for obj in op.writes | op.reads}
    for obj in objects:
        holder_ref, holder_idx = ref.holder_of(obj), idx.holder_of(obj)
        assert (holder_ref is None) == (holder_idx is None), obj
        if holder_ref is not None:
            assert _key(holder_ref) == _key(holder_idx), obj
    assert ref.uninstalled_operations() == idx.uninstalled_operations()
